#!/usr/bin/env python3
"""Quickstart: run Epidemic vs Give2Get Epidemic on a synthetic trace.

Generates the Infocom 05 stand-in trace, slices the standard 3-hour
evaluation window, runs both protocols on identical traffic, and
prints the paper's headline comparison: G2G keeps delay and success
close to Epidemic while creating fewer replicas — with every hand-off
backed by a signed Proof of Relay.

Run:  python examples/quickstart.py
"""

from repro import (
    EpidemicForwarding,
    G2GEpidemicForwarding,
    SimulationConfig,
    api,
    infocom05,
    standard_window,
)
from repro.metrics import text_table


def main() -> None:
    print("Generating the Infocom 05 stand-in trace...")
    synthetic = infocom05()
    window = standard_window(synthetic)
    trace = window.slice(synthetic.trace)
    print(
        f"  {trace.num_nodes} nodes, {len(trace)} contacts in the "
        f"3-hour evaluation window\n"
    )

    config = SimulationConfig(ttl=30 * 60.0, seed=7)
    rows = []
    for protocol in (EpidemicForwarding(), G2GEpidemicForwarding()):
        print(f"Simulating {protocol.name}...")
        results = api.run(trace, protocol, config)
        rows.append(
            [
                protocol.name,
                f"{results.success_rate:.1%}",
                f"{results.mean_delay / 60:.1f} min",
                f"{results.cost:.1f}",
                results.generated,
            ]
        )

    print()
    print(
        text_table(
            ["protocol", "success", "mean delay", "replicas/msg", "messages"],
            rows,
        )
    )
    epidemic_cost = float(rows[0][3])
    g2g_cost = float(rows[1][3])
    print(
        f"\nG2G Epidemic created {1 - g2g_cost / epidemic_cost:.0%} fewer "
        "replicas than vanilla Epidemic (the give-2 rule at work)."
    )


if __name__ == "__main__":
    main()
