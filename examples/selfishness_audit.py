#!/usr/bin/env python3
"""Selfishness audit: watch Give2Get catch droppers, liars, and cheaters.

Plants all three adversary kinds of Sec. VII in one G2G Delegation
run, then reports the conviction timeline: who was caught, by whom,
with what evidence, and how long after they started misbehaving.
Also contrasts instant PoM broadcast with contact-time gossip.

Run:  python examples/selfishness_audit.py
"""

from repro import (
    G2GDelegationForwarding,
    GossipBlacklist,
    api,
    infocom05,
    make_strategy,
    standard_window,
)
from repro.metrics import text_table
from repro.sim import config_for


def plant_adversaries(trace):
    """Three droppers, three liars, three cheaters on fixed node ids."""
    strategies = {}
    roles = {}
    nodes = list(trace.nodes)
    for offset, kind in ((0, "dropper"), (3, "liar"), (6, "cheater")):
        for i in range(3):
            node = nodes[4 * i + offset]
            strategies[node] = make_strategy(kind)
            roles[node] = kind
    return strategies, roles


def main() -> None:
    synthetic = infocom05()
    trace = standard_window(synthetic).slice(synthetic.trace)
    strategies, roles = plant_adversaries(trace)
    config = config_for("infocom05", "delegation", seed=5)

    print(
        f"Planting {len(roles)} selfish nodes among {trace.num_nodes}: "
        + ", ".join(f"{n}={k}" for n, k in sorted(roles.items()))
    )
    results = api.run(
        trace, G2GDelegationForwarding("last_contact"), config,
        strategies=strategies,
    )

    print("\nConviction timeline (first PoM per offender):")
    rows = []
    for offender, record in sorted(
        results.first_detections().items(), key=lambda kv: kv[1].time
    ):
        delay = results.offender_detection_delays()[offender]
        rows.append(
            [
                offender,
                roles.get(offender, "?!"),
                record.deviation,
                record.detector,
                f"{record.time / 60:.0f} min",
                f"{delay / 60:.0f} min",
            ]
        )
    print(
        text_table(
            [
                "node",
                "planted as",
                "convicted as",
                "detector",
                "at",
                "after misbehaving",
            ],
            rows,
        )
    )

    caught = set(results.first_detections())
    missed = sorted(set(roles) - caught)
    print(
        f"\nDetected {len(caught)}/{len(roles)} "
        f"({results.detection_rate(sorted(roles)):.0%}); "
        f"missed: {missed or 'none'}"
    )
    fps = results.false_positives(sorted(roles))
    print(f"False accusations against faithful nodes: {sorted(fps) or 'none'}")
    print(
        f"Test phases run: {results.test_phases}; storage challenges "
        f"(heavy HMAC): {results.heavy_hmac_runs}"
    )

    print("\nRe-running with gossip (no instant broadcast)...")
    gossip = GossipBlacklist()
    config_gossip = config_for(
        "infocom05", "delegation", seed=5, instant_blacklist=False
    )
    results_gossip = api.run(
        trace, G2GDelegationForwarding("last_contact"), config_gossip,
        strategies=plant_adversaries(trace)[0],
        blacklist=gossip,
    )
    print(
        f"Gossip mode: {len(results_gossip.first_detections())} convictions; "
        "awareness of each offender at the end of the run:"
    )
    for offender in sorted(results_gossip.first_detections()):
        print(
            f"  node {offender}: known to {gossip.awareness(offender)} "
            f"of {trace.num_nodes} nodes"
        )


if __name__ == "__main__":
    main()
