#!/usr/bin/env python3
"""Campus DTN: trace analysis and window selection on Cambridge 06.

Students carrying devices across an 11-day campus trace (the
Cambridge 06 setting).  This example exercises the trace toolkit the
protocols sit on:

1. profile the trace (contact durations, inter-contact times, pair
   coverage) — the statistics prior work uses to characterize PSNs;
2. quantify the re-encounter property the paper's Δ2 = 2·Δ1 choice
   rests on ("if S and B meet, they will likely meet again soon");
3. scan candidate 3-hour evaluation windows and run G2G Epidemic on a
   few of them, showing how delivery tracks window activity;
4. round-trip the trace through the CRAWDAD-style text format.

Run:  python examples/campus_dtn.py
"""

import tempfile
from pathlib import Path

from repro import (
    G2GEpidemicForwarding,
    api,
    cambridge06,
    load_trace,
)
from repro.metrics import text_table
from repro.sim import config_for
from repro.traces import (
    TraceProfile,
    active_windows,
    reencounter_probability,
    save_trace,
)


def main() -> None:
    synthetic = cambridge06()
    trace = synthetic.trace

    print(TraceProfile.of(trace).describe())

    ttl = config_for("cambridge06", "epidemic", 0).ttl
    for horizon in (ttl, 2 * ttl):
        p = reencounter_probability(trace, within=horizon)
        print(
            f"P(pair re-meets within {horizon / 60:.0f} min of a contact) "
            f"= {p:.0%}"
        )
    print(
        "-> the Δ2 = 2·Δ1 window gives the source a good chance to "
        "re-meet and test its relays\n"
    )

    windows = active_windows(trace, min_contacts=100)
    print(f"{len(windows)} candidate 3-hour windows with >= 100 contacts")
    ranked = sorted(
        windows,
        key=lambda w: sum(
            1 for c in trace.contacts if c.overlaps(w.start, w.end)
        ),
    )
    picks = [
        ("quiet (p25)", ranked[len(ranked) // 4]),
        ("typical (p75)", ranked[int(len(ranked) * 0.75)]),
        ("busiest", ranked[-1]),
    ]
    rows = []
    for label, window in picks:
        sliced = window.slice(trace)
        config = config_for("cambridge06", "epidemic", seed=3)
        results = api.run(sliced, G2GEpidemicForwarding(), config)
        rows.append(
            [
                label,
                f"day {window.start / 86_400:.1f}",
                len(sliced),
                f"{results.success_rate:.1%}",
                f"{results.mean_delay / 60:.1f} min",
            ]
        )
    print()
    print(
        text_table(
            ["window", "starts", "contacts", "G2G success", "delay"], rows
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cambridge06.contacts"
        save_trace(trace, path)
        reloaded = load_trace(path)
        print(
            f"\nRound-tripped the trace through {path.name}: "
            f"{len(reloaded)} contacts, "
            f"{'identical' if reloaded.contacts == trace.contacts else 'DIFFERENT'}"
        )


if __name__ == "__main__":
    main()
