#!/usr/bin/env python3
"""Conference messaging: Delegation Forwarding at a scientific venue.

The scenario the paper's introduction motivates: attendees of a
conference (the Infocom 05 setting) exchange messages device-to-device
with no infrastructure.  This example:

1. inspects the social structure of the contact trace (k-clique
   communities, as the paper uses for its *selfish with outsiders*
   notion);
2. compares the two Delegation Forwarding flavors and their Give2Get
   versions;
3. breaks delivery down by whether source and destination share a
   community — showing how messages "flow far from the community
   where they have been generated".

Run:  python examples/conference_messaging.py
"""

from collections import defaultdict

from repro import (
    CommunityMap,
    DelegationForwarding,
    G2GDelegationForwarding,
    api,
    infocom05,
    standard_window,
)
from repro.metrics import text_table
from repro.sim import config_for


def community_breakdown(results, community):
    """Delivery rate split into intra- vs inter-community messages."""
    buckets = defaultdict(lambda: [0, 0])  # key -> [delivered, total]
    for record in results.messages.values():
        message = record.message
        key = (
            "intra-community"
            if community.same_community(message.source, message.destination)
            else "inter-community"
        )
        buckets[key][1] += 1
        if record.delivered:
            buckets[key][0] += 1
    return {
        key: (delivered / total if total else 0.0, total)
        for key, (delivered, total) in buckets.items()
    }


def main() -> None:
    synthetic = infocom05()
    trace = standard_window(synthetic).slice(synthetic.trace)

    print("Detecting k-clique communities on the full trace...")
    community = CommunityMap.detect(
        synthetic.trace, k=3, edge_quantile=0.9
    )
    sizes = sorted((len(c) for c in community.communities), reverse=True)
    print(
        f"  {community.num_communities} communities, sizes {sizes}, "
        f"{community.coverage():.0%} of attendees covered\n"
    )

    protocols = [
        DelegationForwarding("frequency"),
        DelegationForwarding("last_contact"),
        G2GDelegationForwarding("frequency"),
        G2GDelegationForwarding("last_contact"),
    ]
    rows = []
    breakdowns = {}
    for protocol in protocols:
        config = config_for("infocom05", "delegation", seed=11)
        print(f"Simulating {protocol.name}...")
        results = api.run(trace, protocol, config)
        rows.append(
            [
                protocol.name,
                f"{results.success_rate:.1%}",
                f"{results.mean_delay / 60:.1f} min",
                f"{results.cost:.2f}",
            ]
        )
        breakdowns[protocol.name] = community_breakdown(results, community)

    print()
    print(text_table(["protocol", "success", "delay", "replicas/msg"], rows))

    print("\nDelivery by social distance (G2G Destination Last Contact):")
    for key, (rate, total) in sorted(
        breakdowns["g2g_delegation_last_contact"].items()
    ):
        print(f"  {key:<18} {rate:.1%}  ({total} messages)")


if __name__ == "__main__":
    main()
