#!/usr/bin/env python3
"""Mobility lab: from 2D movement to Give2Get forwarding.

Instead of sampling contact processes statistically, this example
generates contacts the way the real iMote traces arose: devices moving
through a playground (home-cell community mobility), with a contact
whenever two devices come within Bluetooth range. It then:

1. compares the emergent contact statistics against the Infocom 05
   stand-in;
2. checks that k-clique community detection recovers the mobility
   model's ground-truth communities;
3. runs Epidemic vs G2G Epidemic on the emergent trace, with a couple
   of droppers planted, and prints the convictions.

Run:  python examples/mobility_lab.py
"""

from repro import (
    CommunityMap,
    EpidemicForwarding,
    G2GEpidemicForwarding,
    SimulationConfig,
    api,
    strategy_population,
)
from repro.metrics import text_table
from repro.traces import TraceProfile, lab_config, simulate_mobility


def main() -> None:
    config = lab_config(num_communities=3, nodes_per_community=8, hours=6.0)
    print(
        f"Simulating {config.num_nodes} pedestrians for "
        f"{config.duration / 3600:.0f} h on a {config.area_side:.0f} m "
        f"square ({config.grid}x{config.grid} cells, "
        f"{config.radio_range:.0f} m radio range)..."
    )
    st = simulate_mobility(config, seed=1)
    print(TraceProfile.of(st.trace).describe())

    print("\nRecovering communities from the emergent contact graph...")
    detected = CommunityMap.detect(st.trace, k=3, edge_quantile=0.7)
    truth = st.assignment
    nodes = list(st.trace.nodes)
    agree = sum(
        1
        for i in nodes
        for j in nodes
        if j > i
        and detected.same_community(i, j) == truth.same_community(i, j)
    )
    total = len(nodes) * (len(nodes) - 1) // 2
    print(
        f"  {detected.num_communities} communities detected; pairwise "
        f"agreement with the mobility ground truth: {agree / total:.0%}"
    )

    sim_config = SimulationConfig(
        run_length=5 * 3600.0,
        silent_tail=3600.0,
        mean_interarrival=20.0,
        ttl=35 * 60.0,
        seed=7,
    )
    strategies, bad = strategy_population(st.trace.nodes, "dropper", 4, seed=7)
    print(f"\nPlanting droppers on nodes {list(bad)}.")
    rows = []
    convictions = None
    for protocol in (EpidemicForwarding(), G2GEpidemicForwarding()):
        results = api.run(
            st.trace, protocol, sim_config, strategies=strategies
        )
        rows.append(
            [
                protocol.name,
                f"{results.success_rate:.1%}",
                f"{results.cost:.1f}",
                f"{results.detection_rate(bad):.0%}",
            ]
        )
        if protocol.name == "g2g_epidemic":
            convictions = results.first_detections()
    print(
        text_table(
            ["protocol", "success", "replicas/msg", "droppers caught"], rows
        )
    )
    if convictions:
        print("\nConvictions (G2G Epidemic):")
        for offender, record in sorted(convictions.items()):
            print(
                f"  node {offender} convicted by node {record.detector} "
                f"at {record.time / 60:.0f} min"
            )


if __name__ == "__main__":
    main()
