#!/usr/bin/env python3
"""Sweep campaign: archived runs, resumability, and terminal charts.

Shows the workflow a measurement study would use on top of this
library:

1. define a grid of runs (dropper counts x seeds for two protocols);
2. execute it through the archived :class:`SweepRunner` — rerunning
   the script reuses finished runs instead of resimulating;
3. aggregate the archive into the Fig. 3-style curves and chart them
   in the terminal;
4. export the flat summary table as CSV.

For in-memory sweeps without the archival layer, use the facade
instead: ``repro.api.sweep(trace, protocol, counts, workers=...)``.

Run:  python examples/sweep_campaign.py          (first run simulates)
      python examples/sweep_campaign.py          (second run is instant)
"""

import tempfile
from collections import defaultdict
from pathlib import Path

from repro.experiments.parallel import ExecutionOptions
from repro.experiments.runner import FigureData, Series
from repro.experiments.sweeps import RunSpec, SweepRunner, dropper_grid
from repro.metrics import chart_figure

#: Keep the demo snappy: two protocols, four counts, one seed.
COUNTS = (0, 10, 20, 30)
SEEDS = (1,)
PROTOCOLS = ("epidemic", "g2g_epidemic")

#: Archive next to this script so re-runs resume (delete to reset).
ARCHIVE = Path(__file__).parent / ".sweep-archive"


def main() -> None:
    all_specs = []
    for protocol in PROTOCOLS:
        all_specs.extend(
            dropper_grid("infocom05", protocol, counts=COUNTS, seeds=SEEDS)
        )

    done_before = 0
    runner = SweepRunner(
        archive_dir=ARCHIVE,
        sweep="dropper-campaign",
        on_result=lambda spec, results, cached: print(
            f"  [{'cached' if cached else 'ran   '}] {spec.spec_id:<46} "
            f"success {results.success_rate:.1%}"
        ),
    )
    done_before = sum(runner.is_done(s) for s in all_specs)
    print(
        f"Campaign: {len(all_specs)} runs "
        f"({done_before} already archived under {ARCHIVE.name}/)"
    )
    # Two workers overlap the fresh runs; archived ones just load.
    results = runner.run_all(
        all_specs, options=ExecutionOptions(workers=2)
    )

    # Aggregate into delivery-vs-droppers curves.
    curves = defaultdict(lambda: defaultdict(list))
    for spec, run in results.items():
        curves[spec.protocol][spec.count].append(run.success_rate)
    figure = FigureData(
        figure_id="campaign",
        title="Droppers vs delivery (archived sweep)",
        x_label="Droppers Number",
        y_label="Delivery %",
    )
    for protocol, by_count in curves.items():
        series = Series(label=protocol)
        for count in sorted(by_count):
            values = by_count[count]
            series.add(count, 100.0 * sum(values) / len(values))
        figure.series.append(series)
    print()
    print(chart_figure(figure))

    csv_path = ARCHIVE / "summary.csv"
    rows = runner.summary_csv(csv_path)
    print(f"\nExported {rows} run summaries to {csv_path}")


if __name__ == "__main__":
    main()
