"""Benchmark: empirical best-response check (Theorems 1 and 2).

The paper proves G2G Epidemic and G2G Delegation are Nash equilibria.
This benchmark measures the claim: for probe nodes and every rational
deviation, the deviant's *expected* utility (averaged over traffic
seeds) must not exceed its honest utility.
"""

from repro.core import G2GDelegationForwarding, G2GEpidemicForwarding
from repro.core.payoff import best_response_check
from repro.experiments import evaluation_trace, standard_config

from .conftest import run_once, save_and_print


def test_nash_g2g_epidemic(benchmark, results_dir):
    trace = evaluation_trace("infocom05")
    config = standard_config("infocom05", "epidemic", 1)
    report = run_once(
        benchmark,
        lambda: best_response_check(
            trace, G2GEpidemicForwarding, config, deviations=("dropper",)
        ),
    )
    save_and_print(results_dir, "nash-g2g-epidemic", report.render())
    assert report.nash_holds
    assert all(o.detected for o in report.outcomes)


def test_nash_g2g_delegation(benchmark, results_dir):
    trace = evaluation_trace("infocom05")
    config = standard_config("infocom05", "delegation", 1)
    report = run_once(
        benchmark,
        lambda: best_response_check(
            trace,
            lambda: G2GDelegationForwarding("last_contact"),
            config,
            deviations=("dropper", "liar", "cheater"),
        ),
    )
    save_and_print(results_dir, "nash-g2g-delegation", report.render())
    assert report.nash_holds
