"""Benchmark regenerating Fig. 5: droppers/liars vs Delegation Forwarding.

Paper shape: both adversary kinds depress delivery substantially on
both traces, in the plain and with-outsiders variants.
"""

from repro.experiments import fig5
from repro.metrics import monotone_decreasing

from .conftest import run_once, save_and_print


def test_fig5(benchmark, quick, results_dir):
    figures = run_once(benchmark, lambda: fig5.run(quick=quick))
    for (panel, trace_name), figure in figures.items():
        save_and_print(results_dir, figure.figure_id, figure.render())
        for series in figure.series:
            label = f"{figure.figure_id}/{series.label}"
            assert monotone_decreasing(series.ys, slack=8.0), label
            # a big impact on the success rate (paper's wording)
            assert series.ys[-1] < series.ys[0] * 0.85, label
