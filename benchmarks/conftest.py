"""Shared benchmark plumbing.

Each benchmark module regenerates one table/figure of the paper via
the :mod:`repro.experiments` harness, prints the paper-shaped text
rendering, and saves it under ``benchmarks/results/``.

By default the sweeps run in *quick* mode (fewer grid points, two
replication seeds); set ``REPRO_BENCH_FULL=1`` for the full paper
grids.  Simulations are deterministic, so a single benchmark round is
meaningful — wall-clock is reported for the whole experiment.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Directory where rendered experiment outputs are saved.
RESULTS_DIR = Path(__file__).parent / "results"


def is_quick() -> bool:
    """True unless the full paper grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") != "1"


@pytest.fixture(scope="session")
def quick() -> bool:
    """Quick-mode flag for every benchmark."""
    return is_quick()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Output directory for rendered tables (created on demand)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment rendering and echo it to the console."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
