"""Benchmark regenerating Fig. 4: dropper detection in G2G Epidemic.

Paper shape: detection time is minutes-scale, roughly independent of
the number of droppers; the text reports detection probabilities of
94.7% (plain) / 91.3% (with outsiders).
"""

from repro.experiments import fig4
from repro.metrics import roughly_flat

from .conftest import run_once, save_and_print


def test_fig4(benchmark, quick, results_dir):
    out = run_once(benchmark, lambda: fig4.run(quick=quick))
    for trace_name, detection in out.items():
        figure = detection.figure
        rates = "\n".join(
            f"detection probability [{label}]: {rate:.1%}"
            for label, rate in detection.detection_rates.items()
        )
        save_and_print(
            results_dir, figure.figure_id, figure.render() + "\n" + rates
        )
        for series in figure.series:
            # minutes-scale detection (paper: 12-27 min after Δ1)
            assert all(0.0 <= y < 60.0 for y in series.ys), series.label
            # flat in the number of droppers
            assert roughly_flat(series.ys, ratio=6.0), series.label
        for label, rate in detection.detection_rates.items():
            assert rate > 0.75, label
