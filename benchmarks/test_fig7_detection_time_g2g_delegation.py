"""Benchmark regenerating Fig. 7: detection time vs adversary count.

Paper shape: the detection time of G2G Delegation does not depend on
the number of selfish individuals.
"""

from repro.experiments import fig7
from repro.metrics import roughly_flat

from .conftest import run_once, save_and_print


def test_fig7(benchmark, quick, results_dir):
    figures = run_once(benchmark, lambda: fig7.run(quick=quick))
    for trace_name, figure in figures.items():
        save_and_print(results_dir, figure.figure_id, figure.render())
        for series in figure.series:
            label = f"{trace_name}/{series.label}"
            detected = [y for y in series.ys if y > 0]
            assert detected, label
            # flat in the adversary count (wide tolerance: minutes-scale
            # quantities over few detections are noisy)
            assert roughly_flat(detected, ratio=8.0), label
