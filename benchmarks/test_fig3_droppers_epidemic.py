"""Benchmark regenerating Fig. 3: droppers vs Epidemic Forwarding.

Paper shape: delivery % decreases as droppers grow, collapsing toward
the "source meets destination personally" floor; the with-outsiders
curve tracks the plain one closely.
"""

from repro.experiments import fig3
from repro.metrics import monotone_decreasing

from .conftest import run_once, save_and_print


def test_fig3(benchmark, quick, results_dir):
    figures = run_once(benchmark, lambda: fig3.run(quick=quick))
    for trace_name, figure in figures.items():
        save_and_print(results_dir, figure.figure_id, figure.render())
        for series in figure.series:
            # monotone collapse (with replication-noise slack)
            assert monotone_decreasing(series.ys, slack=8.0), series.label
            # the all-droppers end is far below the honest start
            assert series.ys[-1] < series.ys[0] - 10.0, series.label
