"""Ablation benchmarks for the G2G design choices (DESIGN.md §6)."""

from repro.experiments import ablations

from .conftest import run_once, save_and_print


def test_fanout_ablation(benchmark, results_dir):
    figure = run_once(benchmark, ablations.fanout_sweep)
    save_and_print(results_dir, figure.figure_id, figure.render())
    success = figure.series_by_label("Delivery %")
    cost = figure.series_by_label("Cost (replicas)")
    # More fanout -> more replicas; delivery does not decrease.
    assert cost.ys == sorted(cost.ys)
    assert success.ys[-1] >= success.ys[0] - 3.0


def test_delta2_ablation(benchmark, results_dir):
    figure = run_once(benchmark, ablations.delta2_sweep)
    save_and_print(results_dir, figure.figure_id, figure.render())
    series = figure.series_by_label("Detection rate %")
    # A longer test window can only help detection (modulo noise).
    assert series.ys[-1] >= series.ys[0] - 10.0
    # The paper's Δ2 = 2Δ1 sits in the high-detection regime.
    at_two = dict(zip(series.xs, series.ys))[2.0]
    assert at_two > 60.0


def test_timeframe_ablation(benchmark, results_dir):
    figure = run_once(benchmark, ablations.timeframe_sweep)
    save_and_print(results_dir, figure.figure_id, figure.render())
    series = figure.series_by_label("Detection rate %")
    # The paper's 34-minute frame detects liars.
    at_34 = dict(zip(series.xs, series.ys))[34.0]
    assert at_34 > 30.0


def test_buffer_capacity_ablation(benchmark, results_dir):
    figure = run_once(benchmark, ablations.buffer_capacity_sweep)
    save_and_print(results_dir, figure.figure_id, figure.render())
    delivery = figure.series_by_label("Delivery %")
    convicted = figure.series_by_label("Honest nodes convicted")
    by_capacity = dict(zip(delivery.xs, delivery.ys))
    convicted_by_capacity = dict(zip(convicted.xs, convicted.ys))
    # Unbounded buffers (x=0): the paper's regime, no false convictions.
    assert convicted_by_capacity[0.0] == 0.0
    # Under severe pressure honest nodes get falsely convicted and
    # delivery collapses — the infinite-buffer assumption is
    # load-bearing for the G2G test mechanism.
    assert convicted_by_capacity[5.0] > 0.0
    assert by_capacity[5.0] < by_capacity[0.0]


def test_testers_ablation(benchmark, results_dir):
    out = run_once(benchmark, ablations.testers_comparison)
    text = "\n".join(f"{k}: {v:.2f}" for k, v in sorted(out.items()))
    save_and_print(results_dir, "ablation-testers", text)
    # Source-only auditing already catches (essentially) every dropper;
    # every-giver auditing buys speed, at several times the audit work.
    assert out["source_detection_rate"] >= 0.8
    assert out["any_giver_detection_rate"] >= out["source_detection_rate"] - 0.1
    assert out["any_giver_detection_minutes"] <= out["source_detection_minutes"]
    assert out["any_giver_test_phases"] > 2 * out["source_test_phases"]


def test_blacklist_ablation(benchmark, results_dir):
    out = run_once(benchmark, ablations.blacklist_comparison)
    text = "\n".join(f"{k}: {v:.2f}" for k, v in sorted(out.items()))
    save_and_print(results_dir, "ablation-blacklist", text)
    # Detection itself is detector-local: both modes convict.
    assert out["instant_detection_rate"] > 0.5
    assert out["gossip_detection_rate"] > 0.5
