"""Benchmark: the classic DTN baselines next to the paper's protocols.

Not a paper figure — context for the Fig. 8 landscape: Spray and Wait,
PRoPHET, and BubbleRap (the paper's reference [5]) on the Infocom
stand-in, between Epidemic's cost ceiling and Delegation's floor.
"""

from repro.experiments import evaluation_community, evaluation_trace
from repro.experiments.runner import ReplicationPlan
from repro.metrics import text_table
from repro.protocols import (
    BubbleRapForwarding,
    DelegationForwarding,
    EpidemicForwarding,
    ProphetForwarding,
    SprayAndWaitForwarding,
)
from repro.sim import Simulation, config_for

from .conftest import run_once, save_and_print

PROTOCOLS = (
    ("Epidemic", "epidemic", EpidemicForwarding),
    ("Spray&Wait (L=8)", "epidemic", lambda: SprayAndWaitForwarding(8)),
    ("PRoPHET", "delegation", ProphetForwarding),
    ("BubbleRap", "delegation", BubbleRapForwarding),
    (
        "Deleg. Last Contact",
        "delegation",
        lambda: DelegationForwarding("last_contact"),
    ),
)


def run_comparison():
    trace = evaluation_trace("infocom05")
    community = evaluation_community("infocom05")
    plan = ReplicationPlan.make(quick=True)
    rows = []
    by_name = {}
    for label, family, factory in PROTOCOLS:
        success = delay = cost = 0.0
        for seed in plan.seeds:
            config = config_for("infocom05", family, seed=seed)
            results = Simulation(
                trace, factory(), config, community=community
            ).run()
            success += results.success_rate
            delay += results.mean_delay
            cost += results.cost
        n = len(plan.seeds)
        entry = (success / n, delay / n, cost / n)
        by_name[label] = entry
        rows.append(
            [label, f"{entry[0]:.1%}", f"{entry[1] / 60:.1f}m",
             f"{entry[2]:.2f}"]
        )
    return by_name, text_table(
        ["protocol", "success", "delay", "cost (replicas)"], rows
    )


def test_baselines_beyond_paper(benchmark, results_dir):
    by_name, table = run_once(benchmark, run_comparison)
    save_and_print(results_dir, "baselines-beyond-paper", table)
    epidemic = by_name["Epidemic"]
    for label in ("Spray&Wait (L=8)", "PRoPHET", "BubbleRap"):
        success, _delay, cost = by_name[label]
        # All bounded baselines trade success for far fewer replicas.
        assert cost < epidemic[2] / 2, label
        assert success < epidemic[0] + 0.02, label
        assert success > 0.25, label
    # Spray and Wait's cost respects its copy budget.
    assert by_name["Spray&Wait (L=8)"][2] <= 8.0
