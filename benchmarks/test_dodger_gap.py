"""Benchmark: the test-dodger gap (a reproduction finding).

Sec. IV-C argues informally that refusing sessions to dodge test
phases is irrational because the dodger forfeits service.  Measured in
this model, the argument does **not** hold quantitatively: a dodger
that (i) drops every relayed message and (ii) refuses sessions only
with the givers it still owes a test answer to

* is never convicted (the test phase requires a session), and
* loses so little service (a handful of refusals out of hundreds of
  contacts) that its expected utility *exceeds* honesty.

This benchmark pins the measured gap so the finding is regenerable;
EXPERIMENTS.md discusses it and sketches mitigations (treating
repeated refusals as evidence, delegated testing).
"""

from repro.core import G2GEpidemicForwarding
from repro.core.payoff import best_response_check
from repro.experiments import evaluation_trace, standard_config
from repro.experiments.runner import ReplicationPlan
from repro.experiments.sweeps import RunSpec  # noqa: F401 (docs example)
from repro.adversaries import strategy_population
from repro.sim import Simulation

from .conftest import run_once, save_and_print


def measure():
    trace = evaluation_trace("infocom05")
    config = standard_config("infocom05", "epidemic", 1)
    strategies, bad = strategy_population(trace.nodes, "dodger", 10, seed=1)
    population_run = Simulation(
        trace, G2GEpidemicForwarding(), config, strategies=strategies
    ).run()
    report = best_response_check(
        trace,
        G2GEpidemicForwarding,
        config,
        deviations=("dodger",),
        seeds=(1, 2, 3),
    )
    return population_run, bad, report


def test_dodger_gap(benchmark, results_dir):
    population_run, bad, report = run_once(benchmark, measure)
    text = "\n".join(
        [
            f"dodger population: detection rate "
            f"{population_run.detection_rate(bad):.0%}, "
            f"{population_run.session_refusals} session refusals",
            report.render(),
            "FINDING: the Sec. IV-C radio-off argument does not hold "
            "quantitatively in this model — dodging is profitable.",
        ]
    )
    save_and_print(results_dir, "dodger-gap", text)
    # The measured gap, pinned: dodgers evade detection entirely...
    assert population_run.detection_rate(bad) == 0.0
    assert population_run.session_refusals > 0
    # ...and at least one probe finds dodging profitable (the
    # divergence from the paper's informal claim).
    assert any(o.profitable for o in report.outcomes)
    assert not any(o.detected for o in report.outcomes)
