"""Benchmark regenerating Fig. 8: G2G vs vanilla performance.

Paper shape assertions:

* Epidemic costs far more replicas than any Delegation flavor;
* each G2G variant costs less than its vanilla alter ego;
* G2G memory stays "within a constant factor" of the alter ego
  (Sec. VIII) — asserted at < 4x;
* G2G success and delay stay in the neighborhood of the alter ego
  (the paper reports "very close"; our synthetic traces concede a
  slightly larger success gap, recorded in EXPERIMENTS.md).
"""

from repro.experiments import fig8

from .conftest import run_once, save_and_print


def test_fig8(benchmark, quick, results_dir):
    panels = run_once(benchmark, lambda: fig8.run(quick=quick))
    for trace_name, panel in panels.items():
        save_and_print(results_dir, f"fig8-{trace_name}", panel.render())
        epidemic = panel.point("epidemic")
        for vanilla_name, g2g_name in fig8.PAIRINGS:
            vanilla = panel.point(vanilla_name)
            g2g = panel.point(g2g_name)
            label = f"{trace_name}:{g2g_name}"
            assert g2g.cost <= vanilla.cost, label
            assert g2g.mean_delay_s < vanilla.mean_delay_s * 2.0, label
            assert g2g.success_percent > vanilla.success_percent * 0.6, label
            assert panel.memory_factor(vanilla_name, g2g_name) < 4.0, label
        # Epidemic is the cost outlier.
        for name in (
            "delegation_last_contact",
            "delegation_frequency",
            "g2g_delegation_last_contact",
            "g2g_delegation_frequency",
        ):
            assert epidemic.cost > 2 * panel.point(name).cost, trace_name
