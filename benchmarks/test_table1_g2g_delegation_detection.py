"""Benchmark regenerating Table I: G2G Delegation detection performance.

Paper shape assertions:

* every adversary kind is detected with a substantial probability and
  zero false positives;
* droppers are detected faster than cheaters (the paper's ordering on
  both traces; liars sit between them on Infocom);
* Cambridge 06 detection is slower than Infocom 05 for the same kind
  (lower contact frequency).
"""

from repro.experiments import table1

from .conftest import run_once, save_and_print


def test_table1(benchmark, quick, results_dir):
    table = run_once(benchmark, lambda: table1.run(quick=quick))
    save_and_print(results_dir, "table1", table.render())
    for (kind, trace_name), cell in table.cells.items():
        label = f"{kind}/{trace_name}"
        assert cell.false_positives == 0, label
        assert cell.detection_rate > 0.3, label
    for trace_name in ("infocom05", "cambridge06"):
        droppers = table.cells[("dropper", trace_name)]
        cheaters = table.cells[("cheater", trace_name)]
        assert (
            droppers.detection_minutes <= cheaters.detection_minutes + 5.0
        ), trace_name
    # Cambridge is slower for droppers (the paper's 12 vs 21 minutes).
    assert (
        table.cells[("dropper", "infocom05")].detection_minutes
        <= table.cells[("dropper", "cambridge06")].detection_minutes + 5.0
    )
