"""Shim for legacy editable installs (no `wheel` package offline).

All real metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517 --no-build-isolation`` works in the
offline environment.
"""

from setuptools import setup

setup()
