"""Build shim: legacy editable installs + the optional compiled build.

All real metadata lives in pyproject.toml.  This file exists for two
reasons:

* ``pip install -e . --no-use-pep517 --no-build-isolation`` works in
  the offline environment (no ``wheel`` package needed).
* The opt-in compiled build: with ``REPRO_FAST=1`` in the environment
  (and mypyc importable — ``pip install .[fast]`` pulls it in via
  mypy), the strict-typed hot modules are mypyc-compiled to C
  extensions.  Results are bit-identical to the pure-Python build —
  CI's compiled-wheel job runs the golden and determinism-digest
  suites against the compiled modules to prove it; only wall-clock
  changes.

The gate is deliberately belt-and-braces: no env var -> pure Python;
env var set but mypyc missing -> a warning on stderr and the plain
pure-Python build (graceful fallback, never a hard failure).
"""

import os
import sys

from setuptools import setup

#: The hot modules the compiled build targets.  Strict-typed (see the
#: mypy overrides in pyproject.toml); keep in sync with
#: ``repro.perf.compiled.HOT_COMPILED_MODULES``, which is what the
#: runtime/CI build check inspects.
FAST_MODULES = [
    "src/repro/core/wire.py",
    "src/repro/crypto/hashing.py",
    "src/repro/sim/events.py",
    "src/repro/sim/node.py",
]


def _ext_modules():
    if os.environ.get("REPRO_FAST") != "1":
        return []
    try:
        from mypyc.build import mypycify
    except ImportError:
        print(
            "REPRO_FAST=1 set but mypyc is not installed; building "
            "pure-Python instead (install the [fast] extra for the "
            "compiled build)",
            file=sys.stderr,
        )
        return []
    return mypycify(FAST_MODULES)


setup(ext_modules=_ext_modules())
