"""Tests for metric collection and derivation."""

import pytest

from repro.sim.messages import Message
from repro.sim.results import DetectionRecord, SimulationResults


def msg(i, created=0.0, ttl=600.0):
    return Message(
        msg_id=i, source=0, destination=1, created_at=created, ttl=ttl
    )


@pytest.fixture
def results():
    return SimulationResults(protocol="test", trace="t", seed=0)


class TestDelivery:
    def test_success_rate(self, results):
        m1, m2 = msg(1), msg(2)
        results.record_generated(m1)
        results.record_generated(m2)
        results.record_delivery(m1, 100.0)
        assert results.generated == 2
        assert results.delivered == 1
        assert results.success_rate == 0.5

    def test_first_delivery_wins(self, results):
        m = msg(1, created=50.0)
        results.record_generated(m)
        results.record_delivery(m, 100.0)
        results.record_delivery(m, 400.0)
        assert results.messages[1].delay == 50.0

    def test_empty_run(self, results):
        assert results.success_rate == 0.0
        assert results.mean_delay == 0.0
        assert results.cost == 0.0

    def test_delays(self, results):
        for i, delivered in ((1, 100.0), (2, 300.0)):
            m = msg(i, created=0.0)
            results.record_generated(m)
            results.record_delivery(m, delivered)
        assert results.mean_delay == 200.0
        assert results.median_delay == 200.0

    def test_cost(self, results):
        m1, m2 = msg(1), msg(2)
        results.record_generated(m1)
        results.record_generated(m2)
        for _ in range(4):
            results.record_replica(m1)
        assert results.cost == 2.0


class TestDetection:
    def rec(self, offender, t=1000.0, deviation="dropper", msg_id=1):
        return DetectionRecord(
            offender=offender,
            detector=0,
            time=t,
            msg_id=msg_id,
            deviation=deviation,
            delay_after_ttl=t - 600.0,
        )

    def test_detection_rate(self, results):
        results.record_detection(self.rec(5))
        assert results.detection_rate([5, 6]) == 0.5
        assert results.detection_rate([]) == 0.0

    def test_false_positives(self, results):
        results.record_detection(self.rec(5))
        results.record_detection(self.rec(9))
        assert results.false_positives([5]) == {9}

    def test_first_detections(self, results):
        results.record_detection(self.rec(5, t=2000.0))
        results.record_detection(self.rec(5, t=1000.0))
        assert results.first_detections()[5].time == 1000.0

    def test_mean_detection_delay(self, results):
        results.record_detection(self.rec(5, t=700.0))
        results.record_detection(self.rec(6, t=900.0))
        assert results.mean_detection_delay() == pytest.approx(200.0)

    def test_offender_anchored_delay(self, results):
        m = msg(1, created=0.0, ttl=600.0)
        results.record_generated(m)
        results.record_deviation(5, m)
        results.record_detection(self.rec(5, t=1000.0))
        # anchor = 600 (expiry of first deviated-on message)
        assert results.offender_detection_delays()[5] == 400.0

    def test_offender_delay_clamped(self, results):
        m = msg(1, created=0.0, ttl=600.0)
        results.record_generated(m)
        results.record_deviation(5, m)
        results.record_detection(self.rec(5, t=100.0))
        assert results.offender_detection_delays()[5] == 0.0

    def test_deviation_counts(self, results):
        m = msg(1)
        results.record_generated(m)
        results.record_deviation(5, m)
        results.record_deviation(5, m)
        assert results.deviation_counts[5] == 2


class TestOverheads:
    def test_energy(self, results):
        results.add_energy(1, 0.5)
        results.add_energy(1, 0.25)
        results.add_energy(2, 1.0)
        assert results.energy[1] == 0.75
        assert results.total_energy == 1.75

    def test_memory(self, results):
        results.add_memory(1, 1024.0)
        results.add_memory(1, 1024.0)
        assert results.total_memory_byte_seconds == 2048.0

    def test_eviction_first_wins(self, results):
        results.record_eviction(3, 100.0)
        results.record_eviction(3, 200.0)
        assert results.evicted_at[3] == 100.0

    def test_summary_keys(self, results):
        summary = results.summary()
        assert {
            "generated",
            "delivered",
            "success_rate",
            "mean_delay",
            "cost",
        } <= set(summary)


class TestSessionRefusalCounter:
    def test_default_zero(self, results):
        assert results.session_refusals == 0
