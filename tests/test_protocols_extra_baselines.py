"""Tests for the beyond-paper DTN baselines: Spray and Wait, PRoPHET,
BubbleRap."""

import pytest

from repro.protocols import (
    BubbleRapForwarding,
    EpidemicForwarding,
    ProphetForwarding,
    SprayAndWaitForwarding,
)
from repro.protocols.prophet import P_INIT
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace, make_contact


def quick_cfg(**overrides):
    base = dict(
        run_length=10_000.0, silent_tail=1000.0, mean_interarrival=1e6,
        ttl=5000.0, seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def harness(protocol, nodes=8, community=None):
    trace = ContactTrace(name="m", nodes=tuple(range(nodes)), contacts=())
    sim = Simulation(trace, protocol, quick_cfg(), community=community)
    ctx = sim._build_context()
    protocol.bind(ctx)
    return ctx


def inject(protocol, ctx, source, destination, created, msg_id=0):
    message = Message(
        msg_id=msg_id, source=source, destination=destination,
        created_at=created, ttl=5000.0,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


class TestSprayAndWait:
    def test_tokens_halve_on_spray(self):
        protocol = SprayAndWaitForwarding(initial_copies=8)
        ctx = harness(protocol)
        inject(protocol, ctx, source=0, destination=7, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        assert protocol.tokens_of(0, 0) == 4
        assert protocol.tokens_of(1, 0) == 4
        protocol.on_contact_start(1, 2, 20.0)
        assert protocol.tokens_of(1, 0) == 2
        assert protocol.tokens_of(2, 0) == 2

    def test_single_token_waits(self):
        protocol = SprayAndWaitForwarding(initial_copies=2)
        ctx = harness(protocol)
        inject(protocol, ctx, source=0, destination=7, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)  # 0:1 token, 1:1 token
        protocol.on_contact_start(1, 2, 20.0)  # 1 must wait
        assert not ctx.node(2).has_copy(0)

    def test_wait_phase_still_delivers(self):
        protocol = SprayAndWaitForwarding(initial_copies=2)
        ctx = harness(protocol)
        inject(protocol, ctx, source=0, destination=7, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        protocol.on_contact_start(1, 7, 20.0)  # direct delivery
        assert ctx.results.delivered == 1

    def test_total_tokens_conserved(self):
        protocol = SprayAndWaitForwarding(initial_copies=8)
        ctx = harness(protocol)
        inject(protocol, ctx, source=0, destination=7, created=0.0)
        for a, b, t in ((0, 1, 10.0), (0, 2, 20.0), (1, 3, 30.0)):
            protocol.on_contact_start(a, b, t)
        total = sum(protocol.tokens_of(n, 0) for n in range(8))
        assert total == 8

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            SprayAndWaitForwarding(initial_copies=0)

    def test_cost_bounded_by_budget(self, mini_synthetic):
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1800.0, seed=5,
        )
        budget = 4
        results = Simulation(
            mini_synthetic.trace, SprayAndWaitForwarding(budget), config
        ).run()
        # Each hand-off moves tokens: at most budget replicas total
        # per message (including delivery).
        for record in results.messages.values():
            assert record.replicas <= budget


class TestProphet:
    def test_encounter_raises_predictability(self):
        protocol = ProphetForwarding()
        ctx = harness(protocol)
        protocol.on_contact_start(0, 1, 10.0)
        assert protocol.predictability(0, 1, 10.0) == pytest.approx(P_INIT)
        protocol.on_contact_start(0, 1, 11.0)
        assert protocol.predictability(0, 1, 11.0) > P_INIT

    def test_aging_decays(self):
        protocol = ProphetForwarding()
        ctx = harness(protocol)
        protocol.on_contact_start(0, 1, 10.0)
        early = protocol.predictability(0, 1, 10.0)
        late = protocol.predictability(0, 1, 5000.0)
        assert late < early

    def test_transitivity(self):
        protocol = ProphetForwarding()
        ctx = harness(protocol)
        protocol.on_contact_start(1, 2, 10.0)  # 1 knows 2
        protocol.on_contact_start(0, 1, 20.0)  # 0 learns about 2 via 1
        assert protocol.predictability(0, 2, 20.0) > 0.0

    def test_forwards_only_to_better_carrier(self):
        protocol = ProphetForwarding()
        ctx = harness(protocol)
        # node 1 frequently meets destination 7.
        protocol.on_contact_start(1, 7, 10.0)
        inject(protocol, ctx, source=0, destination=7, created=20.0)
        protocol.on_contact_start(0, 2, 30.0)  # 2 knows nothing of 7
        assert not ctx.node(2).has_copy(0)
        protocol.on_contact_start(0, 1, 40.0)
        assert ctx.node(1).has_copy(0)


class FakeCommunity:
    def same_community(self, a, b):
        return (a < 4) == (b < 4)


class TestBubbleRap:
    def test_requires_community(self):
        protocol = BubbleRapForwarding()
        with pytest.raises(ValueError):
            harness(protocol, community=None)

    def test_bubbles_up_local_rank_inside_community(self):
        protocol = BubbleRapForwarding()
        ctx = harness(protocol, community=FakeCommunity())
        # node 5 builds local centrality inside community B (nodes 4-7).
        protocol.on_contact_start(5, 6, 1.0)
        # message from 4 (community B) to 7 (community B), carried by 4
        # (local centrality 0 towards B beyond the contact below):
        inject(protocol, ctx, source=4, destination=7, created=10.0)
        # 5's local centrality (1) exceeds 4's (0): bubble up locally.
        protocol.on_contact_start(4, 5, 20.0)
        assert ctx.node(5).has_copy(0)

    def test_enters_destination_community(self):
        protocol = BubbleRapForwarding()
        ctx = harness(protocol, community=FakeCommunity())
        inject(protocol, ctx, source=0, destination=7, created=0.0)
        # node 0 (community A) meets node 4 (community B = dst's):
        protocol.on_contact_start(0, 4, 10.0)
        assert ctx.node(4).has_copy(0)

    def test_never_bubbles_out_of_community(self):
        protocol = BubbleRapForwarding()
        ctx = harness(protocol, community=FakeCommunity())
        # give node 0 (community A) high global centrality
        for peer, t in ((1, 1.0), (2, 2.0), (3, 3.0)):
            protocol.on_contact_start(0, peer, t)
        # message held by 5 (community B) for 7 (community B):
        inject(protocol, ctx, source=5, destination=7, created=10.0, msg_id=1)
        protocol.on_contact_start(5, 0, 20.0)
        assert not ctx.node(0).has_copy(1)

    def test_full_run_with_detected_communities(self, mini_synthetic):
        from repro.social import CommunityMap

        community = CommunityMap.detect(
            mini_synthetic.trace, k=3, edge_quantile=0.7
        )
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1800.0, seed=5,
        )
        epidemic = Simulation(
            mini_synthetic.trace, EpidemicForwarding(), config,
            community=community,
        ).run()
        bubble = Simulation(
            mini_synthetic.trace, BubbleRapForwarding(), config,
            community=community,
        ).run()
        assert bubble.delivered > 0
        assert bubble.cost < epidemic.cost
