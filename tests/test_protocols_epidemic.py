"""Protocol-level tests for vanilla Epidemic Forwarding."""

import pytest

from repro.adversaries import Dropper
from repro.protocols import EpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace, make_contact


def harness(trace, config=None, strategies=None):
    """Bind a fresh epidemic protocol to a context for manual driving."""
    config = config or SimulationConfig(
        run_length=4000.0, silent_tail=1000.0, mean_interarrival=1e6,
        ttl=2000.0,
    )
    protocol = EpidemicForwarding()
    sim = Simulation(trace, protocol, config, strategies=strategies)
    ctx = sim._build_context()
    protocol.bind(ctx)
    return protocol, ctx


def inject(protocol, ctx, source, destination, created, ttl=2000.0, msg_id=0):
    message = Message(
        msg_id=msg_id, source=source, destination=destination,
        created_at=created, ttl=ttl,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


class TestRelaying:
    def test_every_contact_spreads(self, star_trace):
        protocol, ctx = harness(star_trace)
        inject(protocol, ctx, source=0, destination=4, created=0.0)
        for c in star_trace.contacts:
            protocol.on_contact_start(c.a, c.b, c.start)
        # all four peers got copies (4 is the destination)
        assert ctx.results.messages[0].replicas == 4
        assert ctx.results.delivered == 1

    def test_no_duplicate_to_same_node(self, pair_trace):
        protocol, ctx = harness(pair_trace)
        inject(protocol, ctx, source=0, destination=1, created=0.0, ttl=5000.0)
        for c in pair_trace.contacts:
            protocol.on_contact_start(c.a, c.b, c.start)
        assert ctx.results.messages[0].replicas == 1

    def test_generation_mid_contact_spreads_immediately(self, pair_trace):
        protocol, ctx = harness(pair_trace)
        ctx.active_contacts.add(frozenset((0, 1)))
        inject(protocol, ctx, source=0, destination=1, created=150.0)
        assert ctx.results.delivered == 1

    def test_expired_copies_purged(self):
        trace = ContactTrace(
            name="t",
            nodes=(0, 1, 2),
            contacts=(
                make_contact(0, 1, 100.0, 200.0),
                make_contact(1, 2, 3000.0, 3100.0),
            ),
        )
        protocol, ctx = harness(trace)
        inject(protocol, ctx, source=0, destination=2, created=0.0, ttl=500.0)
        protocol.on_contact_start(0, 1, 100.0)
        assert ctx.node(1).has_copy(0)
        protocol.on_contact_start(1, 2, 3000.0)  # expired by now
        assert not ctx.node(1).has_copy(0)
        assert ctx.results.delivered == 0


class TestDroppers:
    def test_dropper_sinks_messages(self):
        trace = ContactTrace(
            name="t",
            nodes=(0, 1, 2),
            contacts=(
                make_contact(0, 1, 100.0, 200.0),
                make_contact(1, 2, 400.0, 500.0),
            ),
        )
        protocol, ctx = harness(trace, strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=2, created=0.0)
        for c in trace.contacts:
            protocol.on_contact_start(c.a, c.b, c.start)
        # node 1 accepted (replica 1) then dropped; 2 never gets it.
        assert ctx.results.messages[0].replicas == 1
        assert ctx.results.delivered == 0
        assert ctx.results.deviation_counts[1] == 1

    def test_dropper_still_receives_own_messages(self):
        trace = ContactTrace(
            name="t",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 100.0, 200.0),),
        )
        protocol, ctx = harness(trace, strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=1, created=0.0)
        protocol.on_contact_start(0, 1, 100.0)
        assert ctx.results.delivered == 1

    def test_dropper_not_reinfected(self):
        trace = ContactTrace(
            name="t",
            nodes=(0, 1, 2),
            contacts=(
                make_contact(0, 1, 100.0, 200.0),
                make_contact(0, 1, 400.0, 500.0),
            ),
        )
        protocol, ctx = harness(trace, strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=2, created=0.0)
        for c in trace.contacts:
            protocol.on_contact_start(c.a, c.b, c.start)
        # The second meeting must not re-relay: node 1 already "saw" it.
        assert ctx.results.messages[0].replicas == 1

    def test_full_run_with_droppers_degrades(self, mini_synthetic):
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1200.0, seed=4,
        )
        trace = mini_synthetic.trace
        honest = Simulation(trace, EpidemicForwarding(), config).run()
        strategies = {n: Dropper() for n in trace.nodes}
        all_drop = Simulation(
            trace, EpidemicForwarding(), config, strategies=strategies
        ).run()
        assert all_drop.success_rate < honest.success_rate
        assert all_drop.cost < honest.cost
