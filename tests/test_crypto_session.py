"""Tests for pairwise authenticated sessions."""

import random

import pytest

from repro.crypto import Authority, SessionBroker, SessionError
from repro.crypto.session import open_session_pair


@pytest.fixture
def broker(provider, rng):
    return SessionBroker(provider, rng)


@pytest.fixture
def pair(authority):
    return authority.enroll(1), authority.enroll(2)


class TestHandshake:
    def test_session_established(self, broker, pair):
        a, b = pair
        session = broker.handshake(a, b, now=10.0)
        assert session.opened_at == 10.0
        assert session.initiator.node_id == 1
        assert session.responder.node_id == 2

    def test_channel_carries_data(self, broker, pair):
        a, b = pair
        session = broker.handshake(a, b, now=0.0)
        assert session.channel.open(session.channel.seal(b"hi")) == b"hi"

    def test_peer_of(self, broker, pair):
        a, b = pair
        session = broker.handshake(a, b, now=0.0)
        assert session.peer_of(1) == 2
        assert session.peer_of(2) == 1

    def test_peer_of_unknown_raises(self, broker, pair):
        a, b = pair
        session = broker.handshake(a, b, now=0.0)
        with pytest.raises(ValueError):
            session.peer_of(9)

    def test_foreign_authority_rejected(self, provider, broker, authority):
        a = authority.enroll(1)
        rogue_authority = Authority(provider)
        mallory = rogue_authority.enroll(66)
        with pytest.raises(SessionError):
            broker.handshake(a, mallory, now=0.0)

    def test_non_raising_wrapper_success(self, broker, pair):
        a, b = pair
        session, err = open_session_pair(broker, a, b, now=0.0)
        assert err is None
        assert session is not None

    def test_non_raising_wrapper_failure(self, provider, broker, authority):
        a = authority.enroll(1)
        mallory = Authority(provider).enroll(66)
        session, err = open_session_pair(broker, a, mallory, now=0.0)
        assert session is None
        assert isinstance(err, SessionError)

    def test_fresh_keys_per_session(self, broker, pair):
        a, b = pair
        s1 = broker.handshake(a, b, now=0.0)
        s2 = broker.handshake(a, b, now=1.0)
        assert s1.channel.key != s2.channel.key
