"""Tests for k-clique percolation community detection."""

import networkx as nx
import pytest

from repro.social.communities import (
    CommunityMap,
    bron_kerbosch_maximal_cliques,
    k_clique_communities,
)
from repro.social.graph import ContactGraph
from repro.traces import ContactTrace, make_contact


def graph_from_edges(edges):
    """Build a ContactGraph from an explicit edge list."""
    nodes = sorted({n for e in edges for n in e})
    return ContactGraph(
        nodes=tuple(nodes),
        edges={frozenset(e): (1, 1.0) for e in edges},
    )


TWO_TRIANGLES_BRIDGED = [
    (0, 1), (1, 2), (0, 2),       # triangle A
    (3, 4), (4, 5), (3, 5),       # triangle B
    (2, 3),                       # bridge edge (not a triangle)
]

OVERLAPPING_CLIQUES = [
    # two 4-cliques sharing an edge -> one k=3 percolation community
    (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
    (2, 3), (2, 4), (2, 5), (3, 4), (3, 5), (4, 5),
]


class TestBronKerbosch:
    def test_triangle(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        cliques = bron_kerbosch_maximal_cliques(g.adjacency())
        assert frozenset({0, 1, 2}) in cliques

    def test_matches_networkx(self):
        edges = TWO_TRIANGLES_BRIDGED + [(1, 3), (0, 5)]
        g = graph_from_edges(edges)
        ours = set(bron_kerbosch_maximal_cliques(g.adjacency()))
        nxg = nx.Graph(edges)
        theirs = {frozenset(c) for c in nx.find_cliques(nxg)}
        assert ours == theirs

    def test_empty_graph(self):
        g = graph_from_edges([])
        assert bron_kerbosch_maximal_cliques(g.adjacency()) == []


class TestKCliquePercolation:
    def test_two_triangles_stay_separate(self):
        g = graph_from_edges(TWO_TRIANGLES_BRIDGED)
        communities = k_clique_communities(g, k=3)
        assert sorted(sorted(c) for c in communities) == [
            [0, 1, 2],
            [3, 4, 5],
        ]

    def test_overlapping_cliques_merge(self):
        g = graph_from_edges(OVERLAPPING_CLIQUES)
        communities = k_clique_communities(g, k=3)
        assert len(communities) == 1
        assert communities[0] == frozenset(range(6))

    def test_matches_networkx_percolation(self):
        edges = TWO_TRIANGLES_BRIDGED + [(1, 3), (2, 4)]
        g = graph_from_edges(edges)
        ours = set(k_clique_communities(g, k=3))
        nxg = nx.Graph(edges)
        theirs = {
            frozenset(c) for c in nx.community.k_clique_communities(nxg, 3)
        }
        assert ours == theirs

    def test_k4_needs_four_cliques(self):
        g = graph_from_edges(TWO_TRIANGLES_BRIDGED)
        assert k_clique_communities(g, k=4) == []

    def test_k_below_two_rejected(self):
        g = graph_from_edges(TWO_TRIANGLES_BRIDGED)
        with pytest.raises(ValueError):
            k_clique_communities(g, k=1)


class TestCommunityMap:
    def test_primary_assignment(self):
        communities = [frozenset({0, 1, 2}), frozenset({3, 4})]
        cmap = CommunityMap.from_communities(communities, universe=range(6))
        assert cmap.community_of(0) == 0
        assert cmap.community_of(3) == 1
        assert cmap.community_of(5) == -1

    def test_overlap_resolved_to_largest(self):
        communities = [frozenset({0, 1, 2, 3}), frozenset({3, 4})]
        cmap = CommunityMap.from_communities(communities, universe=range(5))
        assert cmap.community_of(3) == 0

    def test_same_community(self):
        communities = [frozenset({0, 1}), frozenset({2, 3})]
        cmap = CommunityMap.from_communities(communities, universe=range(5))
        assert cmap.same_community(0, 1)
        assert not cmap.same_community(0, 2)
        # Unassigned nodes have no insiders, not even themselves.
        assert not cmap.same_community(4, 4)

    def test_coverage(self):
        communities = [frozenset({0, 1})]
        cmap = CommunityMap.from_communities(communities, universe=range(4))
        assert cmap.coverage() == 0.5

    def test_detect_on_synthetic(self, mini_synthetic):
        cmap = CommunityMap.detect(
            mini_synthetic.trace, k=3, edge_quantile=0.5
        )
        assert cmap.num_communities >= 1
        assert cmap.coverage() > 0.5

    def test_detect_recovers_ground_truth_majority(self, mini_synthetic):
        truth = mini_synthetic.assignment
        cmap = CommunityMap.detect(
            mini_synthetic.trace, k=3, edge_quantile=0.7
        )
        nodes = sorted(truth.community_of)
        agree = total = 0
        for i in nodes:
            for j in nodes:
                if j <= i:
                    continue
                total += 1
                if cmap.same_community(i, j) == truth.same_community(i, j):
                    agree += 1
        assert agree / total > 0.6
