"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry import read_jsonl, validate_record


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.trace == "infocom05"
        assert args.protocol == "g2g_epidemic"
        assert args.count == 0

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig8"])
        assert args.name == "fig8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig9"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bad_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "prophet"])

    def test_shared_flags_are_uniform(self):
        """--trace/--protocol parse identically on every command."""
        for command in ("simulate", "sweep", "trace", "communities"):
            args = build_parser().parse_args(
                [command] + (["fake"] if command == "experiment" else [])
            )
            assert args.trace == "infocom05"
        for command in ("simulate", "sweep"):
            args = build_parser().parse_args(
                [command, "--protocol", "epidemic"]
            )
            assert args.protocol == "epidemic"
        for command, extra in (("experiment", ["fig8"]), ("sweep", [])):
            args = build_parser().parse_args(
                [command, *extra, "--workers", "3"]
            )
            assert args.workers == 3
            assert args.telemetry_dir is None


class TestCommands:
    def test_trace_command(self, capsys, tmp_path):
        out = tmp_path / "t.contacts"
        code = main(
            ["trace", "--trace", "infocom05", "--out", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "41 nodes" in captured
        assert out.exists()

    def test_communities_command(self, capsys):
        code = main(["communities", "--trace", "infocom05", "--k", "3"])
        assert code == 0
        assert "communities" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "--trace", "infocom05",
                "--protocol", "epidemic",
                "--seed", "1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "Epidemic on infocom05" in captured
        assert "replicas/message" in captured

    def test_simulate_with_adversaries(self, capsys):
        code = main(
            [
                "simulate",
                "--trace", "infocom05",
                "--protocol", "g2g_epidemic",
                "--adversary", "dropper",
                "--count", "5",
                "--seed", "1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "planted 5 x dropper" in captured
        assert "detection:" in captured


class TestSweepCommand:
    def test_sweep_runs_and_resumes(self, capsys, tmp_path):
        args = [
            "sweep",
            "--trace", "infocom05",
            "--protocol", "epidemic",
            "--counts", "0",
            "--seeds", "1",
            "--archive", str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "[ran   ]" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "[cached]" in second

    def test_sweep_csv_export(self, capsys, tmp_path):
        out = tmp_path / "rows.csv"
        code = main(
            [
                "sweep",
                "--trace", "infocom05",
                "--protocol", "epidemic",
                "--counts", "0",
                "--seeds", "1",
                "--archive", str(tmp_path),
                "--csv", str(out),
            ]
        )
        assert code == 0
        assert out.exists()


class TestTelemetryCLI:
    def test_simulate_json_emits_valid_record(self, capsys):
        code = main(
            [
                "simulate",
                "--trace", "infocom05",
                "--protocol", "epidemic",
                "--seed", "1",
                "--json",
            ]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert validate_record(record) == []
        assert record["protocol"] == "epidemic"
        assert record["seed"] == 1

    def test_simulate_telemetry_dir_then_summarize(self, capsys, tmp_path):
        code = main(
            [
                "simulate",
                "--trace", "infocom05",
                "--protocol", "epidemic",
                "--seed", "1",
                "--telemetry-dir", str(tmp_path),
            ]
        )
        assert code == 0
        records = read_jsonl(str(tmp_path / "runs.jsonl"))
        assert len(records) == 1
        assert validate_record(records[0]) == []

        assert main(["telemetry", "validate", str(tmp_path)]) == 0
        assert "1 records valid" in capsys.readouterr().out

        assert main(["telemetry", "summarize", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary: 1 runs" in out
        assert "# TYPE run_count counter" in out

    def test_telemetry_summarize_json(self, capsys, tmp_path):
        main(
            [
                "simulate",
                "--trace", "infocom05",
                "--protocol", "epidemic",
                "--seed", "1",
                "--telemetry-dir", str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(tmp_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kind"] == "summary"
        assert summary["runs"] == 1
        assert summary["telemetry"]["counters"]["run.count"] == 1

    def test_telemetry_validate_flags_bad_records(self, capsys, tmp_path):
        (tmp_path / "bad.jsonl").write_text('{"schema": 99}\n')
        assert main(["telemetry", "validate", str(tmp_path)]) == 1
        assert "problems" in capsys.readouterr().out

    def test_sweep_parallel_with_telemetry(self, capsys, tmp_path):
        archive = tmp_path / "archive"
        telemetry = tmp_path / "telemetry"
        code = main(
            [
                "sweep",
                "--trace", "infocom05",
                "--protocol", "epidemic",
                "--counts", "0",
                "--seeds", "1,2",
                "--archive", str(archive),
                "--workers", "2",
                "--telemetry-dir", str(telemetry),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("[ran   ]") == 2
        records = read_jsonl(str(telemetry / "sweep.jsonl"))
        assert len(records) == 2
        assert all(validate_record(r) == [] for r in records)


class TestExperimentCommand:
    def test_experiment_fig8_stubbed(self, capsys, monkeypatch):
        from repro.experiments import fig8 as fig8_module
        from repro.experiments.fig8 import Fig8Panel, ProtocolPoint

        panel = Fig8Panel(trace="infocom05")
        for name, label in (
            ("epidemic", "Epidemic"),
            ("g2g_epidemic", "G2G Epidemic"),
            ("delegation_last_contact", "Deleg.Dest Last Contact"),
            ("g2g_delegation_last_contact", "G2G Dest Last Contact"),
            ("delegation_frequency", "Deleg.Dest Frequency"),
            ("g2g_delegation_frequency", "G2G Dest Frequency"),
        ):
            panel.points.append(
                ProtocolPoint(
                    protocol=name, label=label, success_percent=50.0,
                    mean_delay_s=600.0, cost=10.0,
                )
            )
        monkeypatch.setattr(
            fig8_module, "run",
            lambda quick, options=None: {"infocom05": panel},
        )
        assert main(["experiment", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "G2G Epidemic" in out


class TestExperimentCommandAllFigures:
    """Each experiment subcommand prints its stubbed rendering."""

    @pytest.fixture
    def stub_all(self, monkeypatch):
        from repro.experiments import fig3, fig4, fig5, fig7, table1
        from repro.experiments.fig4 import DetectionFigure
        from repro.experiments.runner import FigureData, Series

        figure = FigureData(
            figure_id="stub", title="stub", x_label="x", y_label="y",
            series=[Series(label="s", xs=[0.0], ys=[1.0])],
        )
        monkeypatch.setattr(
            fig3, "run",
            lambda quick, options=None: {"infocom05": figure},
        )
        monkeypatch.setattr(
            fig5, "run",
            lambda quick, options=None: {("droppers", "infocom05"): figure},
        )
        monkeypatch.setattr(
            fig7, "run",
            lambda quick, options=None: {"infocom05": figure},
        )
        monkeypatch.setattr(
            fig4,
            "run",
            lambda quick, options=None: {
                "infocom05": DetectionFigure(
                    figure=figure, detection_rates={"Droppers": 0.9}
                )
            },
        )

        class StubTable:
            def render(self):
                return "stub table"

        monkeypatch.setattr(
            table1, "run", lambda quick, options=None: StubTable()
        )
        return figure

    @pytest.mark.parametrize("name", ["fig3", "fig5", "fig7"])
    def test_figure_commands(self, stub_all, capsys, name):
        assert main(["experiment", name]) == 0
        assert "stub" in capsys.readouterr().out

    def test_fig4_prints_rates(self, stub_all, capsys):
        assert main(["experiment", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "detection probability" in out
        assert "90.0%" in out

    def test_table1(self, stub_all, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "stub table" in capsys.readouterr().out
