"""Protocol-level tests for vanilla Delegation Forwarding."""

import pytest

from repro.adversaries import Dropper, Liar
from repro.protocols import DelegationForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace, make_contact


def harness(trace, variant="last_contact", strategies=None):
    config = SimulationConfig(
        run_length=10_000.0, silent_tail=1000.0, mean_interarrival=1e6,
        ttl=5000.0, quality_timeframe=500.0,
    )
    protocol = DelegationForwarding(variant)
    sim = Simulation(trace, protocol, config, strategies=strategies)
    ctx = sim._build_context()
    protocol.bind(ctx)
    return protocol, ctx


def inject(protocol, ctx, source, destination, created, msg_id=0):
    message = Message(
        msg_id=msg_id, source=source, destination=destination,
        created_at=created, ttl=5000.0,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


def quality_ladder_trace():
    """Node 1 keeps meeting the destination 3; node 2 never does.

    0 then meets both 1 and 2: only 1 qualifies as a relay.
    """
    return ContactTrace(
        name="ladder",
        nodes=(0, 1, 2, 3),
        contacts=(
            make_contact(1, 3, 100.0, 150.0),
            make_contact(1, 3, 300.0, 350.0),
            make_contact(0, 2, 1000.0, 1050.0),
            make_contact(0, 1, 2000.0, 2050.0),
            make_contact(1, 3, 3000.0, 3050.0),
        ),
    )


class TestForwardingRule:
    def test_only_better_nodes_get_copies(self):
        trace = quality_ladder_trace()
        protocol, ctx = harness(trace)
        for c in trace.contacts[:2]:
            protocol.on_contact_start(c.a, c.b, c.start)
        inject(protocol, ctx, source=0, destination=3, created=500.0)
        protocol.on_contact_start(0, 2, 1000.0)
        assert not ctx.node(2).has_copy(0)  # 2 has quality 0, msg has 0
        protocol.on_contact_start(0, 1, 2000.0)
        assert ctx.node(1).has_copy(0)  # 1 met 3 twice

    def test_copy_quality_updated_on_forward(self):
        trace = quality_ladder_trace()
        protocol, ctx = harness(trace, variant="frequency")
        for c in trace.contacts[:2]:
            protocol.on_contact_start(c.a, c.b, c.start)
        inject(protocol, ctx, source=0, destination=3, created=500.0)
        protocol.on_contact_start(0, 1, 2000.0)
        # Both copies labelled with node 1's quality (2 encounters).
        assert ctx.node(0).buffer[0].quality == 2.0
        assert ctx.node(1).buffer[0].quality == 2.0

    def test_destination_always_delivered(self):
        trace = quality_ladder_trace()
        protocol, ctx = harness(trace)
        for c in trace.contacts[:2]:
            protocol.on_contact_start(c.a, c.b, c.start)
        inject(protocol, ctx, source=0, destination=3, created=500.0)
        protocol.on_contact_start(0, 1, 2000.0)
        protocol.on_contact_start(1, 3, 3000.0)
        assert ctx.results.delivered == 1

    def test_initial_quality_is_senders(self):
        trace = quality_ladder_trace()
        protocol, ctx = harness(trace, variant="frequency")
        inject(protocol, ctx, source=1, destination=3, created=50.0)
        assert ctx.node(1).buffer[0].quality == 0.0

    def test_variant_in_name(self):
        assert DelegationForwarding("frequency").name == "delegation_frequency"
        assert (
            DelegationForwarding("last_contact").name
            == "delegation_last_contact"
        )


class TestAdversaries:
    def test_liar_never_qualifies(self):
        trace = quality_ladder_trace()
        protocol, ctx = harness(trace, strategies={1: Liar()})
        for c in trace.contacts[:2]:
            protocol.on_contact_start(c.a, c.b, c.start)
        inject(protocol, ctx, source=0, destination=3, created=500.0)
        protocol.on_contact_start(0, 1, 2000.0)
        # Liar declared 0 despite real quality; no relay happens.
        assert not ctx.node(1).has_copy(0)
        assert ctx.results.deviation_counts[1] == 1

    def test_liar_still_receives_as_destination(self):
        trace = ContactTrace(
            name="t", nodes=(0, 1),
            contacts=(make_contact(0, 1, 100.0, 150.0),),
        )
        protocol, ctx = harness(trace, strategies={1: Liar()})
        inject(protocol, ctx, source=0, destination=1, created=0.0)
        protocol.on_contact_start(0, 1, 100.0)
        assert ctx.results.delivered == 1

    def test_dropper_breaks_chain(self):
        trace = quality_ladder_trace()
        protocol, ctx = harness(trace, strategies={1: Dropper()})
        for c in trace.contacts[:2]:
            protocol.on_contact_start(c.a, c.b, c.start)
        inject(protocol, ctx, source=0, destination=3, created=500.0)
        protocol.on_contact_start(0, 1, 2000.0)
        protocol.on_contact_start(1, 3, 3000.0)
        # node 1 accepted the copy then dropped it: no delivery via 1.
        assert ctx.results.delivered == 0


class TestFullRuns:
    def test_delegation_cheaper_than_epidemic(self, mini_synthetic):
        from repro.protocols import EpidemicForwarding

        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1800.0, seed=3,
        )
        trace = mini_synthetic.trace
        epidemic = Simulation(trace, EpidemicForwarding(), config).run()
        delegation = Simulation(
            trace, DelegationForwarding("last_contact"), config
        ).run()
        assert delegation.cost < epidemic.cost
        assert delegation.success_rate <= epidemic.success_rate

    def test_variants_differ(self, mini_synthetic):
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1800.0, seed=3,
        )
        trace = mini_synthetic.trace
        freq = Simulation(
            trace, DelegationForwarding("frequency"), config
        ).run()
        last = Simulation(
            trace, DelegationForwarding("last_contact"), config
        ).run()
        assert freq.summary() != last.summary()
