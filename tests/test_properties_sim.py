"""Property-based invariants of the simulator and protocols.

Random small traces + random traffic; the invariants must hold for
every realization:

* accounting: delivered <= generated, delays in (0, run_length];
* faithfulness: honest G2G runs never produce detections or evictions;
* dominance: on identical contacts and traffic, vanilla Epidemic
  delivers a superset of G2G Epidemic (the give-2 cap only removes
  relay opportunities) and at least as many replicas.
"""

import random as _random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import G2GEpidemicForwarding
from repro.protocols import DelegationForwarding, EpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.traces import ContactTrace, make_contact


@st.composite
def small_traces(draw):
    """A random trace over 5-8 nodes with 5-30 short contacts."""
    num_nodes = draw(st.integers(5, 8))
    num_contacts = draw(st.integers(5, 30))
    seed = draw(st.integers(0, 10**6))
    rng = _random.Random(seed)
    contacts = []
    for _ in range(num_contacts):
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        while b == a:
            b = rng.randrange(num_nodes)
        start = rng.uniform(0.0, 3000.0)
        contacts.append(make_contact(a, b, start, start + rng.uniform(5, 60)))
    return ContactTrace(
        name=f"prop-{seed}",
        nodes=tuple(range(num_nodes)),
        contacts=tuple(contacts),
    )


CONFIG = SimulationConfig(
    run_length=4000.0,
    silent_tail=500.0,
    mean_interarrival=120.0,
    ttl=900.0,
    seed=11,
    heavy_hmac_iterations=2,
)


@settings(max_examples=25, deadline=None)
@given(trace=small_traces())
def test_accounting_invariants(trace):
    results = Simulation(trace, EpidemicForwarding(), CONFIG).run()
    assert 0 <= results.delivered <= results.generated
    for record in results.messages.values():
        if record.delivered:
            assert 0.0 <= record.delay <= CONFIG.run_length
            # delivery can only happen while the message is alive
            assert record.delay <= CONFIG.ttl
        assert record.replicas >= 0


@settings(max_examples=20, deadline=None)
@given(trace=small_traces())
def test_honest_g2g_never_detects(trace):
    results = Simulation(trace, G2GEpidemicForwarding(), CONFIG).run()
    assert results.detections == []
    assert results.evicted_at == {}


@settings(max_examples=20, deadline=None)
@given(trace=small_traces())
def test_epidemic_dominates_g2g(trace):
    epidemic = Simulation(trace, EpidemicForwarding(), CONFIG).run()
    g2g = Simulation(trace, G2GEpidemicForwarding(), CONFIG).run()
    delivered_epidemic = {
        m for m, r in epidemic.messages.items() if r.delivered
    }
    delivered_g2g = {m for m, r in g2g.messages.items() if r.delivered}
    assert delivered_g2g <= delivered_epidemic
    # replica dominance holds per message as well
    for msg_id, record in g2g.messages.items():
        assert record.replicas <= epidemic.messages[msg_id].replicas


@settings(max_examples=20, deadline=None)
@given(trace=small_traces())
def test_delegation_cost_bounded_by_epidemic(trace):
    epidemic = Simulation(trace, EpidemicForwarding(), CONFIG).run()
    delegation = Simulation(
        trace, DelegationForwarding("last_contact"), CONFIG
    ).run()
    assert delegation.cost <= epidemic.cost + 1e-9


@settings(max_examples=15, deadline=None)
@given(trace=small_traces(), seed=st.integers(0, 100))
def test_determinism(trace, seed):
    config = CONFIG.with_seed(seed)
    a = Simulation(trace, G2GEpidemicForwarding(), config).run()
    b = Simulation(trace, G2GEpidemicForwarding(), config).run()
    assert a.summary() == b.summary()
