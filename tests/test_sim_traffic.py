"""Tests for the Poisson traffic generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import SimulationConfig
from repro.sim.traffic import PoissonTraffic, demands_to_messages


def config(**overrides):
    base = dict(run_length=7200.0, silent_tail=1800.0, mean_interarrival=10.0)
    base.update(overrides)
    return SimulationConfig(**base)


class TestPoissonTraffic:
    def test_deterministic(self):
        a = PoissonTraffic((0, 1, 2), config(seed=3)).plan()
        b = PoissonTraffic((0, 1, 2), config(seed=3)).plan()
        assert a == b

    def test_seed_changes_plan(self):
        a = PoissonTraffic((0, 1, 2), config(seed=3)).plan()
        b = PoissonTraffic((0, 1, 2), config(seed=4)).plan()
        assert a != b

    def test_respects_deadline(self):
        plan = PoissonTraffic((0, 1, 2), config()).plan()
        assert all(d.time < 5400.0 for d in plan)

    def test_sorted_times(self):
        plan = PoissonTraffic((0, 1, 2), config()).plan()
        times = [d.time for d in plan]
        assert times == sorted(times)

    def test_distinct_endpoints(self):
        plan = PoissonTraffic((0, 1), config()).plan()
        assert all(d.source != d.destination for d in plan)

    def test_rate_roughly_matches(self):
        plan = PoissonTraffic(
            tuple(range(10)), config(mean_interarrival=5.0)
        ).plan()
        expected = 5400.0 / 5.0
        assert expected * 0.7 < len(plan) < expected * 1.3

    def test_uniform_endpoints(self):
        plan = PoissonTraffic(
            tuple(range(5)), config(mean_interarrival=2.0, seed=1)
        ).plan()
        from collections import Counter

        sources = Counter(d.source for d in plan)
        assert len(sources) == 5
        counts = sorted(sources.values())
        assert counts[0] > counts[-1] * 0.5  # no wild skew

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            PoissonTraffic((0,), config())

    @settings(max_examples=20)
    @given(seed=st.integers(0, 10**6))
    def test_endpoints_always_in_universe(self, seed):
        nodes = (3, 7, 11)
        plan = PoissonTraffic(nodes, config(seed=seed)).plan()
        for d in plan:
            assert d.source in nodes and d.destination in nodes


class TestDemandsToMessages:
    def test_instantiation(self):
        cfg = config(ttl=900.0, message_size=512)
        plan = PoissonTraffic((0, 1, 2), cfg).plan()[:5]
        messages = demands_to_messages(plan, cfg)
        assert len(messages) == 5
        assert [m.msg_id for m in messages] == list(range(5))
        for demand, message in zip(plan, messages):
            assert message.created_at == demand.time
            assert message.ttl == 900.0
            assert message.size_bytes == 512
