"""Determinism tests for the parallel experiment runner.

The parallel layer's correctness contract is *equivalence*: for fixed
seeds, ``workers=1``, ``workers=N``, and a warm cache must produce
bit-identical results (the merge happens in request order, so even
float summaries match exactly).  These tests pin that contract on
small, fast configurations, plus the crash-robustness guarantees
(worker errors surface without hanging the pool or corrupting the
cache).

Set ``REPRO_TEST_WORKERS`` to restrict the pool sizes exercised (CI
sets 2 to keep runners light).
"""

import os

import pytest

from repro.core.g2g_epidemic import G2GEpidemicForwarding
from repro.experiments import (
    ExecutionOptions,
    PROTOCOLS,
    ReplicationPlan,
    RunCache,
    RunReport,
    RunRequest,
    run_point,
    run_requests,
    run_series,
)
from repro.sim.serialize import results_to_dict

#: Short, light runs: a quarter of the evaluation window, sparse
#: traffic, cheap storage challenges, and a TTL that expires in-run so
#: detection paths execute too.
TINY = {
    "run_length": 1800.0,
    "silent_tail": 600.0,
    "mean_interarrival": 60.0,
    "ttl": 600.0,
    "heavy_hmac_iterations": 4,
}

PLAN = ReplicationPlan(seeds=(1, 2, 3, 4))

_env_workers = os.environ.get("REPRO_TEST_WORKERS")
WORKER_COUNTS = [int(_env_workers)] if _env_workers else [2, 4]


def assert_points_identical(a, b):
    """Exact (bitwise) equality of two PointResults, runs included."""
    assert a.success_rate == b.success_rate
    assert a.mean_delay == b.mean_delay
    assert a.cost == b.cost
    assert a.memory_byte_seconds == b.memory_byte_seconds
    assert a.detection_rate == b.detection_rate
    assert a.detection_delay == b.detection_delay
    assert a.detection_delay_after_ttl == b.detection_delay_after_ttl
    assert a.false_positives == b.false_positives
    assert len(a.runs) == len(b.runs)
    for run_a, run_b in zip(a.runs, b.runs):
        assert results_to_dict(run_a) == results_to_dict(run_b)


def g2g_point(options=None):
    return run_point(
        "infocom05",
        "epidemic",
        PROTOCOLS["g2g_epidemic"][1],
        deviation="dropper",
        deviation_count=5,
        plan=PLAN,
        config_overrides=TINY,
        options=options,
    )


class TestParallelEqualsSequential:
    @pytest.fixture(scope="class")
    def sequential(self):
        return g2g_point(ExecutionOptions(workers=1))

    def test_default_options_are_sequential(self, sequential):
        assert_points_identical(sequential, g2g_point())

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_pool_matches_sequential(self, sequential, workers):
        parallel = g2g_point(ExecutionOptions(workers=workers))
        assert_points_identical(sequential, parallel)

    def test_seed_order_preserved(self, sequential):
        assert [run.seed for run in sequential.runs] == list(PLAN.seeds)


class TestRunSeries:
    def test_series_matches_per_point_runs(self):
        counts = [0, 3, 6]
        series = run_series(
            "infocom05",
            "epidemic",
            PROTOCOLS["g2g_epidemic"][1],
            counts,
            deviation="dropper",
            plan=ReplicationPlan(seeds=(1, 2)),
            config_overrides=TINY,
        )
        assert [count for count, _ in series] == counts
        for count, point in series:
            loose = run_point(
                "infocom05",
                "epidemic",
                PROTOCOLS["g2g_epidemic"][1],
                deviation="dropper" if count else None,
                deviation_count=count,
                plan=ReplicationPlan(seeds=(1, 2)),
                config_overrides=TINY,
            )
            assert_points_identical(point, loose)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_series_parallel_matches_sequential(self, workers):
        kwargs = dict(
            counts=[0, 4],
            deviation="dropper",
            plan=ReplicationPlan(seeds=(1, 2)),
            config_overrides=TINY,
        )
        sequential = run_series(
            "infocom05", "epidemic", PROTOCOLS["g2g_epidemic"][1], **kwargs
        )
        parallel = run_series(
            "infocom05",
            "epidemic",
            PROTOCOLS["g2g_epidemic"][1],
            options=ExecutionOptions(workers=workers),
            **kwargs,
        )
        for (count_a, point_a), (count_b, point_b) in zip(
            sequential, parallel
        ):
            assert count_a == count_b
            assert_points_identical(point_a, point_b)


class TestWarmCache:
    def test_cached_rerun_is_identical(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        cold = g2g_point(ExecutionOptions(workers=1, cache=cache))
        assert cache.stats.writes == len(PLAN.seeds)
        warm = g2g_point(ExecutionOptions(workers=1, cache=cache))
        assert cache.stats.hits == len(PLAN.seeds)
        assert_points_identical(cold, warm)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_warm_cache_matches_pool_output(self, tmp_path, workers):
        cache = RunCache(tmp_path / "cache")
        pooled = g2g_point(ExecutionOptions(workers=workers, cache=cache))
        warm = g2g_point(ExecutionOptions(workers=1, cache=cache))
        assert_points_identical(pooled, warm)

    def test_report_accounts_for_hits(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        report = RunReport()
        g2g_point(ExecutionOptions(workers=1, cache=cache, report=report))
        assert report.executed == len(PLAN.seeds)
        assert report.cached == 0
        g2g_point(ExecutionOptions(workers=1, cache=cache, report=report))
        assert report.cached == len(PLAN.seeds)
        assert report.total == 2 * len(PLAN.seeds)
        assert "cache hits" in report.summary()


def bad_request(seed=1):
    """A request whose worker will raise (unknown protocol name)."""
    return RunRequest(
        trace_name="infocom05",
        family="epidemic",
        protocol_name="no_such_protocol",
        seed=seed,
        overrides=tuple(sorted(TINY.items())),
    )


def good_request(seed=1):
    return RunRequest(
        trace_name="infocom05",
        family="epidemic",
        protocol_name="epidemic",
        seed=seed,
        overrides=tuple(sorted(TINY.items())),
    )


class TestCrashRobustness:
    @pytest.mark.parametrize("workers", [1] + WORKER_COUNTS)
    def test_worker_error_surfaces(self, workers):
        requests = [good_request(1), bad_request(), good_request(2)]
        with pytest.raises(KeyError, match="no_such_protocol"):
            run_requests(requests, ExecutionOptions(workers=workers))

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_failed_batch_leaves_cache_clean(self, tmp_path, workers):
        cache = RunCache(tmp_path / "cache")
        requests = [good_request(1), bad_request(), good_request(2)]
        with pytest.raises(KeyError):
            run_requests(
                requests, ExecutionOptions(workers=workers, cache=cache)
            )
        # the successful runs were archived, the failed one was not,
        # and no temp files linger
        assert cache.stats.writes == 2
        leftovers = list((tmp_path / "cache").glob("*.tmp"))
        assert leftovers == []
        # the cached survivors are readable and complete
        for request in (good_request(1), good_request(2)):
            assert cache.get(request.cache_key()) is not None

    def test_error_is_first_in_request_order(self):
        requests = [bad_request(1), good_request(1)]
        with pytest.raises(KeyError, match="no_such_protocol"):
            run_requests(requests, ExecutionOptions(workers=2))


class TestAdHocFactories:
    def test_uncatalogued_factory_runs_in_process(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        point = run_point(
            "infocom05",
            "epidemic",
            lambda: G2GEpidemicForwarding(testers="any_giver"),
            deviation="dropper",
            deviation_count=5,
            plan=ReplicationPlan(seeds=(1,)),
            config_overrides=TINY,
            options=ExecutionOptions(workers=4, cache=cache),
        )
        assert len(point.runs) == 1
        # ad-hoc factories have no stable identity: never cached
        assert cache.stats.writes == 0
        assert cache.stats.hits == 0
