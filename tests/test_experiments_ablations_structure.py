"""Structural tests of the ablation sweeps with a stubbed runner."""

import pytest

from repro.experiments import ablations
from repro.experiments.runner import PointResult, ReplicationPlan


def fake_point(**overrides):
    base = dict(
        success_rate=0.6,
        mean_delay=600.0,
        cost=12.0,
        memory_byte_seconds=1e6,
        detection_rate=0.85,
        detection_delay=800.0,
        detection_delay_after_ttl=400.0,
        false_positives=0,
        runs=[],
    )
    base.update(overrides)
    return PointResult(**base)


@pytest.fixture
def calls(monkeypatch):
    recorded = []

    def stub(trace_name, family, factory, deviation=None,
             deviation_count=0, plan=None, config_overrides=None,
             options=None, protocol_name=None):
        recorded.append(
            dict(
                deviation=deviation,
                count=deviation_count,
                overrides=config_overrides or {},
            )
        )
        return fake_point()

    monkeypatch.setattr(ablations, "run_point", stub)
    return recorded


PLAN = ReplicationPlan(seeds=(1,))


class TestFanoutSweep:
    def test_visits_each_cap(self, calls):
        figure = ablations.fanout_sweep(caps=(1, 2, 3), plan=PLAN)
        assert [c["overrides"]["relay_fanout"] for c in calls] == [1, 2, 3]
        assert figure.series_by_label("Delivery %").xs == [1, 2, 3]
        assert figure.series_by_label("Cost (replicas)").xs == [1, 2, 3]


class TestDelta2Sweep:
    def test_overrides_and_droppers(self, calls):
        ablations.delta2_sweep(factors=(1.5, 2.0), droppers=7, plan=PLAN)
        assert [c["overrides"]["delta2_factor"] for c in calls] == [1.5, 2.0]
        assert all(c["deviation"] == "dropper" for c in calls)
        assert all(c["count"] == 7 for c in calls)

    def test_rates_in_percent(self, calls):
        figure = ablations.delta2_sweep(factors=(2.0,), plan=PLAN)
        assert figure.series_by_label("Detection rate %").ys == [
            pytest.approx(85.0)
        ]


class TestTimeframeSweep:
    def test_liars_and_minutes_axis(self, calls):
        figure = ablations.timeframe_sweep(
            timeframes=(600.0, 2040.0), plan=PLAN
        )
        assert all(c["deviation"] == "liar" for c in calls)
        assert figure.series_by_label("Detection rate %").xs == [10.0, 34.0]


class TestBufferSweep:
    def test_zero_encodes_unbounded(self, calls):
        figure = ablations.buffer_capacity_sweep(
            capacities=(5, None), plan=PLAN
        )
        assert figure.series_by_label("Delivery %").xs == [5.0, 0.0]
        assert calls[0]["overrides"]["buffer_capacity"] == 5
        assert calls[1]["overrides"]["buffer_capacity"] is None


class TestComparisons:
    def test_blacklist_keys(self, calls):
        out = ablations.blacklist_comparison(plan=PLAN)
        assert set(out) == {
            "instant_detection_rate",
            "instant_detection_minutes",
            "instant_success_percent",
            "gossip_detection_rate",
            "gossip_detection_minutes",
            "gossip_success_percent",
        }
        assert calls[0]["overrides"]["instant_blacklist"] is True
        assert calls[1]["overrides"]["instant_blacklist"] is False

    def test_testers_keys(self, calls):
        out = ablations.testers_comparison(plan=PLAN)
        assert "source_test_phases" in out
        assert "any_giver_detection_rate" in out
