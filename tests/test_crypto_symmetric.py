"""Tests for the authenticated stream cipher."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.symmetric import (
    AuthenticationError,
    NONCE_SIZE,
    SymmetricChannel,
    TAG_SIZE,
    decrypt,
    encrypt,
    random_key,
)


@pytest.fixture(scope="module")
def key():
    return random_key(random.Random(1))


class TestEncryptDecrypt:
    def test_roundtrip(self, key):
        blob = encrypt(key, b"attack at dawn", random.Random(2))
        assert decrypt(key, blob) == b"attack at dawn"

    def test_empty_plaintext(self, key):
        blob = encrypt(key, b"", random.Random(2))
        assert decrypt(key, blob) == b""

    def test_ciphertext_differs_from_plaintext(self, key):
        blob = encrypt(key, b"attack at dawn", random.Random(2))
        assert b"attack at dawn" not in blob

    def test_randomized_nonce(self, key):
        rng = random.Random(2)
        assert encrypt(key, b"x", rng) != encrypt(key, b"x", rng)

    def test_wrong_key_raises(self, key):
        blob = encrypt(key, b"secret", random.Random(2))
        other = random_key(random.Random(9))
        with pytest.raises(AuthenticationError):
            decrypt(other, blob)

    def test_tampered_ciphertext_raises(self, key):
        blob = bytearray(encrypt(key, b"secret", random.Random(2)))
        blob[NONCE_SIZE] ^= 0x01
        with pytest.raises(AuthenticationError):
            decrypt(key, bytes(blob))

    def test_tampered_tag_raises(self, key):
        blob = bytearray(encrypt(key, b"secret", random.Random(2)))
        blob[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            decrypt(key, bytes(blob))

    def test_truncated_blob_raises(self, key):
        with pytest.raises(AuthenticationError):
            decrypt(key, b"short")

    def test_overhead_is_nonce_plus_tag(self, key):
        blob = encrypt(key, b"xyz", random.Random(2))
        assert len(blob) == 3 + NONCE_SIZE + TAG_SIZE

    @settings(max_examples=50)
    @given(st.binary(max_size=2048))
    def test_roundtrip_property(self, key, data):
        blob = encrypt(key, data, random.Random(5))
        assert decrypt(key, blob) == data


class TestChannel:
    def test_seal_open(self, key):
        channel = SymmetricChannel(key=key, rng=random.Random(3))
        assert channel.open(channel.seal(b"wire data")) == b"wire data"

    def test_cross_channel_same_key(self, key):
        a = SymmetricChannel(key=key, rng=random.Random(3))
        b = SymmetricChannel(key=key, rng=random.Random(4))
        assert b.open(a.seal(b"hello")) == b"hello"

    def test_cross_channel_different_key_fails(self, key):
        a = SymmetricChannel(key=key, rng=random.Random(3))
        b = SymmetricChannel(
            key=random_key(random.Random(8)), rng=random.Random(4)
        )
        with pytest.raises(AuthenticationError):
            b.open(a.seal(b"hello"))
