"""Unit and property tests for the from-scratch RSA implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import (
    RsaError,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)


@pytest.fixture(scope="module")
def key():
    return generate_keypair(bits=384, rng=random.Random(11))


@pytest.fixture(scope="module")
def other_key():
    return generate_keypair(bits=384, rng=random.Random(22))


class TestKeygen:
    def test_modulus_bit_length(self, key):
        assert key.n.bit_length() == 384

    def test_public_private_consistency(self, key):
        # e*d == 1 mod phi implies signing then verifying works; test
        # the raw exponentiation cycle.
        m = 0x1234567890ABCDEF
        assert pow(pow(m, key.d, key.n), key.e, key.n) == m

    def test_deterministic_given_rng(self):
        k1 = generate_keypair(bits=128, rng=random.Random(5))
        k2 = generate_keypair(bits=128, rng=random.Random(5))
        assert (k1.n, k1.d) == (k2.n, k2.d)

    def test_distinct_seeds_distinct_keys(self):
        k1 = generate_keypair(bits=128, rng=random.Random(5))
        k2 = generate_keypair(bits=128, rng=random.Random(6))
        assert k1.n != k2.n

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=32)

    def test_public_key_property(self, key):
        pub = key.public_key
        assert isinstance(pub, RsaPublicKey)
        assert (pub.n, pub.e) == (key.n, key.e)


class TestSignatures:
    def test_sign_verify_roundtrip(self, key):
        sig = key.sign(b"hello world")
        assert key.public_key.verify(b"hello world", sig)

    def test_wrong_message_rejected(self, key):
        sig = key.sign(b"hello world")
        assert not key.public_key.verify(b"hello world!", sig)

    def test_wrong_key_rejected(self, key, other_key):
        sig = key.sign(b"msg")
        assert not other_key.public_key.verify(b"msg", sig)

    def test_tampered_signature_rejected(self, key):
        sig = bytearray(key.sign(b"msg"))
        sig[0] ^= 0xFF
        assert not key.public_key.verify(b"msg", bytes(sig))

    def test_signature_width_constant(self, key):
        assert len(key.sign(b"a")) == len(key.sign(b"a" * 10_000))

    def test_out_of_range_signature_rejected(self, key):
        too_big = (key.n + 1).to_bytes(64, "big")
        assert not key.public_key.verify(b"msg", too_big)

    def test_empty_message_signable(self, key):
        assert key.public_key.verify(b"", key.sign(b""))

    @settings(max_examples=20)
    @given(st.binary(max_size=256))
    def test_roundtrip_property(self, key, data):
        assert key.public_key.verify(data, key.sign(data))


class TestEncryption:
    def test_roundtrip(self, key):
        rng = random.Random(3)
        ct = key.public_key.encrypt(b"secret", rng)
        assert key.decrypt(ct) == b"secret"

    def test_randomized(self, key):
        rng = random.Random(3)
        a = key.public_key.encrypt(b"secret", rng)
        b = key.public_key.encrypt(b"secret", rng)
        assert a != b
        assert key.decrypt(a) == key.decrypt(b) == b"secret"

    def test_empty_plaintext(self, key):
        ct = key.public_key.encrypt(b"", random.Random(1))
        assert key.decrypt(ct) == b""

    def test_too_long_raises(self, key):
        with pytest.raises(RsaError):
            key.public_key.encrypt(b"x" * 1000, random.Random(1))

    def test_out_of_range_ciphertext_raises(self, key):
        with pytest.raises(RsaError):
            key.decrypt((key.n + 5).to_bytes(64, "big"))

    def test_wrong_key_fails(self, key, other_key):
        ct = key.public_key.encrypt(b"secret", random.Random(2))
        with pytest.raises(RsaError):
            other_key.decrypt(ct)

    @settings(max_examples=20)
    @given(st.binary(max_size=20))
    def test_roundtrip_property(self, key, data):
        ct = key.public_key.encrypt(data, random.Random(7))
        assert key.decrypt(ct) == data


class TestFingerprint:
    def test_stable(self, key):
        assert key.public_key.fingerprint() == key.public_key.fingerprint()

    def test_distinct_keys_distinct_fingerprints(self, key, other_key):
        assert key.public_key.fingerprint() != other_key.public_key.fingerprint()
