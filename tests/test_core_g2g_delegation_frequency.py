"""Scenario tests for G2G Delegation with the *frequency* metric.

The paper reports Destination Frequency and Destination Last Contact
behave alike for detection; these tests pin the frequency-specific
mechanics (integer encounter counts at frame boundaries).
"""

import pytest

from repro.adversaries import Cheater, Liar
from repro.core import G2GDelegationForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace

S, D = 0, 5


def config(**overrides):
    base = dict(
        run_length=10_000.0, silent_tail=1000.0, mean_interarrival=1e6,
        ttl=400.0, delta2_factor=2.0, quality_timeframe=100.0,
        heavy_hmac_iterations=2, seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def harness(strategies=None):
    trace = ContactTrace(name="m", nodes=tuple(range(8)), contacts=())
    protocol = G2GDelegationForwarding("frequency")
    sim = Simulation(trace, protocol, config(), strategies=strategies)
    ctx = sim._build_context()
    protocol.bind(ctx)
    return protocol, ctx


def inject(protocol, ctx, created, msg_id=0):
    message = Message(
        msg_id=msg_id, source=S, destination=D, created_at=created,
        ttl=ctx.config.ttl,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


class TestFrequencyQuality:
    def test_initial_quality_counts_encounters(self):
        protocol, ctx = harness()
        protocol.on_contact_start(S, D, 10.0)
        protocol.on_contact_start(S, D, 50.0)
        inject(protocol, ctx, created=120.0)  # frame 0 completed: count 2
        assert ctx.node(S).buffer[0].quality == 2.0

    def test_relay_needs_strictly_more_encounters(self):
        protocol, ctx = harness()
        protocol.on_contact_start(S, D, 10.0)
        protocol.on_contact_start(1, D, 20.0)
        inject(protocol, ctx, created=120.0)  # fm = 1
        protocol.on_contact_start(S, 1, 150.0)  # declared 1, not > 1
        assert not ctx.node(1).has_copy(0)

    def test_relay_to_more_frequent_contact(self):
        protocol, ctx = harness()
        protocol.on_contact_start(S, D, 10.0)
        protocol.on_contact_start(1, D, 20.0)
        protocol.on_contact_start(1, D, 60.0)
        inject(protocol, ctx, created=120.0)  # fm = 1; node 1 has 2
        protocol.on_contact_start(S, 1, 150.0)
        assert ctx.node(1).has_copy(0)
        assert ctx.node(1).buffer[0].quality == 2.0


class TestFrequencyDetection:
    def test_liar_convicted_under_frequency(self):
        protocol, ctx = harness(strategies={1: Liar()})
        protocol.on_contact_start(S, D, 10.0)   # f_SD = 1
        protocol.on_contact_start(1, D, 20.0)
        protocol.on_contact_start(1, D, 60.0)   # liar truly has 2
        protocol.on_contact_start(2, D, 30.0)
        protocol.on_contact_start(2, D, 70.0)   # good relay has 2
        inject(protocol, ctx, created=120.0)
        protocol.on_contact_start(S, 1, 150.0)  # liar declares 0 < 1: failed
        protocol.on_contact_start(S, 2, 160.0)  # evidence embedded
        protocol.on_contact_start(2, D, 250.0)  # delivery -> D recomputes 2
        assert len(ctx.results.detections) == 1
        assert ctx.results.detections[0].deviation == "liar"
        assert ctx.results.detections[0].offender == 1

    def test_cheater_convicted_under_frequency(self):
        protocol, ctx = harness(strategies={1: Cheater()})
        protocol.on_contact_start(1, D, 30.0)
        protocol.on_contact_start(2, D, 40.0)
        protocol.on_contact_start(3, D, 50.0)
        inject(protocol, ctx, created=120.0)
        protocol.on_contact_start(S, 1, 150.0)  # relay to cheater (f_AD=1)
        protocol.on_contact_start(1, 2, 200.0)  # label forged to 0
        protocol.on_contact_start(1, 3, 250.0)
        protocol.on_contact_start(S, 1, 600.0)  # test: chain broken
        assert [d.deviation for d in ctx.results.detections] == ["cheater"]

    def test_honest_run_clean(self):
        protocol, ctx = harness()
        protocol.on_contact_start(1, D, 30.0)
        protocol.on_contact_start(2, D, 40.0)
        protocol.on_contact_start(2, D, 80.0)
        inject(protocol, ctx, created=120.0)
        protocol.on_contact_start(S, 1, 150.0)
        protocol.on_contact_start(1, 2, 200.0)  # 2 has count 2 > 1
        protocol.on_contact_start(S, 1, 600.0)
        assert ctx.results.detections == []
