"""Tests for the resumable sweep runner."""

import pytest

from repro.experiments.sweeps import RunSpec, SweepRunner, dropper_grid


class TestRunSpec:
    def test_spec_id_stable(self):
        spec = RunSpec(
            trace="infocom05", protocol="epidemic", seed=2,
            deviation="dropper", count=10,
        )
        assert spec.spec_id == "infocom05_epidemic_s2_dropper10"

    def test_spec_id_with_overrides(self):
        spec = RunSpec(
            trace="infocom05", protocol="epidemic",
            overrides=(("relay_fanout", 3),),
        )
        assert "relay_fanout=3" in spec.spec_id

    def test_hashable(self):
        assert len({RunSpec(trace="t", protocol="p"),
                    RunSpec(trace="t", protocol="p")}) == 1

    def test_grid_builder(self):
        grid = dropper_grid(
            "infocom05", "epidemic", counts=(0, 10), seeds=(1, 2)
        )
        assert len(grid) == 4
        zero = [s for s in grid if s.count == 0]
        assert all(s.deviation is None for s in zero)


class TestSweepRunner:
    @pytest.fixture
    def runner(self, tmp_path):
        events = []
        runner = SweepRunner(
            archive_dir=tmp_path, sweep="unit",
            on_result=lambda spec, results, cached: events.append(
                (spec.spec_id, cached)
            ),
        )
        runner._events = events  # test-side handle
        return runner

    @pytest.fixture
    def spec(self):
        return RunSpec(
            trace="infocom05", protocol="epidemic", seed=1,
            # lighten the run: 30x fewer messages than the paper rate
            overrides=(("mean_interarrival", 120.0),),
        )

    def test_run_and_archive(self, runner, spec):
        results = runner.run_one(spec)
        assert runner.is_done(spec)
        assert runner.path_for(spec).exists()
        assert results.generated > 0
        assert runner._events == [(spec.spec_id, False)]

    def test_resume_uses_archive(self, runner, spec):
        first = runner.run_one(spec)
        again = runner.run_one(spec)
        assert runner._events[-1] == (spec.spec_id, True)
        assert again.summary().keys() == first.summary().keys()
        assert again.generated == first.generated

    def test_force_reruns(self, runner, spec):
        runner.run_one(spec)
        runner.run_one(spec, force=True)
        assert runner._events == [(spec.spec_id, False)] * 2

    def test_collect_and_summary(self, runner, spec):
        runner.run_one(spec)
        collected = runner.collect()
        assert spec.spec_id in collected
        rows = runner.summary_rows()
        assert len(rows) == 1
        assert rows[0]["protocol"] == "epidemic"
        assert "success_rate" in rows[0]

    def test_run_all(self, runner):
        specs = [
            RunSpec(
                trace="infocom05", protocol="epidemic", seed=seed,
                overrides=(("mean_interarrival", 120.0),),
            )
            for seed in (1, 2)
        ]
        out = runner.run_all(specs)
        assert len(out) == 2
        assert all(runner.is_done(s) for s in specs)


class TestCsvExport:
    def test_summary_csv(self, tmp_path):
        runner = SweepRunner(archive_dir=tmp_path, sweep="csv")
        spec = RunSpec(
            trace="infocom05", protocol="epidemic", seed=1,
            overrides=(("mean_interarrival", 120.0),),
        )
        runner.run_one(spec)
        out = tmp_path / "summary.csv"
        written = runner.summary_csv(out)
        assert written == 1
        lines = out.read_text().splitlines()
        assert lines[0].startswith("spec_id,protocol,trace,seed")
        assert spec.spec_id in lines[1]

    def test_empty_sweep_csv(self, tmp_path):
        runner = SweepRunner(archive_dir=tmp_path, sweep="empty")
        out = tmp_path / "summary.csv"
        assert runner.summary_csv(out) == 0
        assert out.read_text() == ""
