"""Tests for the calibrated Infocom 05 / Cambridge 06 stand-ins."""

import pytest

from repro.traces import (
    DELEGATION_TTL,
    EPIDEMIC_TTL,
    QUALITY_TIMEFRAME,
    TraceProfile,
    cambridge06,
    infocom05,
    standard_window,
    trace_by_name,
)


class TestPaperConstants:
    def test_epidemic_ttls(self):
        assert EPIDEMIC_TTL["infocom05"] == 30 * 60.0
        assert EPIDEMIC_TTL["cambridge06"] == 35 * 60.0

    def test_delegation_ttls(self):
        assert DELEGATION_TTL["infocom05"] == 45 * 60.0
        assert DELEGATION_TTL["cambridge06"] == 75 * 60.0

    def test_quality_timeframe(self):
        assert QUALITY_TIMEFRAME == 34 * 60.0


class TestInfocom:
    @pytest.fixture(scope="class")
    def st(self):
        return infocom05()

    def test_node_count_matches_paper(self, st):
        assert st.trace.num_nodes == 41

    def test_duration_about_three_days(self, st):
        assert st.config.duration == pytest.approx(3 * 86_400.0)

    def test_deterministic(self, st):
        assert infocom05().trace.contacts == st.trace.contacts

    def test_window_is_active(self, st):
        window = standard_window(st)
        sliced = window.slice(st.trace)
        assert len(sliced) > 500  # a busy conference afternoon


class TestCambridge:
    @pytest.fixture(scope="class")
    def st(self):
        return cambridge06()

    def test_node_count_matches_paper(self, st):
        assert st.trace.num_nodes == 36

    def test_duration_eleven_days(self, st):
        assert st.config.duration == pytest.approx(11 * 86_400.0)

    def test_sparser_than_infocom(self, st):
        cam = TraceProfile.of(standard_window(st).slice(st.trace))
        inf_st = infocom05()
        inf = TraceProfile.of(standard_window(inf_st).slice(inf_st.trace))
        assert (
            cam.mean_contacts_per_hour_per_node
            < inf.mean_contacts_per_hour_per_node
        )


class TestDispatch:
    def test_by_name(self):
        assert trace_by_name("infocom05").trace.num_nodes == 41
        assert trace_by_name("cambridge06").trace.num_nodes == 36

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            trace_by_name("mit_reality")

    def test_seed_selects_replica(self):
        a = trace_by_name("infocom05", seed=0)
        b = trace_by_name("infocom05", seed=1)
        assert a.trace.contacts != b.trace.contacts
