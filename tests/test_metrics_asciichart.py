"""Tests for the ASCII chart renderer."""

from repro.experiments.runner import FigureData, Series
from repro.metrics import ascii_chart, chart_figure


def demo_series():
    return [
        Series(label="plain", xs=[0, 10, 20], ys=[72.0, 49.0, 15.0]),
        Series(label="outsiders", xs=[0, 10, 20], ys=[73.0, 60.0, 17.0]),
    ]


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(demo_series())
        assert "A=plain" in chart
        assert "B=outsiders" in chart
        assert "A" in chart.splitlines()[0] or any(
            "A" in line for line in chart.splitlines()
        )

    def test_axis_bounds_shown(self):
        chart = ascii_chart(demo_series(), x_label="droppers")
        assert "x: 0 .. 20" in chart
        assert "droppers" in chart
        assert "73" in chart  # y max
        assert "15" in chart  # y min

    def test_empty_input(self):
        assert ascii_chart([]) == "(no data to chart)"
        assert ascii_chart([Series(label="empty")]) == "(no data to chart)"

    def test_degenerate_single_point(self):
        chart = ascii_chart([Series(label="one", xs=[5.0], ys=[3.0])])
        assert "A=one" in chart

    def test_constant_series(self):
        chart = ascii_chart(
            [Series(label="flat", xs=[0, 1, 2], ys=[5.0, 5.0, 5.0])]
        )
        assert "A=flat" in chart

    def test_dimensions(self):
        chart = ascii_chart(demo_series(), width=30, height=8)
        plot_rows = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_rows) == 8

    def test_collision_marker(self):
        overlapping = [
            Series(label="a", xs=[0.0], ys=[1.0]),
            Series(label="b", xs=[0.0], ys=[1.0]),
        ]
        chart = ascii_chart(overlapping)
        assert "*" in chart


class TestChartFigure:
    def test_header_and_chart(self):
        figure = FigureData(
            figure_id="figX", title="demo", x_label="n", y_label="%",
            series=demo_series(),
        )
        out = chart_figure(figure)
        assert out.startswith("== figX: demo ==")
        assert "A=plain" in out

    def test_render_includes_chart(self):
        figure = FigureData(
            figure_id="figX", title="demo", x_label="n", y_label="%",
            series=demo_series(),
        )
        rendered = figure.render()
        assert "A=plain" in rendered
        assert "72.00" in rendered  # the table part remains

    def test_render_chartless(self):
        figure = FigureData(
            figure_id="figX", title="demo", x_label="n", y_label="%",
            series=demo_series(),
        )
        rendered = figure.render(chart=False)
        assert "A=plain" not in rendered


class TestChartEdgeCases:
    def test_min_width_one_column(self):
        chart = ascii_chart(
            [Series(label="a", xs=[0, 1], ys=[0.0, 1.0])], width=1, height=2
        )
        assert "A=a" in chart

    def test_negative_values(self):
        chart = ascii_chart(
            [Series(label="a", xs=[0, 1], ys=[-5.0, 5.0])]
        )
        assert "-5" in chart
        assert "5" in chart

    def test_many_series_marker_wraparound(self):
        series = [
            Series(label=f"s{i}", xs=[float(i)], ys=[float(i)])
            for i in range(12)
        ]
        chart = ascii_chart(series)
        # markers wrap after 10; legend lists all twelve
        assert "A=s0" in chart and "A=s10" in chart


class TestTextTableEdgeCases:
    def test_min_width_respected(self):
        from repro.metrics import text_table

        table = text_table(["a"], [["x"]], min_width=20)
        assert len(table.splitlines()[0]) >= 20

    def test_ragged_rows_tolerated(self):
        from repro.metrics import text_table

        table = text_table(["a", "b"], [["only-one"]])
        assert "only-one" in table
