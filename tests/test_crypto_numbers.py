"""Unit and property tests for repro.crypto.numbers."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.numbers import (
    bytes_to_int,
    egcd,
    int_to_bytes,
    is_probable_prime,
    modinv,
    random_prime,
    random_safe_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 257, 7919, 104729, 2**61 - 1]
KNOWN_COMPOSITES = [1, 4, 9, 100, 561, 1105, 6601, 2**61 - 2, 7919 * 104729]


class TestEgcd:
    def test_gcd_of_coprimes_is_one(self):
        g, _, _ = egcd(35, 64)
        assert g == 1

    def test_bezout_identity(self):
        for a, b in [(240, 46), (17, 31), (0, 5), (12, 0), (-24, 36)]:
            g, x, y = egcd(a, b)
            assert a * x + b * y == g

    def test_gcd_matches_math_gcd(self):
        for a, b in [(48, 18), (270, 192), (1071, 462)]:
            g, _, _ = egcd(a, b)
            assert g == math.gcd(a, b)

    def test_gcd_is_nonnegative_for_negative_inputs(self):
        g, _, _ = egcd(-48, -18)
        assert g == 6

    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_bezout_property(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestModinv:
    def test_inverse_multiplies_to_one(self):
        assert (modinv(3, 11) * 3) % 11 == 1

    def test_inverse_of_one_is_one(self):
        assert modinv(1, 97) == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_tiny_modulus_raises(self):
        with pytest.raises(ValueError):
            modinv(3, 1)

    @given(st.integers(1, 10**6), st.integers(2, 10**6))
    def test_inverse_property(self, a, m):
        if math.gcd(a, m) != 1:
            with pytest.raises(ValueError):
                modinv(a, m)
        else:
            inv = modinv(a, m)
            assert 0 <= inv < m
            assert (a * inv) % m == 1


class TestPrimality:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    def test_negative_and_zero(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that Miller-Rabin must still reject.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_probable_prime(n)


class TestRandomPrime:
    def test_bit_length_exact(self):
        rng = random.Random(1)
        for bits in (16, 32, 64, 128):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_given_seed(self):
        assert random_prime(32, random.Random(9)) == random_prime(
            32, random.Random(9)
        )

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            random_prime(4, random.Random(0))

    def test_oddness(self):
        p = random_prime(24, random.Random(3))
        assert p % 2 == 1


class TestSafePrime:
    def test_safe_prime_structure(self):
        p = random_safe_prime(32, random.Random(2))
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            random_safe_prime(4, random.Random(0))


class TestByteCodec:
    def test_zero_encodes_to_one_byte(self):
        assert int_to_bytes(0) == b"\x00"

    def test_roundtrip_examples(self):
        for n in (1, 255, 256, 2**64, 2**130 + 7):
            assert bytes_to_int(int_to_bytes(n)) == n

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)

    def test_big_endian(self):
        assert int_to_bytes(0x0102) == b"\x01\x02"

    @given(st.integers(0, 2**256))
    def test_roundtrip_property(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    @settings(max_examples=30)
    @given(st.binary(min_size=1, max_size=64))
    def test_decode_encode_strips_leading_zeros(self, data):
        n = bytes_to_int(data)
        assert bytes_to_int(int_to_bytes(n)) == n


class TestDefaultGroupConsistency:
    """The inlined DH constant must stay a safe prime (regression guard
    against accidental edits to the literal)."""

    def test_default_group_prime_regenerates(self):
        from repro.crypto.dh import _DEFAULT_P

        assert is_probable_prime(_DEFAULT_P)
        assert is_probable_prime((_DEFAULT_P - 1) // 2)
        assert _DEFAULT_P.bit_length() == 512
