"""Engine edge cases: horizons, straddling contacts, blacklist wiring."""

import pytest

from repro.adversaries import Dropper
from repro.core import G2GEpidemicForwarding, GossipBlacklist
from repro.protocols import EpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.traces import ContactTrace, make_contact


def config(**overrides):
    base = dict(
        run_length=3000.0, silent_tail=500.0, mean_interarrival=50.0,
        ttl=800.0, seed=6, heavy_hmac_iterations=2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestHorizon:
    def test_contact_straddling_horizon_counts_until_cutoff(self):
        trace = ContactTrace(
            name="straddle",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 2900.0, 5000.0),),
        )
        results = Simulation(trace, EpidemicForwarding(), config()).run()
        # Contact opens before the horizon: messages alive then deliver.
        delivered_times = [
            r.delivered_at
            for r in results.messages.values()
            if r.delivered
        ]
        assert all(t <= 3000.0 for t in delivered_times)

    def test_no_events_after_horizon(self):
        trace = ContactTrace(
            name="late",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 3100.0, 3200.0),),
        )
        results = Simulation(trace, EpidemicForwarding(), config()).run()
        assert results.delivered == 0

    def test_memory_settled_at_horizon(self):
        trace = ContactTrace(
            name="settle",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 100.0, 200.0),),
        )
        results = Simulation(trace, EpidemicForwarding(), config()).run()
        # finalize() flushed all nodes; memory integral is finite and
        # was accumulated for the sources' own copies at least.
        assert results.total_memory_byte_seconds > 0

    def test_contact_open_at_run_end_closes_at_horizon(self):
        # Regression: a contact still open at run end used to have its
        # END event silently dropped (scheduled past the horizon); the
        # engine now clamps it so the contact closes *at* the horizon.
        class RecordingEpidemic(EpidemicForwarding):
            def __init__(self):
                super().__init__()
                self.contact_ends = []

            def on_contact_end(self, node_a, node_b, now):
                self.contact_ends.append((node_a, node_b, now))
                super().on_contact_end(node_a, node_b, now)

        trace = ContactTrace(
            name="open-at-end",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 2900.0, 5000.0),),
        )
        protocol = RecordingEpidemic()
        Simulation(trace, protocol, config()).run()
        assert protocol.contact_ends == [(0, 1, 3000.0)]


class TestBlacklistWiring:
    def test_engine_gossips_on_contacts(self):
        # dropper 1 caught by source 0; node 2 learns via 0 by contact.
        trace = ContactTrace(
            name="gossip",
            nodes=(0, 1, 2),
            contacts=(
                make_contact(0, 1, 10.0, 60.0),
                make_contact(0, 1, 900.0, 960.0),   # test fails here
                make_contact(0, 2, 1100.0, 1160.0),  # gossip to 2
            ),
        )
        gossip = GossipBlacklist()
        results = Simulation(
            trace,
            G2GEpidemicForwarding(),
            config(mean_interarrival=25.0, instant_blacklist=False),
            strategies={1: Dropper()},
            blacklist=gossip,
        ).run()
        if results.detections:
            assert gossip.knows(0, 1)
            assert gossip.knows(2, 1)

    def test_default_blacklist_matches_config(self):
        from repro.core import InstantBlacklist

        trace = ContactTrace(name="t", nodes=(0, 1), contacts=())
        sim = Simulation(trace, EpidemicForwarding(), config())
        assert isinstance(sim.blacklist, InstantBlacklist)
        sim2 = Simulation(
            trace, EpidemicForwarding(), config(instant_blacklist=False)
        )
        assert isinstance(sim2.blacklist, GossipBlacklist)

    def test_round_interval_flows_from_config(self):
        trace = ContactTrace(name="t", nodes=(0, 1), contacts=())
        sim = Simulation(
            trace,
            EpidemicForwarding(),
            config(instant_blacklist=False, blacklist_round_interval=600.0),
        )
        assert isinstance(sim.blacklist, GossipBlacklist)
        assert sim.blacklist.round_interval == 600.0

    def test_propagation_round_reaches_isolated_nodes(self):
        # A node that never meets anyone still learns a PoM once a
        # scheduler-driven propagation round passes.
        from repro.core.blacklist import ProofOfMisbehavior
        from repro.sim.events import EventQueue, Scheduler

        gossip = GossipBlacklist(round_interval=100.0)
        scheduler = Scheduler(EventQueue(), horizon=250.0)
        gossip.on_run_start(scheduler, (0, 1, 2))
        gossip.publish(
            ProofOfMisbehavior(
                offender=1, detector=0, msg_id=7,
                deviation="dropper", issued_at=5.0,
            )
        )
        assert gossip.knows(0, 1)
        assert not gossip.knows(2, 1)
        scheduler.dispatch_until(150.0)  # first round at t=100 fired
        assert gossip.knows(2, 1)
        assert gossip.awareness(1) == 3
        # The chain keeps going at 200 but ends at the horizon: after
        # draining, no round-300 timer lingers in the queue.
        scheduler.dispatch_until(10_000.0)
        assert len(scheduler.queue) == 0

    def test_round_interval_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="round_interval"):
            GossipBlacklist(round_interval=0.0)


class TestSchedulerIntegration:
    def test_timer_dispatches_counted(self):
        from repro.perf import COUNTERS

        trace = ContactTrace(
            name="timers",
            nodes=(0, 1),
            contacts=(
                make_contact(0, 1, 100.0, 160.0),
                make_contact(0, 1, 1500.0, 1560.0),
            ),
        )
        before = COUNTERS.snapshot()
        Simulation(trace, G2GEpidemicForwarding(), config()).run()
        diff = COUNTERS.diff(before)
        # TTL and Δ2 purge deadlines live in per-node sorted arrays
        # now, not on the scheduler: a plain G2G run must schedule
        # ZERO timers — that absence is the perf win, so pin it.
        assert diff["timers_scheduled"] == 0
        assert diff["timer_dispatches"] == 0
        # Features that genuinely need future wake-ups (periodic
        # blacklist gossip rounds) still register and dispatch timers
        # through the scheduler.
        from repro.core.blacklist import GossipBlacklist

        before = COUNTERS.snapshot()
        Simulation(
            trace, G2GEpidemicForwarding(), config(),
            blacklist=GossipBlacklist(round_interval=300.0),
        ).run()
        diff = COUNTERS.diff(before)
        assert diff["timers_scheduled"] > 0
        assert diff["timer_dispatches"] > 0
        assert diff["timer_dispatches"] <= diff["timers_scheduled"]


class TestRunSimulationHelper:
    def test_wrapper(self, pair_trace):
        from repro.sim import run_simulation

        results = run_simulation(pair_trace, EpidemicForwarding(), config())
        assert results.generated > 0
