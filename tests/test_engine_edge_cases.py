"""Engine edge cases: horizons, straddling contacts, blacklist wiring."""

import pytest

from repro.adversaries import Dropper
from repro.core import G2GEpidemicForwarding, GossipBlacklist
from repro.protocols import EpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.traces import ContactTrace, make_contact


def config(**overrides):
    base = dict(
        run_length=3000.0, silent_tail=500.0, mean_interarrival=50.0,
        ttl=800.0, seed=6, heavy_hmac_iterations=2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestHorizon:
    def test_contact_straddling_horizon_counts_until_cutoff(self):
        trace = ContactTrace(
            name="straddle",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 2900.0, 5000.0),),
        )
        results = Simulation(trace, EpidemicForwarding(), config()).run()
        # Contact opens before the horizon: messages alive then deliver.
        delivered_times = [
            r.delivered_at
            for r in results.messages.values()
            if r.delivered
        ]
        assert all(t <= 3000.0 for t in delivered_times)

    def test_no_events_after_horizon(self):
        trace = ContactTrace(
            name="late",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 3100.0, 3200.0),),
        )
        results = Simulation(trace, EpidemicForwarding(), config()).run()
        assert results.delivered == 0

    def test_memory_settled_at_horizon(self):
        trace = ContactTrace(
            name="settle",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 100.0, 200.0),),
        )
        results = Simulation(trace, EpidemicForwarding(), config()).run()
        # finalize() flushed all nodes; memory integral is finite and
        # was accumulated for the sources' own copies at least.
        assert results.total_memory_byte_seconds > 0


class TestBlacklistWiring:
    def test_engine_gossips_on_contacts(self):
        # dropper 1 caught by source 0; node 2 learns via 0 by contact.
        trace = ContactTrace(
            name="gossip",
            nodes=(0, 1, 2),
            contacts=(
                make_contact(0, 1, 10.0, 60.0),
                make_contact(0, 1, 900.0, 960.0),   # test fails here
                make_contact(0, 2, 1100.0, 1160.0),  # gossip to 2
            ),
        )
        gossip = GossipBlacklist()
        results = Simulation(
            trace,
            G2GEpidemicForwarding(),
            config(mean_interarrival=25.0, instant_blacklist=False),
            strategies={1: Dropper()},
            blacklist=gossip,
        ).run()
        if results.detections:
            assert gossip.knows(0, 1)
            assert gossip.knows(2, 1)

    def test_default_blacklist_matches_config(self):
        from repro.core import InstantBlacklist

        trace = ContactTrace(name="t", nodes=(0, 1), contacts=())
        sim = Simulation(trace, EpidemicForwarding(), config())
        assert isinstance(sim.blacklist, InstantBlacklist)
        sim2 = Simulation(
            trace, EpidemicForwarding(), config(instant_blacklist=False)
        )
        assert isinstance(sim2.blacklist, GossipBlacklist)


class TestRunSimulationHelper:
    def test_wrapper(self, pair_trace):
        from repro.sim import run_simulation

        results = run_simulation(pair_trace, EpidemicForwarding(), config())
        assert results.generated > 0
