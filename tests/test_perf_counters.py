"""Counter-based perf tests for the relay-loop hot path.

Wall-clock assertions are flaky on shared machines, so these tests pin
*operation counts* instead: for a fixed trace and seed the simulator is
deterministic, and the counters recorded below are exact.  A change
that performs more signatures, encodings, or relay-phase entries than
the recorded budget is a hot-path regression even if it happens to run
fast on the test machine.
"""

from __future__ import annotations

import pytest

from repro.core.g2g_epidemic import G2GEpidemicForwarding
from repro.perf import COUNTERS, OpCounters
from repro.sim import Simulation


#: Exact op counts of the budget run (mini_synthetic x quick_config,
#: G2G Epidemic, all honest).  Deterministic for the fixture seeds;
#: regenerate by printing ``COUNTERS.diff(before)`` after the run.
BUDGET = {
    "signatures": 954,
    "verifications": 1080,
    "hmac_prepares": 386,
    "hmac_copies": 1464,
    "encodings": 1030,
    "relay_entries": 756,
    "buffer_scans": 585,
    "buffer_scanned": 4622,
}

#: Exact totals for the signature path of the budget run.  Pinned
#: with ``==`` (not ``<=``): the collect-then-verify batching at the
#: handshake choke points must fold counter *bumps*, never change the
#: *count* of signatures checked — a drop here means verifications
#: were skipped, an increase means the batching re-verifies.
BATCHED_VERIFY_PINS = {
    "signatures": 954,
    "verifications": 1080,
    "mac_cache_hits": 1080,
    "cert_checks": 84,
    "cert_cache_hits": 912,
}


@pytest.fixture
def budget_run(mini_synthetic, quick_config):
    """Counter diff of one honest G2G Epidemic run on the mini trace."""
    before = COUNTERS.snapshot()
    results = Simulation(
        mini_synthetic.trace, G2GEpidemicForwarding(), quick_config
    ).run()
    return COUNTERS.diff(before), results


class TestOpCounters:
    def test_reset_zeroes_everything(self):
        counters = OpCounters()
        counters.signatures += 3
        counters.reset()
        assert all(v == 0 for v in counters.snapshot().values())

    def test_diff_is_per_field(self):
        counters = OpCounters()
        before = counters.snapshot()
        counters.encodings += 2
        counters.relay_entries += 1
        delta = counters.diff(before)
        assert delta["encodings"] == 2
        assert delta["relay_entries"] == 1
        assert delta["signatures"] == 0


class TestHotPathBudgets:
    def test_deterministic(self, mini_synthetic, quick_config):
        runs = []
        for _ in range(2):
            before = COUNTERS.snapshot()
            Simulation(
                mini_synthetic.trace, G2GEpidemicForwarding(), quick_config
            ).run()
            runs.append(COUNTERS.diff(before))
        assert runs[0] == runs[1]

    def test_relay_budget(self, budget_run):
        diff, _ = budget_run
        assert diff["relay_entries"] <= BUDGET["relay_entries"]
        # The seen-filter runs before _relay_one, so in an all-honest
        # epidemic run every entered relay completes with a hand-off.
        assert diff["relay_handoffs"] == diff["relay_entries"]

    def test_encoding_budget(self, budget_run):
        diff, _ = budget_run
        assert diff["encodings"] <= BUDGET["encodings"]
        # The memoized payload()/wire_bytes() must actually be serving
        # verifiers: more hits than fresh encodings would be impossible
        # without the cache; zero hits means it broke.
        assert diff["encoding_cache_hits"] > 0

    def test_hmac_budget(self, budget_run):
        diff, _ = budget_run
        assert diff["signatures"] <= BUDGET["signatures"]
        assert diff["verifications"] <= BUDGET["verifications"]
        assert diff["hmac_prepares"] <= BUDGET["hmac_prepares"]
        assert diff["hmac_copies"] <= BUDGET["hmac_copies"]

    def test_mac_memo_serves_every_verification(self, budget_run):
        diff, _ = budget_run
        # Every artifact verified in an honest run was signed by this
        # same provider moments earlier, so the signature memo should
        # answer all of them without recomputing a single HMAC.
        assert diff["mac_cache_hits"] == diff["verifications"]
        assert diff["mac_cache_hits"] > 0

    def test_buffer_scan_budget(self, budget_run):
        diff, _ = budget_run
        assert diff["buffer_scans"] <= BUDGET["buffer_scans"]
        assert diff["buffer_scanned"] <= BUDGET["buffer_scanned"]

    def test_batched_verify_counter_totals(self, budget_run):
        diff, _ = budget_run
        for field, expected in BATCHED_VERIFY_PINS.items():
            assert diff[field] == expected, field

    def test_accounting_tier_matches_verify_pins(
        self, mini_synthetic, quick_config
    ):
        # The accounting tier does zero real hashing but must count
        # the exact same signature-path operations as the simulated
        # tier on the same run.
        before = COUNTERS.snapshot()
        Simulation(
            mini_synthetic.trace,
            G2GEpidemicForwarding(provider="accounting"),
            quick_config,
        ).run()
        diff = COUNTERS.diff(before)
        for field, expected in BATCHED_VERIFY_PINS.items():
            assert diff[field] == expected, field
        # What the tier removes is the real HMAC work, and only that.
        assert diff["hmac_copies"] == 0
        assert diff["relay_entries"] == BUDGET["relay_entries"]

    def test_run_still_delivers(self, budget_run):
        _, results = budget_run
        assert results.delivered > 0
        assert results.success_rate > 0.5
