"""Tests for the experiment harness (setting, runner, catalog)."""

import pytest

from repro.experiments import (
    LABELS,
    PROTOCOLS,
    ReplicationPlan,
    Series,
    adversary_counts,
    evaluation_community,
    evaluation_trace,
    protocol,
    run_point,
    standard_config,
)
from repro.experiments.runner import FigureData


class TestSetting:
    def test_traces_cached(self):
        a = evaluation_trace("infocom05")
        b = evaluation_trace("infocom05")
        assert a is b

    def test_trace_is_three_hours(self):
        trace = evaluation_trace("infocom05")
        assert trace.end_time <= 3 * 3600.0

    def test_community_cached_and_usable(self):
        cmap = evaluation_community("infocom05")
        nodes = evaluation_trace("infocom05").nodes
        assert cmap.same_community(nodes[0], nodes[0]) in (True, False)

    def test_adversary_counts_cover_range(self):
        counts = adversary_counts("infocom05")
        assert counts[0] == 0
        assert counts[-1] == 40  # 41 nodes
        assert counts == tuple(sorted(counts))

    def test_quick_counts_sparser(self):
        assert len(adversary_counts("infocom05", quick=True)) < len(
            adversary_counts("infocom05")
        )

    def test_standard_config_ttls(self):
        assert standard_config("infocom05", "epidemic", 1).ttl == 1800.0
        assert standard_config("cambridge06", "delegation", 1).ttl == 4500.0

    def test_replication_plan(self):
        assert len(ReplicationPlan.make(quick=True).seeds) == 2
        assert len(ReplicationPlan.make(quick=False).seeds) == 3


class TestCatalog:
    def test_six_protocols(self):
        assert len(PROTOCOLS) == 6
        assert set(LABELS) == set(PROTOCOLS)

    def test_factories_fresh_instances(self):
        _, factory = protocol("g2g_epidemic")
        assert factory() is not factory()

    def test_families(self):
        assert protocol("epidemic")[0] == "epidemic"
        assert protocol("g2g_delegation_frequency")[0] == "delegation"

    def test_unknown(self):
        with pytest.raises(KeyError):
            protocol("prophet")


class TestRunPoint:
    @pytest.fixture(scope="class")
    def point(self):
        return run_point(
            "infocom05",
            "epidemic",
            PROTOCOLS["epidemic"][1],
            plan=ReplicationPlan(seeds=(1,)),
        )

    def test_metrics_populated(self, point):
        assert 0 < point.success_rate <= 1
        assert point.cost > 0
        assert point.mean_delay > 0
        assert len(point.runs) == 1

    def test_no_adversaries_no_detection(self, point):
        assert point.detection_rate == 0.0
        assert point.false_positives == 0

    def test_with_adversaries(self):
        point = run_point(
            "infocom05",
            "epidemic",
            PROTOCOLS["epidemic"][1],
            deviation="dropper",
            deviation_count=10,
            plan=ReplicationPlan(seeds=(1,)),
        )
        # vanilla epidemic detects nothing but suffers delivery loss.
        assert point.detection_rate == 0.0

    def test_config_overrides(self):
        point = run_point(
            "infocom05",
            "epidemic",
            PROTOCOLS["epidemic"][1],
            plan=ReplicationPlan(seeds=(1,)),
            config_overrides={"mean_interarrival": 8.0},
        )
        assert point.runs[0].generated < 1300


class TestFigureData:
    def test_render(self):
        figure = FigureData(
            figure_id="figX",
            title="demo",
            x_label="n",
            y_label="%",
            series=[Series(label="a", xs=[0, 5], ys=[72.0, 64.0])],
        )
        text = figure.render()
        assert "figX" in text
        assert "72.00" in text

    def test_series_lookup(self):
        figure = FigureData(
            figure_id="f", title="t", x_label="x", y_label="y",
            series=[Series(label="a")],
        )
        assert figure.series_by_label("a").label == "a"
        with pytest.raises(KeyError):
            figure.series_by_label("missing")

    def test_series_rows(self):
        s = Series(label="a")
        s.add(1.0, 2.0)
        assert s.as_rows() == [(1.0, 2.0)]


class TestExchangePairs:
    def test_both_directions(self):
        from repro.protocols import exchange_pairs

        assert exchange_pairs(3, 9) == ((3, 9), (9, 3))
