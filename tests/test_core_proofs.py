"""Tests for signing/verifying the G2G artifacts."""

import random

import pytest

from repro.core.proofs import (
    make_proof_of_relay,
    make_quality_declaration,
    make_storage_proof,
    open_message,
    random_seed,
    seal_message,
    verify_proof_of_relay,
    verify_quality_declaration,
    verify_storage_proof,
)
from repro.crypto.hashing import HeavyHmac


@pytest.fixture
def trio(authority):
    return authority.enroll(1), authority.enroll(2), authority.enroll(3)


class TestSealedMessages:
    def test_destination_opens(self, trio):
        src, dst, _ = trio
        sealed = seal_message(src, dst.certificate, 7, b"hello")
        source_id, msg_id, body = open_message(dst, sealed)
        assert (source_id, msg_id, body) == (1, 7, b"hello")

    def test_relay_cannot_open(self, trio):
        src, dst, relay = trio
        sealed = seal_message(src, dst.certificate, 7, b"hello")
        with pytest.raises(Exception):
            open_message(relay, sealed)

    def test_destination_visible_sender_hidden(self, trio):
        src, dst, _ = trio
        sealed = seal_message(src, dst.certificate, 7, b"hello")
        assert sealed.destination == 2
        # The source id appears nowhere in the public wire form except
        # inside the ciphertext.
        assert b"payload" not in sealed.ciphertext  # encrypted
        assert sealed.msg_id == 7

    def test_source_signature_verifies(self, trio):
        src, dst, relay = trio
        sealed = seal_message(src, dst.certificate, 7, b"hello")
        unsigned = sealed.wire_bytes()
        # The signature covers the unsigned form.
        from repro.core.wire import SealedMessage

        reference = SealedMessage(
            msg_id=sealed.msg_id,
            destination=sealed.destination,
            ciphertext=sealed.ciphertext,
            source_signature=b"",
        )
        assert relay.verify_peer(
            src.certificate,
            reference.wire_bytes(),
            sealed.source_signature,
        )


class TestProofOfRelay:
    def test_make_and_verify(self, trio):
        giver, taker, _ = trio
        por = make_proof_of_relay(taker, b"h" * 32, giver.node_id, 10.0)
        assert verify_proof_of_relay(giver, taker.certificate, por)

    def test_wrong_certificate_rejected(self, trio):
        giver, taker, third = trio
        por = make_proof_of_relay(taker, b"h" * 32, giver.node_id, 10.0)
        assert not verify_proof_of_relay(giver, third.certificate, por)

    def test_tampered_fields_rejected(self, trio):
        import dataclasses

        giver, taker, _ = trio
        por = make_proof_of_relay(
            taker, b"h" * 32, giver.node_id, 10.0,
            message_quality=1.0, taker_quality=2.0,
        )
        forged = dataclasses.replace(por, taker_quality=99.0)
        assert not verify_proof_of_relay(giver, taker.certificate, forged)

    def test_quality_fields_carried(self, trio):
        giver, taker, _ = trio
        por = make_proof_of_relay(
            taker, b"h" * 32, giver.node_id, 10.0,
            quality_subject=9, message_quality=1.5, taker_quality=3.0,
        )
        assert por.quality_subject == 9
        assert por.message_quality == 1.5
        assert por.taker_quality == 3.0


class TestQualityDeclaration:
    def test_make_and_verify(self, trio):
        _, declarant, verifier = trio
        decl = make_quality_declaration(declarant, 9, 4.0, 3, 100.0)
        assert verify_quality_declaration(
            verifier, declarant.certificate, decl
        )

    def test_lie_is_self_incriminating(self, trio):
        """A signed false value still verifies — that's the PoM."""
        _, declarant, verifier = trio
        lie = make_quality_declaration(declarant, 9, 0.0, 3, 100.0)
        assert verify_quality_declaration(
            verifier, declarant.certificate, lie
        )
        assert lie.value == 0.0

    def test_tampered_value_rejected(self, trio):
        import dataclasses

        _, declarant, verifier = trio
        decl = make_quality_declaration(declarant, 9, 4.0, 3, 100.0)
        forged = dataclasses.replace(decl, value=8.0)
        assert not verify_quality_declaration(
            verifier, declarant.certificate, forged
        )


class TestStorageProof:
    def test_roundtrip(self, trio):
        challenger, prover, _ = trio
        heavy = HeavyHmac(iterations=3)
        message_bytes = b"the message body" * 10
        seed = random_seed(random.Random(1))
        proof = make_storage_proof(
            prover, b"h" * 32, message_bytes, seed, heavy
        )
        assert verify_storage_proof(
            challenger, prover.certificate, proof, message_bytes, heavy
        )

    def test_wrong_bytes_fail(self, trio):
        challenger, prover, _ = trio
        heavy = HeavyHmac(iterations=3)
        seed = random_seed(random.Random(1))
        proof = make_storage_proof(prover, b"h" * 32, b"real", seed, heavy)
        assert not verify_storage_proof(
            challenger, prover.certificate, proof, b"fake", heavy
        )

    def test_seed_binds_challenge(self, trio):
        import dataclasses

        challenger, prover, _ = trio
        heavy = HeavyHmac(iterations=3)
        proof = make_storage_proof(prover, b"h" * 32, b"m", b"seed-a", heavy)
        forged = dataclasses.replace(proof, seed=b"seed-b")
        assert not verify_storage_proof(
            challenger, prover.certificate, forged, b"m", heavy
        )

    def test_work_charged(self, trio):
        _, prover, _ = trio
        heavy = HeavyHmac(iterations=5)
        make_storage_proof(prover, b"h", b"m", b"s", heavy)
        assert heavy.work_performed == 5


class TestRandomSeed:
    def test_size_and_determinism(self):
        a = random_seed(random.Random(4))
        b = random_seed(random.Random(4))
        assert a == b
        assert len(a) == 16
