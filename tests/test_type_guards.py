"""Actionable TypeErrors at public entry points that take traces/requests.

``trace_by_name`` returns a SyntheticTrace *bundle*; handing the bundle
(rather than its ``.trace``) to APIs that duck-type used to fail deep
in the call stack or silently compute nonsense.  Every guarded entry
point funnels through ``repro.traces.trace.ensure_contact_trace`` and
must (a) name itself, (b) name the received type, and (c) spell out
the ``.trace`` fix when the value looks like a bundle.
"""

import pytest

from repro.experiments.parallel import RunRequest, execute_request, run_requests
from repro.traces import EvaluationWindow, ensure_contact_trace
from repro.traces.presets import trace_by_name
from repro.traces.synthetic import SyntheticTrace
from repro.traces.validate import repair_trace, validate_trace


@pytest.fixture(scope="module")
def bundle() -> SyntheticTrace:
    return trace_by_name("cambridge06", seed=0)


class TestEnsureContactTrace:
    def test_passthrough(self, bundle):
        assert ensure_contact_trace(bundle.trace, "caller") is bundle.trace

    def test_bundle_gets_the_fix_spelled_out(self, bundle):
        with pytest.raises(TypeError) as excinfo:
            ensure_contact_trace(bundle, "my_entry_point")
        message = str(excinfo.value)
        assert "my_entry_point" in message
        assert "SyntheticTrace" in message
        assert ".trace attribute" in message

    def test_plain_wrong_type_has_no_bundle_hint(self):
        with pytest.raises(TypeError) as excinfo:
            ensure_contact_trace([1, 2, 3], "my_entry_point")
        assert "ContactTrace" in str(excinfo.value)
        assert ".trace attribute" not in str(excinfo.value)


class TestGuardedEntryPoints:
    def test_validate_trace_rejects_bundle(self, bundle):
        with pytest.raises(TypeError, match=r"validate_trace .*\.trace attribute"):
            validate_trace(bundle)
        assert validate_trace(bundle.trace) is not None

    def test_repair_trace_rejects_bundle(self, bundle):
        with pytest.raises(TypeError, match=r"repair_trace .*\.trace attribute"):
            repair_trace(bundle)
        repaired = repair_trace(bundle.trace)
        assert repaired.nodes == bundle.trace.nodes

    def test_evaluation_window_slice_rejects_bundle(self, bundle):
        window = EvaluationWindow(start=0.0, length=1000.0)
        with pytest.raises(
            TypeError, match=r"EvaluationWindow\.slice .*\.trace attribute"
        ):
            window.slice(bundle)


class TestRunRequestGuards:
    def test_single_request_not_a_sequence(self):
        request = RunRequest(
            trace_name="infocom05", family="epidemic",
            protocol_name="epidemic", seed=1,
        )
        with pytest.raises(TypeError, match=r"wrap it in a list"):
            run_requests(request)

    def test_wrong_element_type_named_with_index(self):
        request = RunRequest(
            trace_name="infocom05", family="epidemic",
            protocol_name="epidemic", seed=1,
        )
        with pytest.raises(TypeError, match=r"dict at index 1"):
            run_requests([request, {"trace_name": "infocom05"}])

    def test_execute_request_rejects_non_request(self):
        with pytest.raises(TypeError, match=r"execute_request expects a RunRequest"):
            execute_request(("infocom05", "epidemic"))
