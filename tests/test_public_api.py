"""Public-API snapshot: pins ``repro.__all__`` and the facade surface.

Breaking any assertion here means a compatibility break for downstream
users — change it deliberately, with a changelog entry, or not at all.
"""

import inspect

import repro
from repro import api

#: The blessed top-level surface, exactly as exported.
EXPECTED_ALL = [
    "Cheater",
    "CommunityMap",
    "Dodger",
    "Contact",
    "ContactTrace",
    "DelegationForwarding",
    "Dropper",
    "EpidemicForwarding",
    "ForwardingProtocol",
    "G2GDelegationForwarding",
    "G2GEpidemicForwarding",
    "GossipBlacklist",
    "InstantBlacklist",
    "Liar",
    "Message",
    "MetricsRegistry",
    "OutsiderConditioned",
    "ProofOfMisbehavior",
    "RunTelemetry",
    "Simulation",
    "SimulationConfig",
    "SimulationResults",
    "Strategy",
    "TelemetryCollector",
    "api",
    "cambridge06",
    "config_for",
    "infocom05",
    "load_trace",
    "make_strategy",
    "run_simulation",
    "standard_window",
    "strategy_population",
    "trace_by_name",
    "__version__",
]


class TestTopLevelSurface:
    def test_all_is_pinned(self):
        assert repro.__all__ == EXPECTED_ALL

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version_string(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1


class TestFacadeSurface:
    def test_api_all_is_pinned(self):
        assert api.__all__ == ["TelemetrySink", "run", "sweep"]

    def test_run_signature(self):
        params = inspect.signature(api.run).parameters
        assert list(params) == [
            "trace",
            "protocol",
            "config",
            "seed",
            "adversary",
            "adversary_count",
            "mix",
            "churn",
            "energy_budgets",
            "strategies",
            "community",
            "blacklist",
            "telemetry",
            "provider",
        ]
        # Everything after config is keyword-only: the facade can grow
        # without positional-argument breakage.
        for name in list(params)[3:]:
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY, name

    def test_sweep_signature(self):
        params = inspect.signature(api.sweep).parameters
        assert list(params) == [
            "trace",
            "protocol",
            "counts",
            "adversary",
            "seeds",
            "config_overrides",
            "workers",
            "cache_dir",
            "report",
            "telemetry",
        ]
        for name in list(params)[3:]:
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY, name
        assert params["seeds"].default == (1, 2, 3)
        assert params["workers"].default == 1

    def test_run_defaults_are_benign(self):
        params = inspect.signature(api.run).parameters
        assert params["config"].default is None
        assert params["adversary_count"].default == 0
        assert params["telemetry"].default is None


class TestLegacyEntryPoints:
    """The wrapped paths stay public and importable (supported aliases)."""

    def test_simulation_layer(self):
        assert callable(repro.Simulation)
        assert callable(repro.run_simulation)

    def test_experiment_layer(self):
        from repro.experiments import run_point, run_series

        assert callable(run_point)
        assert callable(run_series)

    def test_facade_reachable_from_package(self):
        assert repro.api is api
        assert callable(repro.api.run)
        assert callable(repro.api.sweep)
