"""Tests for the reproduction-report assembler."""

import pytest

from repro.experiments.report import (
    build_report,
    collect_outputs,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig3-infocom05.txt").write_text("fig3 table\n")
    (tmp_path / "fig8-cambridge06.txt").write_text("fig8 table\n")
    (tmp_path / "table1.txt").write_text("table one\n")
    (tmp_path / "nash-g2g-epidemic.txt").write_text("nash holds\n")
    (tmp_path / "mystery.txt").write_text("unexpected\n")
    return tmp_path


class TestCollect:
    def test_grouping(self, results_dir):
        grouped = collect_outputs(results_dir)
        assert [p.name for p in grouped["fig3"]] == ["fig3-infocom05.txt"]
        assert [p.name for p in grouped["table1"]] == ["table1.txt"]
        assert [p.name for p in grouped["other"]] == ["mystery.txt"]


class TestBuild:
    def test_sections_in_order(self, results_dir):
        report = build_report(results_dir)
        fig3_at = report.index("Figure 3")
        fig8_at = report.index("Figure 8")
        nash_at = report.index("Nash equilibrium")
        assert fig3_at < fig8_at < nash_at
        assert "fig3 table" in report
        assert "unexpected" in report

    def test_empty_sections_omitted(self, results_dir):
        report = build_report(results_dir)
        assert "Figure 5" not in report

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "nope")

    def test_write(self, results_dir, tmp_path):
        out = write_report(results_dir, tmp_path / "REPORT.md")
        assert out.exists()
        assert out.read_text().startswith("# Give2Get reproduction report")
