"""Tests for the metrics aggregation / comparison / report toolkit."""

import pytest

from repro.metrics import (
    ComparisonReport,
    Estimate,
    ShapeClaim,
    markdown_table,
    minutes,
    monotone_decreasing,
    percent,
    roughly_flat,
    text_table,
    within_factor,
)
from repro.metrics.aggregate import aggregate, success_rates
from repro.sim.messages import Message
from repro.sim.results import SimulationResults


def run_with_success(rate):
    results = SimulationResults()
    n = 10
    for i in range(n):
        m = Message(
            msg_id=i, source=0, destination=1, created_at=0.0, ttl=60.0
        )
        results.record_generated(m)
        if i < rate * n:
            results.record_delivery(m, 10.0)
    return results


class TestEstimate:
    def test_empty(self):
        e = Estimate.of([])
        assert (e.mean, e.std, e.n) == (0.0, 0.0, 0)

    def test_single(self):
        e = Estimate.of([4.0])
        assert e.mean == 4.0
        assert e.std == 0.0
        assert e.ci95() == 0.0

    def test_mean_std(self):
        e = Estimate.of([1.0, 2.0, 3.0])
        assert e.mean == 2.0
        assert e.std == pytest.approx(1.0)
        assert e.stderr == pytest.approx(1.0 / 3**0.5)

    def test_str(self):
        assert "n=3" in str(Estimate.of([1.0, 2.0, 3.0]))


class TestAggregate:
    def test_success_rates(self):
        runs = [run_with_success(0.4), run_with_success(0.6)]
        e = success_rates(runs)
        assert e.mean == pytest.approx(0.5)

    def test_custom_metric(self):
        runs = [run_with_success(0.4), run_with_success(0.6)]
        e = aggregate(runs, lambda r: float(r.generated))
        assert e.mean == 10.0


class TestShapeClaims:
    def test_holds(self):
        claim = ShapeClaim(
            claim_id="x", paper="a > b", predicate=lambda: True
        )
        assert claim.evaluate("measured a > b")
        assert claim.holds
        assert "HOLDS" in claim.render()

    def test_diverges(self):
        claim = ShapeClaim(
            claim_id="x", paper="a > b", predicate=lambda: False
        )
        claim.evaluate("measured a < b", note="traces differ")
        assert "DIVERGES" in claim.render()
        assert "traces differ" in claim.render()

    def test_report_counts(self):
        report = ComparisonReport(experiment="fig9")
        c1 = report.add(
            ShapeClaim(claim_id="a", paper="p", predicate=lambda: True)
        )
        c2 = report.add(
            ShapeClaim(claim_id="b", paper="p", predicate=lambda: False)
        )
        c1.evaluate("m")
        c2.evaluate("m")
        assert report.holding == 1
        assert report.evaluated == 2
        assert "1/2" in report.render()


class TestPredicates:
    def test_monotone_decreasing(self):
        assert monotone_decreasing([5.0, 4.0, 4.0, 1.0])
        assert not monotone_decreasing([5.0, 6.0, 4.0])
        assert monotone_decreasing([5.0, 5.5, 4.0], slack=0.6)

    def test_roughly_flat(self):
        assert roughly_flat([10.0, 12.0, 9.0])
        assert not roughly_flat([1.0, 10.0])
        assert roughly_flat([0.0, 0.0])  # vacuous

    def test_within_factor(self):
        assert within_factor(10.0, 12.0, 1.5)
        assert not within_factor(10.0, 30.0, 1.5)
        assert within_factor(0.0, 0.0, 2.0)
        assert not within_factor(1.0, 0.0, 2.0)


class TestRendering:
    def test_text_table_aligned(self):
        table = text_table(["name", "value"], [["a", 1.5], ["bb", 2.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1.50")

    def test_markdown_table(self):
        table = markdown_table(["x", "y"], [[1.0, 2.0]])
        assert table.splitlines()[1] == "|---|---|"
        assert "| 1.00 | 2.00 |" in table

    def test_formatters(self):
        assert minutes(90.0) == "1.5m"
        assert percent(0.125) == "12.5%"


class TestSummaryTable:
    def test_grouped_aggregation(self):
        from repro.metrics import summary_table

        grouped = {
            "a": [run_with_success(0.4), run_with_success(0.6)],
            "b": [run_with_success(1.0)],
        }
        table = summary_table(grouped)
        assert table["a"]["success_rate"].mean == pytest.approx(0.5)
        assert table["b"]["success_rate"].mean == pytest.approx(1.0)
        assert set(table["a"]) == {"success_rate", "mean_delay", "cost"}

    def test_detection_rates_estimate(self):
        from repro.metrics import detection_rates
        from repro.sim.results import DetectionRecord

        run = run_with_success(0.5)
        run.record_detection(
            DetectionRecord(
                offender=7, detector=0, time=10.0, msg_id=0,
                deviation="dropper", delay_after_ttl=1.0,
            )
        )
        estimate = detection_rates([run], misbehaving=[7, 8])
        assert estimate.mean == pytest.approx(0.5)
