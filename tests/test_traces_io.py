"""Tests for trace parsing and serialization."""

import pytest

from repro.traces import (
    TraceFormatError,
    dump_trace,
    load_trace,
    load_trace_with_universe,
    make_contact,
    parse_trace,
    save_trace,
)
from repro.traces.trace import ContactTrace

SAMPLE = """
# comment line
0 1 10.0 20.0
2 1 30.5 42.0 extra columns ignored
0 2 50 60
"""


class TestParse:
    def test_basic(self):
        trace = parse_trace(SAMPLE, name="sample")
        assert trace.name == "sample"
        assert trace.num_nodes == 3
        assert len(trace) == 3

    def test_normalizes_endpoints(self):
        trace = parse_trace("5 2 0 10\n")
        c = trace.contacts[0]
        assert (c.a, c.b) == (2, 5)

    def test_comments_and_blanks_skipped(self):
        trace = parse_trace("# x\n\n0 1 0 1\n")
        assert len(trace) == 1

    def test_self_contacts_skipped_but_node_kept(self):
        trace = parse_trace("3 3 0 10\n0 1 0 1\n")
        assert 3 in trace.nodes
        assert len(trace) == 1

    def test_min_duration_filter(self):
        trace = parse_trace("0 1 0 5\n0 1 10 100\n", min_duration=6.0)
        assert len(trace) == 1

    def test_too_few_columns(self):
        with pytest.raises(TraceFormatError):
            parse_trace("0 1 5\n")

    def test_non_numeric(self):
        with pytest.raises(TraceFormatError):
            parse_trace("a b c d\n")

    def test_error_reports_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_trace("0 1 0 1\nbroken\n")


class TestRoundtrip:
    def test_dump_parse_identity(self, line_trace):
        text = dump_trace(line_trace)
        again = parse_trace(text, name=line_trace.name)
        assert again.contacts == line_trace.contacts

    def test_file_roundtrip(self, tmp_path, line_trace):
        path = tmp_path / "trace.txt"
        save_trace(line_trace, path)
        loaded = load_trace(path, name="line")
        assert loaded.contacts == line_trace.contacts
        assert loaded.name == "line"

    def test_name_defaults_to_stem(self, tmp_path, line_trace):
        path = tmp_path / "mytrace.txt"
        save_trace(line_trace, path)
        assert load_trace(path).name == "mytrace"

    def test_universe_header_restores_isolated_nodes(self, tmp_path):
        trace = ContactTrace(
            name="u",
            nodes=(0, 1, 7),
            contacts=(make_contact(0, 1, 0.0, 1.0),),
        )
        path = tmp_path / "u.txt"
        save_trace(trace, path)
        loaded = load_trace_with_universe(path)
        assert 7 in loaded.nodes

    def test_plain_load_drops_isolated_nodes(self, tmp_path):
        trace = ContactTrace(
            name="u",
            nodes=(0, 1, 7),
            contacts=(make_contact(0, 1, 0.0, 1.0),),
        )
        path = tmp_path / "u.txt"
        save_trace(trace, path)
        assert 7 not in load_trace(path).nodes
