"""Integration tests: the paper's headline claims at evaluation scale.

These run real 3-hour evaluation windows (one seed each) and assert
the qualitative results the paper reports.  They are the slowest tests
in the suite (~1-4 s per simulation).
"""

import pytest

from repro.adversaries import strategy_population
from repro.core import G2GDelegationForwarding, G2GEpidemicForwarding
from repro.experiments import (
    evaluation_community,
    evaluation_trace,
    standard_config,
)
from repro.protocols import DelegationForwarding, EpidemicForwarding
from repro.sim import Simulation


@pytest.fixture(scope="module")
def infocom():
    return evaluation_trace("infocom05")


@pytest.fixture(scope="module")
def infocom_community():
    return evaluation_community("infocom05")


def run(trace, protocol, family="epidemic", strategies=None, community=None,
        trace_name="infocom05", seed=1):
    config = standard_config(trace_name, family, seed)
    return Simulation(
        trace, protocol, config, strategies=strategies, community=community
    ).run()


class TestSelfishnessCrashesVanillaProtocols:
    """Sec. V: droppers make Epidemic collapse."""

    def test_all_droppers_halve_epidemic_delivery(self, infocom):
        honest = run(infocom, EpidemicForwarding())
        strategies, _ = strategy_population(
            infocom.nodes, "dropper", len(infocom.nodes), seed=1
        )
        selfish = run(infocom, EpidemicForwarding(), strategies=strategies)
        assert selfish.success_rate < honest.success_rate * 0.75

    def test_droppers_crash_delegation(self, infocom):
        honest = run(
            infocom, DelegationForwarding("last_contact"), family="delegation"
        )
        strategies, _ = strategy_population(
            infocom.nodes, "dropper", len(infocom.nodes) - 1, seed=1
        )
        selfish = run(
            infocom,
            DelegationForwarding("last_contact"),
            family="delegation",
            strategies=strategies,
        )
        assert selfish.success_rate < honest.success_rate

    def test_liars_hurt_delegation(self, infocom):
        honest = run(
            infocom, DelegationForwarding("last_contact"), family="delegation"
        )
        strategies, _ = strategy_population(
            infocom.nodes, "liar", len(infocom.nodes) - 1, seed=1
        )
        lying = run(
            infocom,
            DelegationForwarding("last_contact"),
            family="delegation",
            strategies=strategies,
        )
        assert lying.success_rate < honest.success_rate


class TestG2GDetection:
    """Secs. V and VII: deviations are detected quickly and reliably."""

    def test_g2g_epidemic_detects_droppers(self, infocom):
        strategies, bad = strategy_population(
            infocom.nodes, "dropper", 10, seed=1
        )
        results = run(
            infocom, G2GEpidemicForwarding(), strategies=strategies
        )
        assert results.detection_rate(bad) >= 0.8
        assert results.false_positives(bad) == set()

    def test_detection_time_minutes_scale(self, infocom):
        strategies, bad = strategy_population(
            infocom.nodes, "dropper", 10, seed=1
        )
        results = run(
            infocom, G2GEpidemicForwarding(), strategies=strategies
        )
        # paper: ~12 minutes after Δ1 on Infocom; allow a wide band.
        assert 0 < results.mean_detection_delay() < 45 * 60.0

    def test_g2g_delegation_detects_all_three_kinds(self, infocom):
        for kind in ("dropper", "liar", "cheater"):
            strategies, bad = strategy_population(
                infocom.nodes, kind, 10, seed=1
            )
            results = run(
                infocom,
                G2GDelegationForwarding("last_contact"),
                family="delegation",
                strategies=strategies,
            )
            assert results.detection_rate(bad) >= 0.4, kind
            assert results.false_positives(bad) == set(), kind

    def test_outsider_variants_detected(self, infocom, infocom_community):
        strategies, bad = strategy_population(
            infocom.nodes,
            "dropper_with_outsiders",
            10,
            seed=1,
            community=infocom_community,
        )
        results = run(
            infocom,
            G2GEpidemicForwarding(),
            strategies=strategies,
            community=infocom_community,
        )
        assert results.detection_rate(bad) >= 0.5
        assert results.false_positives(bad) == set()


class TestG2GPerformance:
    """Sec. VIII: G2G costs less, with similar delay and success."""

    def test_g2g_epidemic_cheaper(self, infocom):
        vanilla = run(infocom, EpidemicForwarding())
        g2g = run(infocom, G2GEpidemicForwarding())
        assert g2g.cost < vanilla.cost
        assert g2g.mean_delay < vanilla.mean_delay * 1.5
        assert g2g.success_rate > vanilla.success_rate * 0.75

    def test_g2g_delegation_cheaper(self, infocom):
        vanilla = run(
            infocom, DelegationForwarding("last_contact"), family="delegation"
        )
        g2g = run(
            infocom,
            G2GDelegationForwarding("last_contact"),
            family="delegation",
        )
        assert g2g.cost < vanilla.cost

    def test_epidemic_costs_most(self, infocom):
        epidemic = run(infocom, EpidemicForwarding())
        delegation = run(
            infocom, DelegationForwarding("last_contact"), family="delegation"
        )
        assert epidemic.cost > 2 * delegation.cost

    def test_memory_overhead_within_constant_factor(self, infocom):
        """Sec. VIII: G2G memory is within a constant factor of vanilla."""
        vanilla = run(infocom, EpidemicForwarding())
        g2g = run(infocom, G2GEpidemicForwarding())
        assert (
            g2g.total_memory_byte_seconds
            < 4 * vanilla.total_memory_byte_seconds
        )
