"""Tests for results archival (JSON round-trip)."""

import json

import pytest

from repro.adversaries import Dropper
from repro.core import G2GEpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.serialize import (
    FORMAT_VERSION,
    load_results,
    results_from_dict,
    results_to_dict,
    save_results,
)


@pytest.fixture(scope="module")
def run_results(mini_synthetic_module):
    config = SimulationConfig(
        run_length=2 * 3600.0, silent_tail=1800.0, mean_interarrival=30.0,
        ttl=1200.0, seed=4, heavy_hmac_iterations=2,
    )
    return Simulation(
        mini_synthetic_module.trace,
        G2GEpidemicForwarding(),
        config,
        strategies={3: Dropper()},
    ).run()


@pytest.fixture(scope="module")
def mini_synthetic_module():
    from repro.traces.synthetic import CommunityModelConfig, generate

    config = CommunityModelConfig(
        name="mini",
        community_sizes=(5, 5),
        duration=2 * 3600.0,
        base_rate=1.0 / 600.0,
        inter_factor=0.08,
        traveler_fraction=0.2,
        sociability_sigma=0.2,
        mean_contact_duration=60.0,
        min_contact_duration=10.0,
    )
    return generate(config, seed=7)


class TestRoundTrip:
    def test_metrics_preserved(self, run_results):
        again = results_from_dict(results_to_dict(run_results))
        assert again.summary() == run_results.summary()

    def test_detections_preserved(self, run_results):
        again = results_from_dict(results_to_dict(run_results))
        assert again.detections == run_results.detections
        assert again.detection_rate([3]) == run_results.detection_rate([3])

    def test_offender_delays_preserved(self, run_results):
        again = results_from_dict(results_to_dict(run_results))
        assert (
            again.offender_detection_delays()
            == run_results.offender_detection_delays()
        )

    def test_counters_preserved(self, run_results):
        again = results_from_dict(results_to_dict(run_results))
        assert again.test_phases == run_results.test_phases
        assert again.heavy_hmac_runs == run_results.heavy_hmac_runs

    def test_file_round_trip(self, run_results, tmp_path):
        path = tmp_path / "run.json"
        save_results(run_results, path)
        again = load_results(path)
        for key, value in run_results.summary().items():
            # JSON round-trips each float exactly, but aggregate sums
            # re-accumulate in sorted-key order; allow ulp-level slack.
            assert again.summary()[key] == pytest.approx(value), key
        assert again.protocol == run_results.protocol

    def test_json_is_valid_and_versioned(self, run_results, tmp_path):
        path = tmp_path / "run.json"
        save_results(run_results, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION

    def test_unknown_version_rejected(self, run_results):
        data = results_to_dict(run_results)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            results_from_dict(data)
