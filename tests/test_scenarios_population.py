"""Mixed-population conformance: determinism, quotas, role exclusivity.

Property-style checks over :func:`repro.adversaries.mixed_population`
across seeds and mixes, plus the regression pinned by the factory
refactor: a kind listed with fraction 0.0 must be *exactly* equivalent
to leaving the kind out — down to the run digest — because empty
placement slices consume no shuffle draws.
"""

import pytest

from repro.adversaries import (
    HONEST,
    mix_counts,
    mixed_population,
    population_from_roles,
    strategy_population,
    validate_kind,
)
from tests.test_determinism_seeds import QUICK, results_digest

from repro.experiments.parallel import RunRequest, execute_request

NODES = tuple(range(40))

MIXES = [
    {"dropper": 0.4, "liar": 0.2, "cheater": 0.1},
    {"dropper": 0.5},
    {"liar": 0.33, "dodger": 0.33},
    {"dropper": 0.25, "liar": 0.25, "cheater": 0.25, "dodger": 0.25},
]


class TestMixCounts:
    @pytest.mark.parametrize("mix", MIXES)
    @pytest.mark.parametrize("n", [10, 36, 41, 100])
    def test_counts_within_one_of_quota(self, mix, n):
        counts = mix_counts(n, mix)
        for kind, fraction in mix.items():
            assert abs(counts[kind] - fraction * n) < 1.0 + 1e-9

    def test_zero_fraction_dropped(self):
        counts = mix_counts(50, {"dropper": 0.2, "liar": 0.0})
        assert counts == {"dropper": 10}

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            mix_counts(50, {"dropper": -0.1})

    def test_overfull_mix_rejected(self):
        with pytest.raises(ValueError):
            mix_counts(50, {"dropper": 0.7, "liar": 0.5})

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            mix_counts(50, {"freeloader": 0.1})

    def test_outsider_kinds_validate_without_oracle(self):
        # validate_kind must accept the _with_outsiders spellings even
        # though instantiating them needs a community oracle.
        assert validate_kind("dropper_with_outsiders") == ("dropper", True)
        counts = mix_counts(50, {"dropper_with_outsiders": 0.2})
        assert counts == {"dropper_with_outsiders": 10}


class TestMixedPopulation:
    @pytest.mark.parametrize("mix", MIXES)
    @pytest.mark.parametrize("seed", [1, 2, 7])
    def test_deterministic_per_seed(self, mix, seed):
        first = mixed_population(NODES, mix, seed=seed)
        second = mixed_population(NODES, mix, seed=seed)
        assert first[1] == second[1]
        assert {n: type(s) for n, s in first[0].items()} == {
            n: type(s) for n, s in second[0].items()
        }

    @pytest.mark.parametrize("mix", MIXES)
    def test_no_node_gets_two_roles(self, mix):
        _, roles = mixed_population(NODES, mix, seed=3)
        assigned = [node for members in roles.values() for node in members]
        assert len(assigned) == len(set(assigned))
        assert set(assigned) <= set(NODES)

    @pytest.mark.parametrize("mix", MIXES)
    @pytest.mark.parametrize("seed", [1, 5])
    def test_counts_within_one_of_quota(self, mix, seed):
        _, roles = mixed_population(NODES, mix, seed=seed)
        for kind, fraction in mix.items():
            assert abs(len(roles[kind]) - fraction * len(NODES)) < 1.0 + 1e-9

    def test_seeds_differ(self):
        mix = {"dropper": 0.4, "liar": 0.2}
        _, one = mixed_population(NODES, mix, seed=1)
        _, other = mixed_population(NODES, mix, seed=2)
        assert one != other

    def test_remainder_is_honest(self):
        strategies, roles = mixed_population(
            NODES, {"dropper": 0.25}, seed=4
        )
        assigned = set(roles["dropper"])
        for node in NODES:
            if node in assigned:
                assert strategies[node] is not HONEST
            else:
                assert strategies[node] is HONEST

    def test_zero_fraction_identical_assignment(self):
        # The tentpole property behind the digest regression below:
        # a 0.0 entry consumes no draws, so placement cannot move.
        mix = {"dropper": 0.3}
        padded = {"dropper": 0.3, "liar": 0.0, "cheater": 0.0}
        _, base_roles = mixed_population(NODES, mix, seed=9)
        _, padded_roles = mixed_population(NODES, padded, seed=9)
        assert base_roles == padded_roles


class TestPopulationFromRoles:
    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            population_from_roles(NODES, {999: "dropper"})

    def test_single_kind_path_unchanged(self):
        # strategy_population now funnels through the role map; its
        # sampled placement must still match the dedicated RNG stream.
        strategies, misbehaving = strategy_population(
            NODES, "dropper", 5, seed=11
        )
        assert len(misbehaving) == 5
        for node in misbehaving:
            assert strategies[node] is not HONEST


class TestZeroFractionDigestRegression:
    def test_zero_fraction_entry_yields_baseline_digest(self):
        base = RunRequest(
            trace_name="cambridge06",
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=1,
            overrides=QUICK,
            mix=(("dropper", 0.2),),
        )
        padded = RunRequest(
            trace_name="cambridge06",
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=1,
            overrides=QUICK,
            mix=(("dropper", 0.2), ("liar", 0.0)),
        )
        assert results_digest(execute_request(base)) == results_digest(
            execute_request(padded)
        )

    def test_mix_and_deviation_are_exclusive(self):
        request = RunRequest(
            trace_name="cambridge06",
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=1,
            overrides=QUICK,
            deviation="dropper",
            deviation_count=3,
            mix=(("liar", 0.1),),
        )
        with pytest.raises(ValueError):
            execute_request(request)
