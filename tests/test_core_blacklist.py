"""Tests for PoM propagation services."""

from repro.core.blacklist import (
    GossipBlacklist,
    InstantBlacklist,
    ProofOfMisbehavior,
)


def pom(offender=5, detector=1, t=100.0):
    return ProofOfMisbehavior(
        offender=offender, detector=detector, msg_id=0,
        deviation="dropper", issued_at=t,
    )


class TestInstant:
    def test_everyone_knows_immediately(self):
        bl = InstantBlacklist()
        bl.publish(pom())
        assert bl.knows(99, 5)
        assert bl.knows(1, 5)

    def test_unknown_offender(self):
        bl = InstantBlacklist()
        assert not bl.knows(1, 5)

    def test_convicted_set(self):
        bl = InstantBlacklist()
        bl.publish(pom(offender=5))
        bl.publish(pom(offender=7))
        assert bl.convicted() == {5, 7}

    def test_on_contact_noop(self):
        bl = InstantBlacklist()
        bl.publish(pom())
        bl.on_contact(1, 2, 0.0)
        assert bl.knows(2, 5)


class TestGossip:
    def test_only_detector_knows_initially(self):
        bl = GossipBlacklist()
        bl.publish(pom(detector=1))
        assert bl.knows(1, 5)
        assert not bl.knows(2, 5)

    def test_contact_spreads_knowledge(self):
        bl = GossipBlacklist()
        bl.publish(pom(detector=1))
        bl.on_contact(1, 2, 10.0)
        assert bl.knows(2, 5)

    def test_transitive_spread(self):
        bl = GossipBlacklist()
        bl.publish(pom(detector=1))
        bl.on_contact(1, 2, 10.0)
        bl.on_contact(2, 3, 20.0)
        assert bl.knows(3, 5)

    def test_no_spontaneous_knowledge(self):
        bl = GossipBlacklist()
        bl.publish(pom(detector=1))
        bl.on_contact(3, 4, 10.0)
        assert not bl.knows(3, 5)

    def test_awareness_counts(self):
        bl = GossipBlacklist()
        bl.publish(pom(detector=1))
        assert bl.awareness(5) == 1
        bl.on_contact(1, 2, 10.0)
        assert bl.awareness(5) == 2

    def test_convicted_independent_of_spread(self):
        bl = GossipBlacklist()
        bl.publish(pom(offender=5, detector=1))
        assert bl.convicted() == {5}
