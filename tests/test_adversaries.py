"""Tests for adversary strategies and the population factory."""

import pytest

from repro.adversaries import (
    HONEST,
    Cheater,
    Dropper,
    Liar,
    OutsiderConditioned,
    Strategy,
    make_strategy,
    strategy_population,
)
from repro.sim.messages import Message


def msg():
    return Message(msg_id=0, source=0, destination=9, created_at=0.0, ttl=60.0)


class FakeCommunity:
    """Nodes 0-4 are one community, 5-9 another."""

    def same_community(self, a, b):
        return (a < 5) == (b < 5)


class TestBaseStrategies:
    def test_honest_defaults(self):
        s = Strategy()
        assert s.keep_relayed_copy(1, msg(), 2, 0.0)
        assert s.declared_quality(1, 9, 3.0, 2, 0.0) == 3.0
        assert s.forwarded_message_quality(1, msg(), 3.0, 2, 0.0) == 3.0
        assert not s.deviates

    def test_dropper(self):
        d = Dropper()
        assert not d.keep_relayed_copy(1, msg(), 2, 0.0)
        assert d.declared_quality(1, 9, 3.0, 2, 0.0) == 3.0
        assert d.deviates

    def test_liar(self):
        l = Liar()
        assert l.declared_quality(1, 9, 3.0, 2, 0.0) == 0.0
        assert l.keep_relayed_copy(1, msg(), 2, 0.0)

    def test_cheater(self):
        c = Cheater()
        assert c.forwarded_message_quality(1, msg(), 3.0, 2, 0.0) == 0.0
        assert c.declared_quality(1, 9, 3.0, 2, 0.0) == 3.0


class TestOutsiderConditioning:
    def test_deviates_only_against_outsiders(self):
        s = OutsiderConditioned(Dropper(), FakeCommunity())
        # giver 2 is an insider of node 1 -> behave
        assert s.keep_relayed_copy(1, msg(), 2, 0.0)
        # giver 7 is an outsider -> drop
        assert not s.keep_relayed_copy(1, msg(), 7, 0.0)

    def test_liar_with_outsiders(self):
        s = OutsiderConditioned(Liar(), FakeCommunity())
        assert s.declared_quality(1, 9, 3.0, 2, 0.0) == 3.0
        assert s.declared_quality(1, 9, 3.0, 7, 0.0) == 0.0

    def test_cheater_with_outsiders(self):
        s = OutsiderConditioned(Cheater(), FakeCommunity())
        assert s.forwarded_message_quality(1, msg(), 3.0, 3, 0.0) == 3.0
        assert s.forwarded_message_quality(1, msg(), 3.0, 8, 0.0) == 0.0

    def test_wrapping_honest_rejected(self):
        with pytest.raises(ValueError):
            OutsiderConditioned(Strategy(), FakeCommunity())

    def test_name(self):
        s = OutsiderConditioned(Dropper(), FakeCommunity())
        assert s.name == "dropper_with_outsiders"

    def test_none_giver_treated_as_insider(self):
        s = OutsiderConditioned(Dropper(), FakeCommunity())
        assert s.keep_relayed_copy(1, msg(), None, 0.0)


class TestFactory:
    def test_make_plain(self):
        assert isinstance(make_strategy("dropper"), Dropper)
        assert isinstance(make_strategy("liar"), Liar)
        assert isinstance(make_strategy("cheater"), Cheater)

    def test_make_with_outsiders(self):
        s = make_strategy("liar_with_outsiders", community=FakeCommunity())
        assert isinstance(s, OutsiderConditioned)

    def test_with_outsiders_requires_community(self):
        with pytest.raises(ValueError):
            make_strategy("dropper_with_outsiders")

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_strategy("saboteur")


class TestPopulation:
    def test_count_and_honesty(self):
        strategies, bad = strategy_population(range(20), "dropper", 5, seed=1)
        assert len(bad) == 5
        assert sum(1 for s in strategies.values() if s.deviates) == 5
        for node in range(20):
            if node not in bad:
                assert strategies[node] is HONEST

    def test_deterministic(self):
        _, bad1 = strategy_population(range(20), "dropper", 5, seed=1)
        _, bad2 = strategy_population(range(20), "dropper", 5, seed=1)
        assert bad1 == bad2

    def test_seed_varies_placement(self):
        _, bad1 = strategy_population(range(20), "dropper", 5, seed=1)
        _, bad2 = strategy_population(range(20), "dropper", 5, seed=2)
        assert bad1 != bad2

    def test_zero_count(self):
        strategies, bad = strategy_population(range(5), "liar", 0, seed=1)
        assert bad == ()
        assert all(s is HONEST for s in strategies.values())

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            strategy_population(range(5), "liar", 6, seed=1)

    def test_outsider_population(self):
        strategies, bad = strategy_population(
            range(10), "cheater_with_outsiders", 3, seed=1,
            community=FakeCommunity(),
        )
        assert all(
            isinstance(strategies[n], OutsiderConditioned) for n in bad
        )


class TestDodger:
    def test_refuses_pending_givers(self):
        from repro.adversaries import Dodger

        d = Dodger()
        assert not d.accept_session(1, 5, 0.0, frozenset({5}))
        assert d.accept_session(1, 6, 0.0, frozenset({5}))
        assert d.accept_session(1, 5, 0.0, frozenset())

    def test_also_drops(self):
        from repro.adversaries import Dodger

        d = Dodger()
        assert not d.keep_relayed_copy(1, msg(), 2, 0.0)

    def test_in_factory(self):
        from repro.adversaries import Dodger

        assert isinstance(make_strategy("dodger"), Dodger)
