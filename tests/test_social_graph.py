"""Tests for contact-graph aggregation."""

from repro.social import (
    ContactGraph,
    connected_components,
    top_quantile_graph,
)
from repro.traces import ContactTrace, make_contact


def sample_trace():
    return ContactTrace(
        name="g",
        nodes=(0, 1, 2, 3, 9),
        contacts=(
            make_contact(0, 1, 0.0, 100.0),
            make_contact(0, 1, 200.0, 250.0),
            make_contact(1, 2, 300.0, 310.0),
            make_contact(2, 3, 400.0, 405.0),
        ),
    )


class TestContactGraph:
    def test_aggregation(self):
        g = ContactGraph.from_trace(sample_trace())
        assert g.contact_count(0, 1) == 2
        assert g.contact_duration(0, 1) == 150.0
        assert g.contact_count(1, 2) == 1
        assert g.contact_count(0, 3) == 0

    def test_neighbors(self):
        g = ContactGraph.from_trace(sample_trace())
        assert g.neighbors(1) == {0, 2}
        assert g.neighbors(9) == set()

    def test_degree(self):
        g = ContactGraph.from_trace(sample_trace())
        assert g.degree(1) == 2
        assert g.degree(9) == 0

    def test_thresholded_by_count(self):
        g = ContactGraph.from_trace(sample_trace()).thresholded(min_contacts=2)
        assert g.contact_count(0, 1) == 2
        assert g.contact_count(1, 2) == 0

    def test_thresholded_by_duration(self):
        g = ContactGraph.from_trace(sample_trace()).thresholded(
            min_duration=20.0
        )
        assert g.num_edges == 1

    def test_adjacency_includes_isolated(self):
        adj = ContactGraph.from_trace(sample_trace()).adjacency()
        assert adj[9] == set()
        assert adj[0] == {1}


class TestTopQuantile:
    def test_keeps_strongest_edges(self):
        g = top_quantile_graph(sample_trace(), quantile=0.5)
        assert g.contact_duration(0, 1) > 0
        # The weakest edge (2-3, 5 s) is cut.
        assert g.contact_count(2, 3) == 0

    def test_zero_quantile_keeps_all(self):
        g = top_quantile_graph(sample_trace(), quantile=0.0)
        assert g.num_edges == 3

    def test_invalid_quantile(self):
        import pytest

        with pytest.raises(ValueError):
            top_quantile_graph(sample_trace(), quantile=1.0)

    def test_empty_trace(self):
        empty = ContactTrace(name="e", nodes=(0, 1), contacts=())
        assert top_quantile_graph(empty).num_edges == 0


class TestComponents:
    def test_components(self):
        g = ContactGraph.from_trace(sample_trace())
        comps = connected_components(g)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 4]  # node 9 isolated

    def test_fully_disconnected(self):
        trace = ContactTrace(name="d", nodes=(0, 1, 2), contacts=())
        comps = connected_components(ContactGraph.from_trace(trace))
        assert len(comps) == 3
