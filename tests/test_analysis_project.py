"""Tests for the whole-program analysis layer (G2G008–G2G013).

Each project rule has one violating and one clean fixture mini-tree
under ``tests/fixtures/project/<case>/repro/``; the shipped source
tree itself must pass ``lint --project`` with zero findings (pragmas
carry the justified exceptions) — that self-check is this PR's
standing acceptance gate, mirroring the single-file one.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    PROJECT_RULE_REGISTRY,
    ProjectModel,
    lint_tree,
    module_facts,
    render_report,
)
from repro.analysis.framework import LintModule
from repro.analysis.project import (
    module_dotted_name,
    resolve_imports,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "project"

#: rule id -> expected (rel fixture file, line) findings in its bad tree.
EXPECTED_BAD = {
    "G2G008": [("repro/sim/engine.py", 6)],
    "G2G009": [
        ("repro/perf/counters.py", 10),
        ("repro/sim/node.py", 5),
    ],
    "G2G010": [
        ("repro/api.py", 10),
        ("repro/core/wire.py", 3),
    ],
    "G2G011": [("repro/experiments/parallel.py", 10)],
    "G2G012": [
        ("repro/sim/engine.py", 10),
        ("repro/sim/engine.py", 13),
    ],
    "G2G013": [("repro/sim/engine.py", 6)],
}


def project_lint(case, rule_id):
    run = lint_tree(
        [FIXTURES / case], select=[rule_id], project=True
    )
    return run.violations


class TestRuleFixtures:
    def test_registry_has_all_project_rules(self):
        assert sorted(PROJECT_RULE_REGISTRY) == sorted(EXPECTED_BAD)

    @pytest.mark.parametrize("rule_id", sorted(EXPECTED_BAD))
    def test_bad_tree_fires_exactly_where_expected(self, rule_id):
        case = f"{rule_id.lower()}_bad"
        violations = project_lint(case, rule_id)
        got = [
            (str(Path(v.path).relative_to(FIXTURES / case)), v.line)
            for v in violations
        ]
        assert got == EXPECTED_BAD[rule_id], render_report(violations)
        assert {v.rule_id for v in violations} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(EXPECTED_BAD))
    def test_clean_tree_is_clean(self, rule_id):
        case = f"{rule_id.lower()}_clean"
        violations = project_lint(case, rule_id)
        assert violations == [], render_report(violations)

    def test_pragma_suppresses_project_rule(self, tmp_path):
        tree = tmp_path / "repro" / "sim"
        tree.mkdir(parents=True)
        (tmp_path / "repro" / "perf").mkdir()
        (tmp_path / "repro" / "perf" / "util.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n"
        )
        (tree / "engine.py").write_text(
            "from ..perf.util import stamp\n\n"
            "# g2g: allow(G2G008: fixture (intentional) exception)\n"
            "def step():\n"
            "    return stamp()\n"
        )
        run = lint_tree([tmp_path], select=["G2G008"], project=True)
        assert run.violations == [], render_report(run.violations)


class TestSelfCheck:
    def test_shipped_tree_passes_project_lint(self):
        run = lint_tree([REPO_ROOT / "src"], project=True)
        assert run.violations == [], render_report(run.violations)

    def test_real_counter_schema_is_parsed(self):
        # Guard against the G2G009 no-op failure mode: if the schema
        # module's literals ever stop parsing, the rule silently checks
        # nothing.  Assert the facts actually carry the declarations.
        counters = REPO_ROOT / "src" / "repro" / "perf" / "counters.py"
        facts = module_facts(LintModule.from_path(counters))
        assert facts is not None
        decls = facts["counter_decls"]
        assert decls is not None
        assert "signatures" in decls["fields"]
        assert "sim/events.py" in decls["hot_map"]

    def test_real_facade_surface_is_modeled(self):
        api = REPO_ROOT / "src" / "repro" / "api.py"
        facts = module_facts(LintModule.from_path(api))
        assert facts is not None
        assert facts["dunder_all"] == ["TelemetrySink", "run", "sweep"]


class TestProjectModel:
    def test_module_dotted_name(self):
        assert module_dotted_name("sim/node.py") == "repro.sim.node"
        assert module_dotted_name("sim/__init__.py") == "repro.sim"
        assert module_dotted_name("api.py") == "repro.api"

    def test_resolve_imports_relative_levels(self):
        import ast

        tree = ast.parse(
            "from . import events\n"
            "from .events import Scheduler\n"
            "from ..perf.counters import COUNTERS\n"
            "import json\n"
        )
        edges, names = resolve_imports(tree, "sim/engine.py")
        targets = {t for t, _ in edges}
        assert "repro.sim.events" in targets
        assert "repro.sim.events.Scheduler" in targets
        assert "repro.perf.counters.COUNTERS" in targets
        assert "json" in targets
        assert names["events"] == "repro.sim.events"
        assert names["Scheduler"] == "repro.sim.events.Scheduler"
        assert names["COUNTERS"] == "repro.perf.counters.COUNTERS"

    def test_resolve_imports_beyond_root_is_skipped(self):
        import ast

        tree = ast.parse("from ....nowhere import thing\n")
        edges, names = resolve_imports(tree, "sim/engine.py")
        assert edges == []
        assert names == {}

    def test_call_graph_resolution(self):
        model = ProjectModel.from_sources([
            (
                "t/repro/sim/a.py",
                "from .b import helper\n\n"
                "def caller():\n"
                "    return helper()\n",
            ),
            (
                "t/repro/sim/b.py",
                "def helper():\n    return 1\n",
            ),
        ])
        entry = model.by_rel["sim/a.py"]
        [target] = entry["functions"]["caller"]["calls"]
        assert model.resolve_callee(entry, "caller", target) == (
            "sim/b.py",
            "helper",
        )

    def test_self_method_resolution(self):
        model = ProjectModel.from_sources([
            (
                "t/repro/sim/a.py",
                "class C:\n"
                "    def outer(self):\n"
                "        return self.inner()\n"
                "    def inner(self):\n"
                "        return 1\n",
            ),
        ])
        entry = model.by_rel["sim/a.py"]
        [target] = entry["functions"]["C.outer"]["calls"]
        assert model.resolve_callee(entry, "C.outer", target) == (
            "sim/a.py",
            "C.inner",
        )

    def test_exempt_parameter_stops_taint(self):
        model = ProjectModel.from_sources([
            (
                "t/repro/perf/u.py",
                "import time\n\n"
                "def stamp(now):\n"
                "    return now or time.time()\n",
            ),
            (
                "t/repro/sim/e.py",
                "from ..perf.u import stamp\n\n"
                "def step():\n"
                "    return stamp(0.0)\n",
            ),
        ])
        from repro.analysis.project import check_project

        assert check_project(model, ["G2G008"]) == []


class TestRuleDetails:
    def _check(self, sources, rule_id):
        from repro.analysis.project import check_project

        return check_project(ProjectModel.from_sources(sources), [rule_id])

    def test_g2g008_reports_the_call_chain(self):
        violations = self._check(
            [
                (
                    "t/repro/perf/u.py",
                    "import time\n\ndef stamp():\n    return time.time()\n",
                ),
                (
                    "t/repro/sim/e.py",
                    "from ..perf.u import stamp\n\n"
                    "def step():\n    return stamp()\n",
                ),
            ],
            "G2G008",
        )
        assert len(violations) == 1
        assert "time.time" in violations[0].message
        assert "stamp" in violations[0].message

    def test_g2g008_direct_sink_left_to_single_file_rules(self):
        # A core function calling time.time() directly is G2G002's
        # finding; the taint rule only owns the transitive hops.
        violations = self._check(
            [
                (
                    "t/repro/sim/e.py",
                    "import time\n\ndef step():\n    return time.time()\n",
                ),
            ],
            "G2G008",
        )
        assert violations == []

    def test_g2g009_missing_module_flagged(self):
        violations = self._check(
            [
                (
                    "t/repro/perf/counters.py",
                    'FIELDS = ("signatures",)\n'
                    'HOT_MODULE_COUNTERS = {"sim/gone.py": ("signatures",)}\n',
                ),
            ],
            "G2G009",
        )
        assert len(violations) == 1
        assert "no such module" in violations[0].message

    def test_g2g010_import_dedup_per_line(self):
        violations = self._check(
            [
                (
                    "t/repro/core/wire.py",
                    "from repro.experiments.cache import run_key, CACHE\n",
                ),
            ],
            "G2G010",
        )
        assert len(violations) == 1

    def test_g2g010_all_exports_missing_name(self):
        violations = self._check(
            [
                (
                    "t/repro/api.py",
                    '__all__ = ["ghost"]\n',
                ),
            ],
            "G2G010",
        )
        assert len(violations) == 1
        assert "ghost" in violations[0].message

    def test_g2g011_label_fields_exempt(self):
        violations = self._check(
            [
                (
                    "t/repro/scenarios/spec.py",
                    "from dataclasses import dataclass\n\n"
                    "@dataclass(frozen=True)\n"
                    "class ScenarioSpec:\n"
                    "    name: str\n"
                    "    trace: str\n\n"
                    "    def requests(self):\n"
                    "        return [self.trace]\n",
                ),
            ],
            "G2G011",
        )
        assert violations == []

    def test_g2g012_scheduler_module_itself_exempt(self):
        violations = self._check(
            [
                (
                    "t/repro/sim/events.py",
                    "def pop(queue, horizon):\n"
                    "    event = queue[0]\n"
                    "    return event.time <= horizon\n",
                ),
            ],
            "G2G012",
        )
        assert violations == []
