"""Tests for the run telemetry subsystem (registry, spans, exporters)."""

import json

import pytest

from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    TELEMETRY_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    SpanRecorder,
    TelemetryCollector,
    merge_metric_snapshots,
    merge_run_snapshots,
    read_jsonl,
    record_line,
    run_record,
    summarize_dir,
    to_prometheus,
    validate_record,
    write_jsonl,
)


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set(self):
        gauge = Gauge()
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_histogram_buckets(self):
        hist = Histogram(bounds=(10.0, 20.0))
        for value in (5.0, 15.0, 15.0, 99.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1]
        assert hist.count == 4
        assert hist.sum == 134.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(20.0, 10.0))

    def test_registry_snapshot_key_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z.last", 2)
        registry.inc("a.first")
        registry.set_gauge("m.mid", 7.0)
        registry.observe("d.delay", 42.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        assert snap["gauges"] == {"m.mid": 7.0}
        hist = snap["histograms"]["d.delay"]
        assert hist["bounds"] == list(DEFAULT_TIME_BUCKETS)
        assert hist["count"] == 1
        # Snapshots must be plain JSON-able data.
        json.dumps(snap)


class TestMerge:
    def _snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.inc(name, value)
        return registry.snapshot()

    def test_counters_add_gauges_max(self):
        a = MetricsRegistry()
        a.inc("runs", 1)
        a.set_gauge("nodes", 41.0)
        b = MetricsRegistry()
        b.inc("runs", 2)
        b.set_gauge("nodes", 36.0)
        merged = merge_metric_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["runs"] == 3
        assert merged["gauges"]["nodes"] == 41.0

    def test_none_entries_skipped(self):
        merged = merge_metric_snapshots([None, self._snap(x=5), None])
        assert merged["counters"] == {"x": 5}

    def test_histograms_add_bucketwise(self):
        a = MetricsRegistry()
        a.observe("delay", 30.0, bounds=(60.0, 120.0))
        b = MetricsRegistry()
        b.observe("delay", 90.0, bounds=(60.0, 120.0))
        b.observe("delay", 500.0, bounds=(60.0, 120.0))
        merged = merge_metric_snapshots([a.snapshot(), b.snapshot()])
        hist = merged["histograms"]["delay"]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3

    def test_histogram_bound_mismatch_raises(self):
        a = MetricsRegistry()
        a.observe("delay", 1.0, bounds=(60.0,))
        b = MetricsRegistry()
        b.observe("delay", 1.0, bounds=(30.0,))
        with pytest.raises(ValueError):
            merge_metric_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_is_associative_over_partitions(self):
        parts = [self._snap(x=i, y=2 * i) for i in range(1, 6)]
        whole = merge_metric_snapshots(parts)
        left = merge_metric_snapshots(
            [merge_metric_snapshots(parts[:2]),
             merge_metric_snapshots(parts[2:])]
        )
        assert whole == left

    def test_span_merge_folds_times_and_ops(self):
        a = {
            "counters": {}, "gauges": {}, "histograms": {},
            "spans": {
                "relay_handshake": {
                    "count": 2, "ops": {"signatures": 4},
                    "first_time": 10.0, "last_time": 50.0,
                }
            },
        }
        b = {
            "counters": {}, "gauges": {}, "histograms": {},
            "spans": {
                "relay_handshake": {
                    "count": 1, "ops": {"signatures": 3},
                    "first_time": 5.0, "last_time": 20.0,
                }
            },
        }
        merged = merge_run_snapshots([a, b])
        span = merged["spans"]["relay_handshake"]
        assert span["count"] == 3
        assert span["ops"]["signatures"] == 7
        assert span["first_time"] == 5.0
        assert span["last_time"] == 50.0


class TestSpanRecorder:
    def test_begin_end_records_aggregate(self):
        recorder = SpanRecorder()
        token = recorder.begin(100.0)
        recorder.end("sender_test", token, 100.0)
        token = recorder.begin(250.0)
        recorder.end("sender_test", token, 250.0)
        snap = recorder.snapshot()
        span = snap["sender_test"]
        assert span["count"] == 2
        assert span["first_time"] == 100.0
        assert span["last_time"] == 250.0


class _FakeResults:
    """Minimal stand-in for SimulationResults in exporter tests."""

    def __init__(self, telemetry):
        self.protocol = "g2g_epidemic"
        self.trace = "infocom05"
        self.seed = 1
        self.telemetry = telemetry

    def summary(self):
        return {"success_rate": 0.5}


def _run_snapshot(runs=1):
    telemetry = RunTelemetry()
    telemetry.registry.inc("run.count", runs)
    return telemetry.snapshot()


class TestExport:
    def test_record_roundtrip_and_validation(self, tmp_path):
        record = run_record(_FakeResults(_run_snapshot()))
        assert validate_record(record) == []
        path = str(tmp_path / "runs.jsonl")
        assert write_jsonl(path, [record, record]) == 2
        back = read_jsonl(path)
        assert back == [record, record]
        # Canonical line encoding is byte-stable.
        assert record_line(back[0]) == record_line(record)

    def test_validate_flags_problems(self):
        assert validate_record([]) != []
        bad = run_record(_FakeResults(_run_snapshot()))
        bad["schema"] = 99
        bad["seed"] = "one"
        problems = validate_record(bad)
        assert any("schema" in p for p in problems)
        assert any("seed" in p for p in problems)

    def test_summarize_dir_merges(self, tmp_path):
        write_jsonl(
            str(tmp_path / "a.jsonl"),
            [run_record(_FakeResults(_run_snapshot()))],
        )
        write_jsonl(
            str(tmp_path / "b.jsonl"),
            [run_record(_FakeResults(_run_snapshot(runs=2)))],
        )
        summary = summarize_dir(str(tmp_path))
        assert summary["schema"] == TELEMETRY_SCHEMA_VERSION
        assert summary["kind"] == "summary"
        assert summary["runs"] == 2
        assert summary["files"] == 2
        assert summary["telemetry"]["counters"]["run.count"] == 3

    def test_summarize_dir_rejects_invalid(self, tmp_path):
        (tmp_path / "bad.jsonl").write_text('{"schema": 99}\n')
        with pytest.raises(ValueError):
            summarize_dir(str(tmp_path))

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("ops.signatures", 7)
        registry.set_gauge("run.nodes", 41.0)
        registry.observe("run.delay", 90.0, bounds=(60.0, 120.0))
        snapshot = registry.snapshot()
        snapshot["spans"] = {
            "sender_test": {
                "count": 3, "ops": {"signatures": 6},
                "first_time": 0.0, "last_time": 1.0,
            }
        }
        text = to_prometheus(snapshot)
        assert "# TYPE ops_signatures counter" in text
        assert "ops_signatures 7" in text
        assert "run_nodes 41.0" in text
        assert 'run_delay_bucket{le="+Inf"} 1' in text
        assert "span_sender_test_total 3" in text
        assert "span_sender_test_ops_signatures 6" in text

    def test_collector_skips_runs_without_telemetry(self, tmp_path):
        collector = TelemetryCollector()
        collector.add(_FakeResults(_run_snapshot()))
        collector.add(_FakeResults(None))  # e.g. a cache hit
        assert len(collector.records) == 1
        assert collector.skipped == 1
        assert collector.merged()["counters"]["run.count"] == 1
        path = str(tmp_path / "out.jsonl")
        assert collector.write_jsonl(path) == 1
        assert validate_record(read_jsonl(path)[0]) == []
