"""Tests for Diffie-Hellman key agreement."""

import random

import pytest

from repro.crypto.dh import DhError, DhGroup, default_group, generate_group
from repro.crypto.numbers import is_probable_prime


class TestDefaultGroup:
    def test_prime_modulus(self):
        group = default_group()
        assert is_probable_prime(group.p)

    def test_safe_prime(self):
        group = default_group()
        assert is_probable_prime((group.p - 1) // 2)

    def test_bit_length(self):
        assert default_group().p.bit_length() == 512


class TestExchange:
    def test_shared_secret_agrees(self):
        group = default_group()
        rng = random.Random(1)
        a = group.private_exponent(rng)
        b = group.private_exponent(rng)
        key_a = group.shared_secret(a, group.public_value(b))
        key_b = group.shared_secret(b, group.public_value(a))
        assert key_a == key_b

    def test_distinct_exchanges_distinct_keys(self):
        group = default_group()
        rng = random.Random(1)
        keys = set()
        for _ in range(5):
            a = group.private_exponent(rng)
            b = group.private_exponent(rng)
            keys.add(group.shared_secret(a, group.public_value(b)))
        assert len(keys) == 5

    def test_key_is_32_bytes(self):
        group = default_group()
        rng = random.Random(2)
        a = group.private_exponent(rng)
        b = group.private_exponent(rng)
        assert len(group.shared_secret(a, group.public_value(b))) == 32

    @pytest.mark.parametrize("bad", [0, 1])
    def test_degenerate_public_values_rejected(self, bad):
        group = default_group()
        with pytest.raises(DhError):
            group.shared_secret(5, bad)

    def test_p_minus_one_rejected(self):
        group = default_group()
        with pytest.raises(DhError):
            group.shared_secret(5, group.p - 1)

    def test_out_of_range_rejected(self):
        group = default_group()
        with pytest.raises(DhError):
            group.shared_secret(5, group.p + 3)


class TestGroupValidation:
    def test_invalid_generator(self):
        with pytest.raises(DhError):
            DhGroup(p=23, g=1)

    def test_tiny_modulus(self):
        with pytest.raises(DhError):
            DhGroup(p=3, g=2)

    def test_generate_small_group(self):
        group = generate_group(16, random.Random(3))
        assert is_probable_prime(group.p)
        assert is_probable_prime((group.p - 1) // 2)
        # Exchange works in the fresh group too.
        rng = random.Random(4)
        a = group.private_exponent(rng)
        b = group.private_exponent(rng)
        assert group.shared_secret(
            a, group.public_value(b)
        ) == group.shared_secret(b, group.public_value(a))
