"""Tests for the contact-trace data model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import Contact, ContactTrace, make_contact, merge_traces


class TestContact:
    def test_normalized_order(self):
        c = make_contact(5, 2, 0.0, 10.0)
        assert (c.a, c.b) == (2, 5)

    def test_duration(self):
        assert make_contact(0, 1, 5.0, 25.0).duration == 20.0

    def test_self_contact_rejected(self):
        with pytest.raises(ValueError):
            make_contact(3, 3, 0.0, 1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            make_contact(0, 1, 5.0, 5.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_contact(0, 1, 5.0, 4.0)

    def test_other(self):
        c = make_contact(0, 1, 0.0, 1.0)
        assert c.other(0) == 1
        assert c.other(1) == 0

    def test_other_unknown_raises(self):
        with pytest.raises(ValueError):
            make_contact(0, 1, 0.0, 1.0).other(9)

    def test_involves(self):
        c = make_contact(0, 1, 0.0, 1.0)
        assert c.involves(0) and c.involves(1) and not c.involves(2)

    def test_overlaps(self):
        c = make_contact(0, 1, 10.0, 20.0)
        assert c.overlaps(15.0, 30.0)
        assert c.overlaps(0.0, 11.0)
        assert not c.overlaps(20.0, 30.0)  # half-open
        assert not c.overlaps(0.0, 10.0)

    def test_pair(self):
        assert make_contact(4, 2, 0.0, 1.0).pair == frozenset((2, 4))


class TestContactTrace:
    def test_contacts_sorted(self):
        trace = ContactTrace(
            name="t",
            nodes=(0, 1, 2),
            contacts=(
                make_contact(1, 2, 50.0, 60.0),
                make_contact(0, 1, 10.0, 20.0),
            ),
        )
        assert [c.start for c in trace.contacts] == [10.0, 50.0]

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            ContactTrace(
                name="t",
                nodes=(0, 1),
                contacts=(make_contact(0, 5, 0.0, 1.0),),
            )

    def test_times(self, pair_trace):
        assert pair_trace.start_time == 100.0
        assert pair_trace.end_time == 3100.0
        assert pair_trace.duration == 3000.0

    def test_empty_trace_times(self):
        trace = ContactTrace(name="e", nodes=(0, 1), contacts=())
        assert trace.start_time == 0.0
        assert trace.duration == 0.0

    def test_len_and_iter(self, pair_trace):
        assert len(pair_trace) == 3
        assert len(list(pair_trace)) == 3

    def test_contacts_of(self, line_trace):
        assert len(line_trace.contacts_of(1)) == 4
        assert len(line_trace.contacts_of(3)) == 1

    def test_contacts_of_isolated_node(self):
        trace = ContactTrace(
            name="t", nodes=(0, 1, 9), contacts=(make_contact(0, 1, 0.0, 1.0),)
        )
        assert list(trace.contacts_of(9)) == []

    def test_contacts_of_ordering_pinned(self, line_trace):
        # The per-node index must list each node's contacts in exactly
        # the order a scan of the sorted trace would find them —
        # protocols iterate contacts_of() and any reordering would
        # shift RNG draws and break bit-identical replays.
        for node in line_trace.nodes:
            expected = [
                c for c in line_trace.contacts if c.involves(node)
            ]
            assert list(line_trace.contacts_of(node)) == expected

    def test_window_shifts_times(self, pair_trace):
        w = pair_trace.window(500.0, 3500.0)
        assert [c.start for c in w.contacts] == [500.0, 2500.0]

    def test_window_truncates_straddlers(self):
        trace = ContactTrace(
            name="t", nodes=(0, 1), contacts=(make_contact(0, 1, 0.0, 100.0),)
        )
        w = trace.window(50.0, 80.0)
        assert w.contacts[0].start == 0.0
        assert w.contacts[0].end == 30.0

    def test_window_preserves_universe(self, pair_trace):
        w = pair_trace.window(0.0, 50.0)
        assert w.nodes == pair_trace.nodes
        assert len(w) == 0

    def test_empty_window_rejected(self, pair_trace):
        with pytest.raises(ValueError):
            pair_trace.window(100.0, 100.0)

    def test_restricted_to(self, line_trace):
        r = line_trace.restricted_to((0, 1, 2))
        assert r.nodes == (0, 1, 2)
        assert all(c.a in (0, 1, 2) and c.b in (0, 1, 2) for c in r)
        assert len(r) == 4

    def test_merge(self, pair_trace, line_trace):
        merged = merge_traces("m", [pair_trace, line_trace])
        assert merged.num_nodes == 4
        assert len(merged) == len(pair_trace) + len(line_trace)

    def test_nodes_deduplicated_and_sorted(self):
        trace = ContactTrace(name="t", nodes=(3, 1, 3, 2), contacts=())
        assert trace.nodes == (1, 2, 3)


@given(
    start=st.floats(0, 1000),
    length=st.floats(1, 1000),
    wstart=st.floats(0, 2000),
    wlen=st.floats(1, 2000),
)
def test_window_invariants(start, length, wstart, wlen):
    """Windowing never produces out-of-range or inverted contacts."""
    trace = ContactTrace(
        name="t",
        nodes=(0, 1),
        contacts=(make_contact(0, 1, start, start + length),),
    )
    wend = wstart + wlen
    w = trace.window(wstart, wend)
    for c in w.contacts:
        # The window guarantee: all clipped contacts lie in
        # [0, end - start] of the shifted time axis.
        assert 0.0 <= c.start < c.end <= wend - wstart
