"""Tests for Schnorr signatures and the ElGamal KEM provider."""

import random

import pytest

from repro.crypto import Authority
from repro.crypto.schnorr import (
    SchnorrCryptoProvider,
    SchnorrError,
    SchnorrScheme,
)
from repro.crypto.symmetric import AuthenticationError


@pytest.fixture(scope="module")
def scheme():
    return SchnorrScheme()


@pytest.fixture(scope="module")
def keypair(scheme):
    return scheme.generate_keypair(random.Random(5))


class TestGroupStructure:
    def test_generator_has_order_q(self, scheme):
        assert pow(scheme.g, scheme.q, scheme.p) == 1
        assert scheme.g != 1

    def test_public_key_in_subgroup(self, scheme, keypair):
        _, public = keypair
        assert pow(public.y, scheme.q, scheme.p) == 1


class TestSignatures:
    def test_roundtrip(self, scheme, keypair):
        private, public = keypair
        sig = scheme.sign(private, b"message")
        assert scheme.verify(public, b"message", sig)

    def test_wrong_message(self, scheme, keypair):
        private, public = keypair
        sig = scheme.sign(private, b"message")
        assert not scheme.verify(public, b"other", sig)

    def test_wrong_key(self, scheme, keypair):
        private, _ = keypair
        _, other_public = scheme.generate_keypair(random.Random(6))
        sig = scheme.sign(private, b"message")
        assert not scheme.verify(other_public, b"message", sig)

    def test_tampered_signature(self, scheme, keypair):
        private, public = keypair
        sig = bytearray(scheme.sign(private, b"message"))
        sig[0] ^= 1
        assert not scheme.verify(public, b"message", bytes(sig))

    def test_truncated_signature(self, scheme, keypair):
        private, public = keypair
        sig = scheme.sign(private, b"message")
        assert not scheme.verify(public, b"message", sig[:-1])

    def test_deterministic_nonce(self, scheme, keypair):
        private, _ = keypair
        assert scheme.sign(private, b"m") == scheme.sign(private, b"m")

    def test_signature_is_short(self, scheme, keypair):
        """Two subgroup scalars — the size argument of Sec. III."""
        private, _ = keypair
        sig = scheme.sign(private, b"m")
        width = (scheme.q.bit_length() + 7) // 8
        assert len(sig) == 2 * width

    def test_empty_message(self, scheme, keypair):
        private, public = keypair
        assert scheme.verify(public, b"", scheme.sign(private, b""))


class TestKem:
    def test_roundtrip(self, scheme, keypair):
        private, public = keypair
        blob = scheme.encrypt(public, b"top secret" * 20, random.Random(7))
        assert scheme.decrypt(private, blob) == b"top secret" * 20

    def test_randomized(self, scheme, keypair):
        private, public = keypair
        rng = random.Random(7)
        assert scheme.encrypt(public, b"x", rng) != scheme.encrypt(
            public, b"x", rng
        )

    def test_wrong_key_fails(self, scheme, keypair):
        _, public = keypair
        other_private, _ = scheme.generate_keypair(random.Random(8))
        blob = scheme.encrypt(public, b"secret", random.Random(7))
        with pytest.raises(AuthenticationError):
            scheme.decrypt(other_private, blob)

    def test_truncated_rejected(self, scheme, keypair):
        private, _ = keypair
        with pytest.raises(SchnorrError):
            scheme.decrypt(private, b"short")


class TestProviderIntegration:
    def test_authority_over_schnorr(self):
        provider = SchnorrCryptoProvider(random.Random(1))
        authority = Authority(provider)
        a = authority.enroll(1)
        b = authority.enroll(2)
        sig = a.sign(b"hello")
        assert b.verify_peer(a.certificate, b"hello", sig)
        assert not b.verify_peer(a.certificate, b"hellx", sig)
        blob = a.encrypt_for(b.certificate, b"for bob")
        assert b.decrypt(blob) == b"for bob"

    def test_g2g_runs_over_schnorr(self, mini_synthetic):
        from repro.core import G2GEpidemicForwarding
        from repro.sim import Simulation, SimulationConfig

        config = SimulationConfig(
            run_length=1800.0, silent_tail=600.0, mean_interarrival=120.0,
            ttl=600.0, seed=4, heavy_hmac_iterations=2,
        )
        protocol = G2GEpidemicForwarding(
            provider=SchnorrCryptoProvider(random.Random(2))
        )
        results = Simulation(mini_synthetic.trace, protocol, config).run()
        assert results.detections == []
        assert results.generated > 0
