"""Churn regression suite: clean departures, fresh rejoins, determinism.

A departing node must drop its buffered relays without leaving the
TTL-expiry index or the scheduler holding stale state, a rejoining
node must come back with a fresh buffer (and its ``seen`` memory
intact), and a full cambridge06 run under a nontrivial churn schedule
must stay bit-identical across executions.
"""

import pytest

from repro.sim import ChurnEvent, Simulation, SimulationResults
from repro.sim.engine import CHURN_TIMER_TAG
from repro.sim.events import EventQueue, Scheduler
from repro.sim.messages import Message, StoredCopy
from repro.sim.node import NodeState
from repro.experiments.parallel import RunRequest, execute_request
from repro.scenarios import churn_events_for
from tests.test_determinism_seeds import QUICK, results_digest

#: Two leave waves, one of which returns — enough to exercise both
#: transition kinds and the disjoint-cohort sampling.
CHURN = ((0.2, 600.0, 1200.0), (0.1, 900.0, None))


def _stored(msg_id: int, now: float = 0.0, ttl: float = 600.0) -> StoredCopy:
    message = Message(
        msg_id=msg_id, source=98, destination=99,
        created_at=now, ttl=ttl, size_bytes=64,
    )
    return StoredCopy(message=message, received_at=now)


class TestChurnEvents:
    def test_actions_validated(self):
        with pytest.raises(ValueError):
            ChurnEvent(10.0, 1, "nap")

    def test_unknown_churn_node_rejected(self):
        from repro.experiments.setting import evaluation_trace
        from repro.protocols.epidemic import EpidemicForwarding
        from repro.sim.config import config_for

        trace = evaluation_trace("cambridge06")
        with pytest.raises(ValueError):
            Simulation(
                trace,
                EpidemicForwarding(),
                config_for("cambridge06", "epidemic"),
                churn=[ChurnEvent(10.0, 10_000, "leave")],
            )

    def test_expansion_deterministic_and_disjoint(self):
        nodes = tuple(range(30))
        first = churn_events_for(nodes, CHURN, seed=5)
        second = churn_events_for(nodes, CHURN, seed=5)
        assert first == second
        leavers = [e.node for e in first if e.action == "leave"]
        assert len(leavers) == len(set(leavers))  # cohorts are disjoint
        # 20% + 10% of 30 nodes: 6 + 3 leavers, 6 rejoins.
        assert len(leavers) == 9
        assert sum(1 for e in first if e.action == "join") == 6

    def test_expansion_varies_with_seed(self):
        nodes = tuple(range(30))
        one = churn_events_for(nodes, CHURN, seed=1)
        other = churn_events_for(nodes, CHURN, seed=2)
        assert one != other


class TestDepartRejoin:
    def test_depart_drops_buffer_and_ttl_state(self):
        results = SimulationResults()
        scheduler = Scheduler(EventQueue(), horizon=3600.0)
        node = NodeState(node_id=1)
        node.attach_scheduler(scheduler)
        node.store(_stored(1), 0.0, results)
        node.store(_stored(2), 0.0, results)
        assert node._relayable and len(node._expiry_times) == 2
        node.depart(100.0, results)
        assert node.departed and not node.participating
        assert node.buffer == {}
        assert node._relayable == {}
        # The TTL-expiry index (the sorted array that replaced the
        # per-copy scheduler timers) must clear with the buffer.
        assert len(node._expiry_times) == 0 and node._expiry_ids == []
        # The node registers nothing on the scheduler, so a later
        # drain has nothing to corrupt.
        scheduler.dispatch_until(1200.0)
        assert node.buffer == {} and node._relayable == {}

    def test_depart_is_idempotent_and_keeps_seen(self):
        results = SimulationResults()
        node = NodeState(node_id=1)
        node.store(_stored(7), 0.0, results)
        node.depart(10.0, results)
        node.depart(20.0, results)
        assert node.departed
        assert node.has_seen(7)  # memory of handled messages survives

    def test_rejoin_restores_participation_with_fresh_buffer(self):
        results = SimulationResults()
        node = NodeState(node_id=1)
        node.store(_stored(3), 0.0, results)
        node.depart(10.0, results)
        node.rejoin(50.0)
        assert node.participating and not node.departed
        assert node.buffer == {}  # fresh buffer, nothing resurrected
        assert node.has_seen(3)

    def test_engine_applies_churn_timers(self):
        from repro.experiments.setting import evaluation_trace
        from repro.protocols.epidemic import EpidemicForwarding
        from repro.sim.config import config_for

        trace = evaluation_trace("cambridge06")
        victim = trace.nodes[0]
        config = config_for("cambridge06", "epidemic", **dict(QUICK))
        sim = Simulation(
            trace,
            EpidemicForwarding(),
            config,
            churn=[
                ChurnEvent(300.0, victim, "leave"),
                ChurnEvent(900.0, victim, "join"),
            ],
        )
        sim.run()  # must complete; stale timer state would blow up here
        assert CHURN_TIMER_TAG == "sim.churn"


class TestChurnRunDeterminism:
    def _request(self, seed: int = 1) -> RunRequest:
        return RunRequest(
            trace_name="cambridge06",
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=seed,
            overrides=QUICK,
            mix=(("dropper", 0.2),),
            churn=CHURN,
        )

    def test_double_run_digest_equality(self):
        request = self._request()
        assert results_digest(execute_request(request)) == results_digest(
            execute_request(request)
        )

    def test_churn_changes_the_run(self):
        churned = results_digest(execute_request(self._request()))
        calm = results_digest(
            execute_request(
                RunRequest(
                    trace_name="cambridge06",
                    family="epidemic",
                    protocol_name="g2g_epidemic",
                    seed=1,
                    overrides=QUICK,
                    mix=(("dropper", 0.2),),
                )
            )
        )
        assert churned != calm

    def test_churn_requests_have_distinct_cache_keys(self):
        assert self._request().cache_key() != RunRequest(
            trace_name="cambridge06",
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=1,
            overrides=QUICK,
            mix=(("dropper", 0.2),),
        ).cache_key()
