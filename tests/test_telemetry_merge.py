"""Cross-worker telemetry merge determinism.

The tentpole guarantee of the telemetry subsystem: a grid point's
merged telemetry totals are identical whether its runs executed
sequentially (``workers=1``) or across a process pool — and the
simulation results themselves stay bit-identical too.
"""

import pytest

from repro.experiments.catalog import protocol
from repro.experiments.parallel import ExecutionOptions
from repro.experiments.runner import run_point
from repro.experiments.setting import ReplicationPlan
from repro.sim.serialize import results_to_dict

#: Shortened window (long enough for Δ1 sender tests and PoMs to
#: fire) so the 3x4-run matrix stays test-suite fast.
TINY = {"run_length": 4500.0, "silent_tail": 1800.0}

SEEDS = (1, 2, 3, 4)


def _point(workers):
    family, factory = protocol("g2g_epidemic")
    return run_point(
        "cambridge06",
        family,
        factory,
        deviation="dropper",
        deviation_count=5,
        plan=ReplicationPlan(seeds=SEEDS),
        config_overrides=dict(TINY),
        options=ExecutionOptions(workers=workers),
        protocol_name="g2g_epidemic",
    )


@pytest.fixture(scope="module")
def sequential_point():
    return _point(1)


class TestCrossWorkerMerge:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_merge_equals_sequential(self, sequential_point, workers):
        parallel_point = _point(workers)
        assert sequential_point.telemetry is not None
        assert parallel_point.telemetry == sequential_point.telemetry
        # The underlying results stay bit-identical as well.
        for seq_run, par_run in zip(
            sequential_point.runs, parallel_point.runs
        ):
            assert results_to_dict(par_run) == results_to_dict(seq_run)

    def test_merged_totals_cover_every_run(self, sequential_point):
        telemetry = sequential_point.telemetry
        counters = telemetry["counters"]
        assert counters["run.count"] == len(SEEDS)
        assert counters["run.generated"] == sum(
            run.generated for run in sequential_point.runs
        )
        assert counters["run.delivered"] == sum(
            run.delivered for run in sequential_point.runs
        )
        assert counters["ops.signatures"] > 0
        # Delivery-delay histogram folds one observation per delivery.
        hist = telemetry["histograms"]["run.delivery_delay_seconds"]
        assert hist["count"] == counters["run.delivered"]

    def test_spans_cover_protocol_phases(self, sequential_point):
        spans = sequential_point.telemetry["spans"]
        assert spans["relay_handshake"]["count"] > 0
        assert spans["sender_test"]["count"] > 0
        assert spans["pom_eviction"]["count"] > 0
        handshake = spans["relay_handshake"]
        assert handshake["first_time"] <= handshake["last_time"]

    def test_results_digest_unaffected_by_telemetry(self, sequential_point):
        # The telemetry sidecar must never leak into the serialized
        # (digest-bearing) result form.
        for run in sequential_point.runs:
            assert "telemetry" not in results_to_dict(run)
