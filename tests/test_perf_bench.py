"""Smoke tests for the perf harness (`repro.perf.bench` + `repro perf`)."""

from __future__ import annotations

import json

from repro.cli import build_parser
from repro.perf import bench


class TestMicrobenchmarks:
    def test_encoding(self):
        out = bench.microbench_encoding(number=50)
        assert out["encode_cold_ns"] > 0
        assert out["encode_cached_ns"] > 0
        # The whole point of the memo: a cached read must beat a fresh
        # construct-and-encode by a wide margin.
        assert out["encode_cached_ns"] < out["encode_cold_ns"]

    def test_hmac(self):
        out = bench.microbench_hmac(number=50)
        assert out["hmac_oneshot_ns"] > 0
        assert out["hmac_prepared_ns"] > 0

    def test_buffer_scan_equivalence(self):
        # microbench_buffer_scan asserts internally that the indexed
        # scan returns exactly what the naive full-buffer filter does.
        out = bench.microbench_buffer_scan(buffer_size=16, number=20)
        assert out["scan_naive_ns"] > 0
        assert out["scan_indexed_ns"] > 0

    def test_batch_verify(self):
        # microbench_batch_verify asserts internally that both paths
        # accept the whole batch.
        out = bench.microbench_batch_verify(batch=8, number=20)
        assert out["verify_loop_ns"] > 0
        assert out["verify_batched_ns"] > 0

    def test_expiry_index(self):
        out = bench.microbench_expiry_index(size=16, number=50)
        assert out["expiry_dict_scan_ns"] > 0
        assert out["expiry_array_probe_ns"] > 0
        # The point of the sorted-array sidecar: the steady-state
        # probe must not scale with the buffer, the dict scan does.
        assert out["expiry_array_probe_ns"] < out["expiry_dict_scan_ns"]


class TestHotpathBenchmark:
    def test_single_run_smoke(self):
        report = bench.hotpath_benchmark(
            repeats=1, trace_name="infocom05", profile=False
        )
        assert report["spec"]["trace"] == "infocom05"
        assert len(report["wall_seconds_all"]) == 1
        assert report["wall_seconds_best"] > 0
        assert report["metrics"]["success_rate"] > 0
        assert report["counters"]["relay_entries"] > 0
        assert "profiled_seconds" not in report

    def test_write_report_reproduces_baseline_metrics(self, tmp_path):
        path = tmp_path / "BENCH_hotpath.json"
        report = bench.write_report(str(path), repeats=1, profile=False)
        on_disk = json.loads(path.read_text())
        assert on_disk["optimized"]["spec"] == report["optimized"]["spec"]
        assert on_disk["speedup_wall"] > 0
        # The acceptance gate of the overhaul: the optimized benchmark
        # run must reproduce the pre-overhaul metrics bit-for-bit.
        assert on_disk["optimized"]["metrics"] == bench.BASELINE["metrics"]
        assert (
            on_disk["optimized"]["metrics"]
            == bench.SAME_MACHINE_BASELINE["metrics"]
        )
        assert on_disk["speedup_wall_same_machine"] > 0
        assert set(on_disk["microbenchmarks"]) == {
            "encoding", "hmac", "buffer_scan", "batch_verify",
            "expiry_index",
        }
        # The tiers block: interpreted tiers measured and digest-equal,
        # the real tier deliberately skipped, the build labelled.
        tiers = on_disk["tiers"]
        assert tiers["identical_results"] is True
        assert tiers["simulated"]["metrics"] == tiers["accounting"]["metrics"]
        assert tiers["real"]["status"] == "skipped"
        assert tiers["compiled"]["status"] in ("compiled", "pure-python")


class TestCli:
    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.command == "perf"
        assert args.out == "BENCH_hotpath.json"
        assert args.repeats == 5
        assert not args.no_profile
        assert args.provider is None

    def test_perf_flags(self):
        args = build_parser().parse_args(
            ["perf", "--out", "x.json", "--repeats", "2", "--no-profile",
             "--provider", "accounting"]
        )
        assert args.out == "x.json"
        assert args.repeats == 2
        assert args.no_profile
        assert args.provider == "accounting"
