"""Shared fixtures: small deterministic traces, providers, configs."""

from __future__ import annotations

import random

import pytest

from repro.crypto import Authority, SimulatedCryptoProvider
from repro.sim import SimulationConfig
from repro.traces import ContactTrace, make_contact
from repro.traces.synthetic import CommunityModelConfig, generate


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return random.Random(42)


@pytest.fixture
def provider(rng):
    """Fast simulated crypto provider."""
    return SimulatedCryptoProvider(rng)


@pytest.fixture
def authority(provider):
    """A trusted authority over the simulated provider."""
    return Authority(provider)


@pytest.fixture
def pair_trace():
    """Two nodes meeting three times over an hour."""
    return ContactTrace(
        name="pair",
        nodes=(0, 1),
        contacts=(
            make_contact(0, 1, 100.0, 200.0),
            make_contact(0, 1, 1000.0, 1100.0),
            make_contact(0, 1, 3000.0, 3100.0),
        ),
    )


@pytest.fixture
def line_trace():
    """A 4-node line: 0-1, then 1-2, then 2-3 (message can hop along)."""
    return ContactTrace(
        name="line",
        nodes=(0, 1, 2, 3),
        contacts=(
            make_contact(0, 1, 100.0, 200.0),
            make_contact(1, 2, 400.0, 500.0),
            make_contact(2, 3, 800.0, 900.0),
            # a return path so tests can exercise re-encounters
            make_contact(0, 1, 1500.0, 1600.0),
            make_contact(1, 2, 1900.0, 2000.0),
        ),
    )


@pytest.fixture
def star_trace():
    """Node 0 meets 1..4 in sequence, twice each."""
    contacts = []
    t = 100.0
    for round_ in range(2):
        for peer in (1, 2, 3, 4):
            contacts.append(make_contact(0, peer, t, t + 50.0))
            t += 200.0
    return ContactTrace(name="star", nodes=(0, 1, 2, 3, 4), contacts=tuple(contacts))


@pytest.fixture
def mini_synthetic():
    """A small but busy synthetic trace (10 nodes, 2 communities, 2 h)."""
    config = CommunityModelConfig(
        name="mini",
        community_sizes=(5, 5),
        duration=2 * 3600.0,
        base_rate=1.0 / 600.0,
        inter_factor=0.08,
        traveler_fraction=0.2,
        sociability_sigma=0.2,
        mean_contact_duration=60.0,
        min_contact_duration=10.0,
    )
    return generate(config, seed=7)


@pytest.fixture
def quick_config():
    """A short, light simulation configuration for protocol tests."""
    return SimulationConfig(
        run_length=2 * 3600.0,
        silent_tail=1800.0,
        mean_interarrival=60.0,
        ttl=1200.0,
        seed=5,
        heavy_hmac_iterations=4,
    )
