"""End-to-end tests of the simulation engine with simple protocols."""

import pytest

from repro.protocols import EpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace, make_contact


def direct_config(**overrides):
    base = dict(
        run_length=4000.0,
        silent_tail=1000.0,
        mean_interarrival=100.0,
        ttl=2000.0,
        seed=2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestEngineBasics:
    def test_needs_two_nodes(self):
        trace = ContactTrace(name="one", nodes=(0,), contacts=())
        with pytest.raises(ValueError):
            Simulation(trace, EpidemicForwarding(), direct_config())

    def test_no_contacts_no_delivery(self):
        trace = ContactTrace(name="none", nodes=(0, 1), contacts=())
        results = Simulation(
            trace, EpidemicForwarding(), direct_config()
        ).run()
        assert results.generated > 0
        assert results.delivered == 0

    def test_results_metadata(self, pair_trace):
        results = Simulation(
            pair_trace, EpidemicForwarding(), direct_config(seed=9)
        ).run()
        assert results.protocol == "epidemic"
        assert results.trace == "pair"
        assert results.seed == 9

    def test_deterministic(self, line_trace):
        r1 = Simulation(line_trace, EpidemicForwarding(), direct_config()).run()
        r2 = Simulation(line_trace, EpidemicForwarding(), direct_config()).run()
        assert r1.summary() == r2.summary()

    def test_contacts_beyond_horizon_ignored(self):
        trace = ContactTrace(
            name="late",
            nodes=(0, 1),
            contacts=(make_contact(0, 1, 9000.0, 9100.0),),
        )
        results = Simulation(
            trace, EpidemicForwarding(), direct_config()
        ).run()
        assert results.delivered == 0

    def test_messages_respect_deadline(self, pair_trace):
        results = Simulation(
            pair_trace, EpidemicForwarding(), direct_config()
        ).run()
        deadline = direct_config().generation_deadline
        assert all(
            r.message.created_at < deadline
            for r in results.messages.values()
        )


class TestEpidemicOnHandTraces:
    def test_pair_delivery(self, pair_trace):
        # With a contact at 100-200 and messages all hours long TTL,
        # anything generated before the last contact gets delivered if
        # endpoints are 0 and 1 (only two nodes: src/dst always 0/1).
        results = Simulation(
            pair_trace, EpidemicForwarding(), direct_config()
        ).run()
        delivered = [r for r in results.messages.values() if r.delivered]
        assert delivered
        # messages generated after the last contact cannot be delivered
        for record in results.messages.values():
            if record.message.created_at > 3100.0:
                assert not record.delivered

    def test_line_multi_hop(self, line_trace):
        # A message from 0 to 3 must hop 0->1 (t=100), 1->2 (t=400),
        # 2->3 (t=800).
        config = direct_config(mean_interarrival=10_000.0)

        protocol = EpidemicForwarding()
        sim = Simulation(line_trace, protocol, config)
        # Inject a deterministic message by running with no traffic and
        # generating by hand through the protocol hooks:
        ctx = sim._build_context()
        protocol.bind(ctx)
        message = Message(
            msg_id=0, source=0, destination=3, created_at=50.0, ttl=2000.0
        )
        ctx.results.record_generated(message)
        protocol.on_message_generated(message, 50.0)
        for contact in line_trace.contacts:
            ctx.active_contacts.add(frozenset((contact.a, contact.b)))
            protocol.on_contact_start(contact.a, contact.b, contact.start)
            ctx.active_contacts.discard(frozenset((contact.a, contact.b)))
        assert ctx.results.delivered == 1
        assert ctx.results.messages[0].delivered_at == 800.0
        # replicas: 0->1, 1->2, 2->3
        assert ctx.results.messages[0].replicas == 3

    def test_ttl_blocks_late_hops(self, line_trace):
        protocol = EpidemicForwarding()
        config = direct_config(mean_interarrival=10_000.0, ttl=500.0)
        sim = Simulation(line_trace, protocol, config)
        ctx = sim._build_context()
        protocol.bind(ctx)
        message = Message(
            msg_id=0, source=0, destination=3, created_at=50.0, ttl=500.0
        )
        ctx.results.record_generated(message)
        protocol.on_message_generated(message, 50.0)
        for contact in line_trace.contacts:
            protocol.on_contact_start(contact.a, contact.b, contact.start)
        # expires at 550: hop 1->2 at 400 happens, 2->3 at 800 does not.
        assert ctx.results.delivered == 0
        assert ctx.results.messages[0].replicas == 2
