"""Structural tests of the figure modules with a stubbed runner.

The benchmarks run the real sweeps; these tests verify the harness
*structure* cheaply — which grid points each figure visits, how series
are labelled, and how results are assembled — by monkeypatching
``run_point``.
"""

import pytest

from repro.experiments import fig3, fig4, fig5, fig7, fig8, table1
from repro.experiments.runner import PointResult, ReplicationPlan


def fake_point(**overrides):
    base = dict(
        success_rate=0.5,
        mean_delay=600.0,
        cost=10.0,
        memory_byte_seconds=1e6,
        detection_rate=0.9,
        detection_delay=900.0,
        detection_delay_after_ttl=450.0,
        false_positives=0,
        runs=[],
    )
    base.update(overrides)
    return PointResult(**base)


@pytest.fixture
def calls(monkeypatch):
    """Stub run_point/run_series in every figure module; record calls.

    The recorded shape is one entry per grid point, whether the module
    runs points one at a time or as a batched series.
    """
    recorded = []

    def record(trace_name, family, deviation, count):
        recorded.append(
            dict(
                trace=trace_name,
                family=family,
                deviation=deviation,
                count=count,
            )
        )

    def stub_point(trace_name, family, factory, deviation=None,
                   deviation_count=0, plan=None, config_overrides=None,
                   options=None, protocol_name=None):
        record(trace_name, family, deviation, deviation_count)
        return fake_point()

    def stub_series(trace_name, family, factory, counts, deviation,
                    plan=None, config_overrides=None, options=None,
                    protocol_name=None):
        out = []
        for count in counts:
            record(trace_name, family, deviation if count else None, count)
            out.append((count, fake_point()))
        return out

    for module in (fig8, table1):
        monkeypatch.setattr(module, "run_point", stub_point)
    for module in (fig3, fig4, fig5, fig7):
        monkeypatch.setattr(module, "run_series", stub_series)
    return recorded


PLAN = ReplicationPlan(seeds=(1,))


class TestFig3Structure:
    def test_series_and_grid(self, calls):
        figures = fig3.run(quick=True, plan=PLAN)
        assert set(figures) == {"infocom05", "cambridge06"}
        figure = figures["infocom05"]
        assert [s.label for s in figure.series] == [
            "Droppers",
            "Droppers with outsiders",
        ]
        # zero-dropper points run with deviation=None
        zero_calls = [c for c in calls if c["count"] == 0]
        assert all(c["deviation"] is None for c in zero_calls)

    def test_family_is_epidemic(self, calls):
        fig3.run(quick=True, plan=PLAN)
        assert all(c["family"] == "epidemic" for c in calls)


class TestFig4Structure:
    def test_skips_zero_count(self, calls):
        out = fig4.run(quick=True, plan=PLAN)
        assert all(c["count"] > 0 for c in calls)
        detection = out["infocom05"]
        assert set(detection.detection_rates) == {
            "Droppers",
            "Droppers with outsiders",
        }
        assert detection.detection_rates["Droppers"] == pytest.approx(0.9)

    def test_detection_time_converted_to_minutes(self, calls):
        out = fig4.run(quick=True, plan=PLAN)
        series = out["infocom05"].figure.series[0]
        assert all(y == pytest.approx(450.0 / 60) for y in series.ys)


class TestFig5Structure:
    def test_four_panels(self, calls):
        figures = fig5.run(quick=True, plan=PLAN)
        assert set(figures) == {
            ("droppers", "infocom05"),
            ("droppers", "cambridge06"),
            ("liars", "infocom05"),
            ("liars", "cambridge06"),
        }

    def test_delegation_family(self, calls):
        fig5.run(quick=True, plan=PLAN)
        assert all(c["family"] == "delegation" for c in calls)


class TestFig7Structure:
    def test_quick_mode_trims_kinds(self, calls):
        figures = fig7.run(quick=True, plan=PLAN)
        labels = [s.label for s in figures["infocom05"].series]
        assert labels == ["Droppers", "Liars", "Cheaters"]

    def test_full_mode_has_six_kinds(self, calls):
        figures = fig7.run(quick=False, plan=PLAN)
        assert len(figures["infocom05"].series) == 6


class TestFig8Structure:
    def test_all_protocols_measured(self, calls):
        panels = fig8.run(quick=True, plan=PLAN)
        for panel in panels.values():
            assert len(panel.points) == 6

    def test_cost_reduction_computation(self, calls):
        panels = fig8.run(quick=True, plan=PLAN)
        panel = panels["infocom05"]
        # stub gives equal costs -> zero reduction
        assert panel.cost_reduction("epidemic", "g2g_epidemic") == 0.0

    def test_render_contains_labels(self, calls):
        panels = fig8.run(quick=True, plan=PLAN)
        text = panels["infocom05"].render()
        assert "G2G Epidemic" in text
        assert "cost reduction" in text


class TestTable1Structure:
    def test_all_cells_present(self, calls):
        table = table1.run(quick=True, plan=PLAN)
        assert len(table.cells) == 12  # 6 kinds x 2 traces
        cell = table.cells[("dropper", "infocom05")]
        assert cell.paper_rate == 0.88
        assert cell.detection_rate == pytest.approx(0.9)

    def test_render(self, calls):
        table = table1.run(quick=True, plan=PLAN)
        text = table.render()
        assert "Cheaters with outsiders" in text
        assert "(p " in text  # paper references inline
