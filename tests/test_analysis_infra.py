"""Tests for the lint production infrastructure.

Covers the report renderers (text/JSON/SARIF 2.1.0), baseline
accept/suppress/update flow, the content-hash incremental cache (the
ISSUE's ≥5x warm-speedup bar is asserted here, not just in CI), the
multiprocess fan-out, and the CLI wiring for all of it.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import lint_tree
from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import LintCache, file_sha256, rules_fingerprint
from repro.analysis.framework import Violation
from repro.analysis.output import render, render_json, render_sarif
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

V1 = Violation("G2G001", "src/repro/sim/x.py", 3, 5, "global RNG call")
V2 = Violation("G2G012", "src/repro/sim/y.py", 9, 1, "raw event-time math")


def make_tree(tmp_path, n=6, flagged=True):
    """A small lintable repro/ tree; one file optionally violating."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    for i in range(n):
        (pkg / f"mod{i}.py").write_text(f"def f{i}():\n    return {i}\n")
    if flagged:
        (pkg / "bad.py").write_text(
            "import random\n\ndef f():\n    return random.random()\n"
        )
    return tmp_path


class TestOutput:
    def test_json_document_shape(self):
        doc = json.loads(render_json([V1, V2]))
        assert doc["total"] == 2
        assert doc["counts"] == {"G2G001": 1, "G2G012": 1}
        assert doc["violations"][0]["path"] == "src/repro/sim/x.py"
        assert doc["violations"][0]["line"] == 3

    def test_sarif_is_valid_2_1_0(self):
        log = json.loads(render_sarif([V1, V2]))
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == {"G2G001", "G2G012"}
        assert len(run["results"]) == 2
        result = run["results"][0]
        assert result["ruleId"] == "G2G001"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/sim/x.py"
        assert loc["region"] == {"startLine": 3, "startColumn": 5}
        # ruleIndex must point at the matching driver rule entry.
        idx = result["ruleIndex"]
        assert run["tool"]["driver"]["rules"][idx]["id"] == "G2G001"

    def test_sarif_empty_run(self):
        log = json.loads(render_sarif([]))
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []

    def test_render_dispatch_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown format"):
            render([], "yaml")


class TestBaseline:
    def test_fingerprint_ignores_line_numbers(self):
        moved = Violation(V1.rule_id, V1.path, V1.line + 40, 1, V1.message)
        assert fingerprint(V1) == fingerprint(moved)
        other = Violation(V1.rule_id, V1.path, V1.line, V1.column, "changed")
        assert fingerprint(V1) != fingerprint(other)

    def test_roundtrip_and_counted_suppression(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [V1, V1, V2])
        baseline = load_baseline(path)
        # Two admitted occurrences of V1: a third still surfaces.
        fresh, suppressed = apply_baseline([V1, V1, V1, V2], baseline)
        assert suppressed == 3
        assert fresh == [V1]

    def test_missing_baseline_admits_nothing(self, tmp_path):
        fresh, suppressed = apply_baseline(
            [V1], load_baseline(tmp_path / "absent.json")
        )
        assert (fresh, suppressed) == ([V1], 0)

    def test_checked_in_baseline_is_empty(self):
        # The shipped tree lints clean, so the committed baseline must
        # admit nothing — new findings fail CI rather than hide.
        assert load_baseline(REPO_ROOT / ".g2g-baseline.json") == {}


class TestCache:
    def test_warm_run_parses_nothing_and_matches(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_dir = tmp_path / "cache"
        cold = lint_tree([tree], project=True, cache_dir=cache_dir)
        warm = lint_tree([tree], project=True, cache_dir=cache_dir)
        assert cold.stats["parsed"] == cold.stats["files"]
        assert warm.stats["parsed"] == 0
        assert warm.stats["cached"] == warm.stats["files"]
        assert warm.violations == cold.violations

    def test_edited_file_invalidated_in_place(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_dir = tmp_path / "cache"
        lint_tree([tree], cache_dir=cache_dir)
        target = tree / "repro" / "sim" / "mod0.py"
        target.write_text("def f0():\n    return 100\n")
        run = lint_tree([tree], cache_dir=cache_dir)
        assert run.stats["parsed"] == 1
        assert run.stats["cached"] == run.stats["files"] - 1

    def test_rules_fingerprint_invalidates_store(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_dir = tmp_path / "cache"
        lint_tree([tree], cache_dir=cache_dir)
        store = cache_dir / "lint-cache.json"
        doc = json.loads(store.read_text())
        doc["rules"] = "0" * 64
        store.write_text(json.dumps(doc))
        run = lint_tree([tree], cache_dir=cache_dir)
        assert run.stats["parsed"] == run.stats["files"]

    def test_corrupt_store_discarded(self, tmp_path):
        tree = make_tree(tmp_path / "t")
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "lint-cache.json").write_text("{not json")
        run = lint_tree([tree], cache_dir=cache_dir)
        assert run.stats["parsed"] == run.stats["files"]

    def test_syntax_error_is_cached_too(self, tmp_path):
        tree = tmp_path / "t"
        (tree / "repro").mkdir(parents=True)
        (tree / "repro" / "broken.py").write_text("def f(:\n")
        cache_dir = tmp_path / "cache"
        cold = lint_tree([tree], cache_dir=cache_dir)
        warm = lint_tree([tree], cache_dir=cache_dir)
        assert [v.rule_id for v in cold.violations] == ["E999"]
        assert warm.violations == cold.violations
        assert warm.stats["parsed"] == 0

    def test_fingerprint_covers_analysis_sources(self):
        fp = rules_fingerprint()
        assert len(fp) == 64
        assert fp == rules_fingerprint()

    def test_file_sha256_tracks_content(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("x = 1\n")
        first = file_sha256(f)
        f.write_text("x = 2\n")
        assert file_sha256(f) != first

    def test_warm_full_tree_is_5x_faster_than_cold(self, tmp_path):
        # The ISSUE acceptance bar: a cache-warm re-lint of the
        # unchanged shipped tree is at least 5x faster than the cold
        # run (measured here over src/, project rules included).
        cache_dir = tmp_path / "cache"
        t0 = time.perf_counter()
        cold = lint_tree([SRC], project=True, cache_dir=cache_dir)
        t1 = time.perf_counter()
        warm = lint_tree([SRC], project=True, cache_dir=cache_dir)
        t2 = time.perf_counter()
        assert warm.stats["parsed"] == 0
        assert warm.violations == cold.violations
        cold_s, warm_s = t1 - t0, t2 - t1
        assert cold_s >= 5 * warm_s, (
            f"warm lint not >=5x faster: cold={cold_s:.3f}s"
            f" warm={warm_s:.3f}s"
        )


class TestParallel:
    def test_jobs_equivalent_to_sequential(self, tmp_path):
        tree = make_tree(tmp_path / "t", n=8)
        seq = lint_tree([tree], project=True)
        par = lint_tree([tree], project=True, jobs=2)
        assert par.violations == seq.violations
        assert par.stats["files"] == seq.stats["files"]

    def test_jobs_fill_the_cache(self, tmp_path):
        tree = make_tree(tmp_path / "t", n=8)
        cache_dir = tmp_path / "cache"
        lint_tree([tree], jobs=2, cache_dir=cache_dir)
        warm = lint_tree([tree], cache_dir=cache_dir)
        assert warm.stats["parsed"] == 0


class TestCli:
    def test_project_flag_shipped_tree(self, capsys):
        assert main(["lint", str(SRC), "--project"]) == 0
        assert "no G2G violations" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        tree = make_tree(tmp_path / "t")
        assert main(["lint", str(tree), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"G2G001": 1}

    def test_sarif_format_to_file(self, tmp_path, capsys):
        tree = make_tree(tmp_path / "t")
        out = tmp_path / "lint.sarif"
        assert (
            main([
                "lint", str(tree), "--format", "sarif",
                "--output", str(out),
            ])
            == 1
        )
        assert f"wrote {out}" in capsys.readouterr().out
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "G2G001"

    def test_baseline_flow(self, tmp_path, capsys):
        tree = make_tree(tmp_path / "t")
        baseline = tmp_path / "baseline.json"
        # Record the finding, then re-lint against the baseline: clean.
        assert (
            main([
                "lint", str(tree), "--baseline", str(baseline),
                "--update-baseline",
            ])
            == 0
        )
        assert "recorded 1 findings" in capsys.readouterr().out
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "no G2G violations" in out
        assert "1 baselined findings suppressed" in out
        # A new finding still fails.
        (tree / "repro" / "sim" / "new_bad.py").write_text(
            "import random\n\ndef g():\n    return random.choice([1])\n"
        )
        assert main(["lint", str(tree), "--baseline", str(baseline)]) == 1

    def test_update_baseline_requires_baseline(self, tmp_path):
        tree = make_tree(tmp_path / "t", flagged=False)
        with pytest.raises(SystemExit, match="requires --baseline"):
            main(["lint", str(tree), "--update-baseline"])

    def test_stats_line(self, tmp_path, capsys):
        tree = make_tree(tmp_path / "t", flagged=False)
        cache_dir = tmp_path / "cache"
        main(["lint", str(tree), "--cache-dir", str(cache_dir), "--stats"])
        assert "lint stats:" in capsys.readouterr().out
        main(["lint", str(tree), "--cache-dir", str(cache_dir), "--stats"])
        assert "parsed=0" in capsys.readouterr().out

    def test_jobs_flag(self, tmp_path, capsys):
        tree = make_tree(tmp_path / "t")
        assert main(["lint", str(tree), "--jobs", "2"]) == 1
        assert "1 x G2G001" in capsys.readouterr().out

    def test_select_project_rule(self, capsys):
        bad = (
            REPO_ROOT / "tests" / "fixtures" / "project" / "g2g012_bad"
        )
        assert (
            main([
                "lint", str(bad), "--project", "--select", "G2G012",
            ])
            == 1
        )
        assert "2 x G2G012" in capsys.readouterr().out

    def test_list_rules_includes_project_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "G2G008" in out and "[--project]" in out
