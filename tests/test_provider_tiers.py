"""Conformance suite for the crypto provider tiers.

The contract: the provider tier changes *wall-clock*, never *results*.
Real (from-scratch RSA), simulated (HMAC-backed registry), and
accounting (token signatures, zero hashing) must produce bit-identical
:class:`SimulationResults` — same success rate, cost, energy ledger,
detections, evictions — on the golden specs.  G2G's equilibrium
argument depends on what is verified, not on how the verification is
computed, so any digest divergence here means a tier leaked into the
simulation's observable behavior.

The real tier runs with small (384-bit) keys and its own seeded RNG to
stay test-sized; that is itself part of the contract under test —
results must be insensitive to how much randomness the crypto layer
consumes, because the provider draws from a stream the simulation
never reads for protocol decisions.
"""

import random

import pytest

from repro import api
from repro.core import G2GEpidemicForwarding
from repro.crypto import (
    AccountingCryptoProvider,
    PROVIDER_TIERS,
    RealCryptoProvider,
    TIER_NAMES,
    make_provider,
)
from repro.perf.compiled import compiled_modules
from tests.test_determinism_seeds import QUICK, results_digest

#: Golden specs: both evaluation traces, shortened (QUICK) so the
#: cross-tier matrix stays test-sized while exercising generation,
#: relay, proofs, detection, and Δ2 purges.
GOLDEN_SPECS = ("cambridge06", "infocom05")


def run_tier(trace_name, provider, *, seed=1, **kwargs):
    return api.run(
        trace_name,
        G2GEpidemicForwarding(provider=provider),
        dict(QUICK),
        seed=seed,
        **kwargs,
    )


def metrics_of(results):
    return (
        round(results.success_rate, 9),
        round(results.cost, 9),
        round(results.total_energy, 9),
        sorted((d.offender, d.msg_id, d.deviation) for d in results.detections),
    )


class TestTierRegistry:
    def test_tier_names_cover_the_registry(self):
        assert set(TIER_NAMES) == set(PROVIDER_TIERS)
        assert TIER_NAMES == ("real", "simulated", "accounting")

    def test_make_provider_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown crypto provider tier"):
            make_provider("quantum")

    def test_make_provider_builds_each_tier(self):
        for name in ("simulated", "accounting"):
            provider = make_provider(name, random.Random(1))
            private_key, public_key = provider.generate_keypair()
            payload = b"tier-check"
            assert provider.verify(
                public_key, payload, provider.sign(private_key, payload)
            )


class TestGoldenSpecConformance:
    @pytest.mark.parametrize("trace_name", GOLDEN_SPECS)
    def test_accounting_matches_simulated(self, trace_name):
        simulated = run_tier(trace_name, "simulated")
        accounting = run_tier(trace_name, "accounting")
        assert metrics_of(simulated) == metrics_of(accounting)
        assert results_digest(simulated) == results_digest(accounting)

    @pytest.mark.parametrize("trace_name", GOLDEN_SPECS)
    def test_real_matches_simulated(self, trace_name):
        # A provider instance with its own RNG: the run must not care
        # how much (or whether) the crypto layer draws randomness.
        real = run_tier(
            trace_name,
            RealCryptoProvider(key_bits=384, rng=random.Random(99)),
        )
        simulated = run_tier(trace_name, "simulated")
        assert metrics_of(real) == metrics_of(simulated)
        assert results_digest(real) == results_digest(simulated)

    def test_adversarial_detections_match_across_tiers(self):
        kwargs = dict(mix={"dropper": 0.2})
        simulated = run_tier("cambridge06", "simulated", **kwargs)
        accounting = run_tier("cambridge06", "accounting", **kwargs)
        assert simulated.detections  # the spec must actually convict
        assert metrics_of(simulated) == metrics_of(accounting)
        assert simulated.evicted_at == accounting.evicted_at
        assert results_digest(simulated) == results_digest(accounting)


class TestScenarioParityAcrossTiers:
    def test_depleted_energy_behavior_matches(self):
        # A budget small enough that nodes deplete mid-run: depletion
        # ordering depends on the energy ledger, which the accounting
        # tier must charge identically despite doing no real crypto.
        kwargs = dict(energy_budgets=("constant", 40.0))
        simulated = run_tier("cambridge06", "simulated", **kwargs)
        accounting = run_tier("cambridge06", "accounting", **kwargs)
        assert metrics_of(simulated) == metrics_of(accounting)
        assert results_digest(simulated) == results_digest(accounting)

    def test_eviction_behavior_matches_with_churn(self):
        kwargs = dict(
            mix={"dropper": 0.2},
            churn=[(0.2, 600.0, 1200.0)],
        )
        simulated = run_tier("cambridge06", "simulated", **kwargs)
        accounting = run_tier("cambridge06", "accounting", **kwargs)
        assert simulated.evicted_at == accounting.evicted_at
        assert results_digest(simulated) == results_digest(accounting)


class TestSelectionSurfaces:
    def test_api_run_accepts_provider_instances(self):
        provider = AccountingCryptoProvider(random.Random(3))
        results = run_tier("cambridge06", provider)
        assert results.generated > 0

    def test_api_run_rejects_provider_for_plain_epidemic(self):
        with pytest.raises(ValueError, match="does not take a crypto"):
            api.run(
                "cambridge06", "epidemic", dict(QUICK), seed=1,
                provider="accounting",
            )

    def test_use_provider_refuses_rebind(self):
        protocol = G2GEpidemicForwarding()
        api.run("cambridge06", protocol, dict(QUICK), seed=1)
        with pytest.raises(RuntimeError, match="before bind"):
            protocol.use_provider("accounting")

    def test_cli_provider_flag_is_wired(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["simulate", "--provider", "accounting"]
        )
        assert args.provider == "accounting"
        args = build_parser().parse_args(["perf", "--provider", "simulated"])
        assert args.provider == "simulated"


class TestBuildDetection:
    def test_compiled_modules_reports_the_hot_set(self):
        status = compiled_modules()
        assert set(status) == {
            "repro.core.wire",
            "repro.crypto.hashing",
            "repro.sim.events",
            "repro.sim.node",
        }
        # In the default (pure-Python) build nothing is compiled; the
        # CI compiled-wheel job flips REPRO_EXPECT_COMPILED=1 and runs
        # this same suite against the .[fast] wheel.
        import os

        if os.environ.get("REPRO_EXPECT_COMPILED") == "1":
            assert all(status.values()), status
