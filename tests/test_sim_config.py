"""Tests for simulation configuration."""

import pytest

from repro.sim.config import EnergyModel, SimulationConfig, config_for


class TestValidation:
    def test_defaults_are_paper_setting(self):
        config = SimulationConfig()
        assert config.run_length == 3 * 3600.0
        assert config.silent_tail == 3600.0
        assert config.mean_interarrival == 4.0
        assert config.relay_fanout == 2
        assert config.delta2 == 2 * config.delta1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("run_length", 0.0),
            ("silent_tail", -1.0),
            ("silent_tail", 4 * 3600.0),
            ("mean_interarrival", 0.0),
            ("ttl", 0.0),
            ("delta2_factor", 1.0),
            ("relay_fanout", 0),
            ("quality_timeframe", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            SimulationConfig(**{field: value})

    def test_generation_deadline(self):
        config = SimulationConfig(run_length=7200.0, silent_tail=1800.0)
        assert config.generation_deadline == 5400.0

    def test_with_ttl(self):
        config = SimulationConfig().with_ttl(99.0)
        assert config.ttl == 99.0

    def test_with_seed(self):
        assert SimulationConfig().with_seed(9).seed == 9


class TestEnergyModel:
    def test_transfer_cost_scales(self):
        e = EnergyModel()
        assert e.transfer_cost(2048) == pytest.approx(2 * e.transmit_per_kb)

    def test_heavy_hmac_exceeds_transfer(self):
        # The Nash condition: answering the storage challenge must cost
        # more than relaying a (1 KB) message.
        e = EnergyModel()
        assert e.heavy_hmac > e.transfer_cost(1024)


class TestConfigFor:
    def test_epidemic_ttls(self):
        assert config_for("infocom05", "epidemic").ttl == 30 * 60.0
        assert config_for("cambridge06", "epidemic").ttl == 35 * 60.0

    def test_delegation_ttls(self):
        assert config_for("infocom05", "delegation").ttl == 45 * 60.0
        assert config_for("cambridge06", "delegation").ttl == 75 * 60.0

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            config_for("infocom05", "flooding")

    def test_unknown_trace(self):
        with pytest.raises(KeyError):
            config_for("mit", "epidemic")

    def test_overrides(self):
        config = config_for("infocom05", "epidemic", relay_fanout=3)
        assert config.relay_fanout == 3

    def test_seed_passthrough(self):
        assert config_for("infocom05", "epidemic", seed=77).seed == 77
