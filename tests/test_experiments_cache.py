"""Tests for the on-disk run cache: keys, hits/misses, robustness.

The cache key must move when *any* run input moves (every
SimulationConfig field, the protocol, the adversary spec, the seed,
the trace) and stay put otherwise — including across interpreter
processes, where Python's randomized ``hash()`` would betray a naive
implementation.  Damaged entries must read as misses, never as
crashes, and disabling the cache must bypass reads and writes alike.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments import (
    ExecutionOptions,
    ReplicationPlan,
    RunCache,
    RunReport,
    run_key,
    run_point,
    PROTOCOLS,
)
from repro.sim.config import EnergyModel, SimulationConfig, config_for
from repro.sim.engine import Simulation
from repro.sim.results import SimulationResults

BASE_KEY_ARGS = dict(
    trace_name="infocom05",
    family="epidemic",
    protocol_name="g2g_epidemic",
    deviation="dropper",
    deviation_count=5,
    seed=3,
)


def base_config():
    return config_for("infocom05", "epidemic", seed=3)


def key_of(config=None, **overrides):
    args = {**BASE_KEY_ARGS, **overrides}
    return run_key(config=config or base_config(), **args)


class TestRunKey:
    def test_same_inputs_same_key(self):
        assert key_of() == key_of()

    def test_key_is_hex_digest(self):
        key = key_of()
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_key_stable_across_processes(self):
        """No reliance on per-process hash randomization."""
        src_dir = Path(repro.__file__).resolve().parents[1]
        code = (
            f"import sys; sys.path.insert(0, {str(src_dir)!r})\n"
            "from repro.experiments.cache import run_key\n"
            "from repro.sim.config import config_for\n"
            "print(run_key(trace_name='infocom05', family='epidemic',"
            " protocol_name='g2g_epidemic', deviation='dropper',"
            " deviation_count=5, seed=3,"
            " config=config_for('infocom05', 'epidemic', seed=3)))\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert child.stdout.strip() == key_of()

    def test_every_config_field_is_key_relevant(self):
        """Changing any SimulationConfig field must miss the cache."""
        base = base_config()
        changed_values = {
            "run_length": base.run_length + 60.0,
            "silent_tail": base.silent_tail + 60.0,
            "mean_interarrival": base.mean_interarrival * 2,
            "ttl": base.ttl + 60.0,
            "delta2_factor": base.delta2_factor + 0.5,
            "quality_timeframe": base.quality_timeframe + 60.0,
            "relay_fanout": base.relay_fanout + 1,
            "source_fanout": 3,
            "buffer_capacity": 7,
            "seed": base.seed + 1,
            "message_size": base.message_size * 2,
            "instant_blacklist": not base.instant_blacklist,
            "blacklist_round_interval": 600.0,
            "energy": dataclasses.replace(base.energy, heavy_hmac=9.9),
            "heavy_hmac_iterations": base.heavy_hmac_iterations * 2,
            "track_memory": not base.track_memory,
            "track_events": not base.track_events,
        }
        # future-proofing: a new config field without a row here should
        # fail loudly, so the cache key can't silently ignore it
        assert set(changed_values) == {
            f.name for f in dataclasses.fields(SimulationConfig)
        }
        reference = key_of()
        for field_name, new_value in changed_values.items():
            modified = dataclasses.replace(base, **{field_name: new_value})
            assert key_of(config=modified) != reference, field_name

    def test_nested_energy_model_fields_matter(self):
        for field in dataclasses.fields(EnergyModel):
            modified = dataclasses.replace(
                base_config(),
                energy=dataclasses.replace(
                    EnergyModel(), **{field.name: 123.456}
                ),
            )
            assert key_of(config=modified) != key_of(), field.name

    @pytest.mark.parametrize(
        "override",
        [
            dict(trace_name="cambridge06"),
            dict(family="delegation"),
            dict(protocol_name="epidemic"),
            dict(deviation="liar"),
            dict(deviation=None, deviation_count=0),
            dict(deviation_count=6),
            dict(seed=4),
        ],
    )
    def test_run_identity_fields_matter(self, override):
        assert key_of(**override) != key_of()


def tiny_results(seed=1):
    """A real (but very small) simulation result to round-trip."""
    from repro.traces import ContactTrace, make_contact

    trace = ContactTrace(
        name="pair",
        nodes=(0, 1),
        contacts=(
            make_contact(0, 1, 100.0, 200.0),
            make_contact(0, 1, 900.0, 1000.0),
        ),
    )
    config = SimulationConfig(
        run_length=1800.0,
        silent_tail=600.0,
        mean_interarrival=120.0,
        ttl=600.0,
        seed=seed,
    )
    from repro.protocols.epidemic import EpidemicForwarding

    return Simulation(trace, EpidemicForwarding(), config).run()


class TestRunCache:
    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        results = tiny_results()
        cache.put("a" * 64, results)
        loaded = cache.get("a" * 64)
        assert loaded is not None
        assert loaded.seed == results.seed
        assert loaded.success_rate == results.success_rate
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("b" * 64) is None
        assert cache.stats.misses == 1

    @pytest.mark.parametrize(
        "garbage",
        [
            "not json at all {{{",
            "",
            json.dumps({"format_version": 999}),
            json.dumps({"format_version": 1}),  # valid version, no body
            json.dumps([1, 2, 3]),
        ],
    )
    def test_corrupted_entry_is_miss_not_crash(self, tmp_path, garbage):
        cache = RunCache(tmp_path)
        key = "c" * 64
        cache.path_for(key).write_text(garbage)
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        # and a fresh put repairs the slot
        cache.put(key, tiny_results())
        assert cache.get(key) is not None

    def test_put_is_atomic_no_temp_leftovers(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("d" * 64, tiny_results())
        assert list(Path(tmp_path).glob("*.tmp")) == []
        assert cache.path_for("d" * 64).exists()

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        RunCache(target)
        assert target.is_dir()


TINY_OVERRIDES = {
    "run_length": 1800.0,
    "silent_tail": 600.0,
    "mean_interarrival": 60.0,
    "heavy_hmac_iterations": 4,
}


def run_tiny_point(options):
    return run_point(
        "infocom05",
        "epidemic",
        PROTOCOLS["epidemic"][1],
        plan=ReplicationPlan(seeds=(1, 2)),
        config_overrides=TINY_OVERRIDES,
        options=options,
    )


class TestNoCacheBypass:
    def test_disabled_cache_neither_reads_nor_writes(self, tmp_path):
        cache = RunCache(tmp_path)
        run_tiny_point(ExecutionOptions(cache=cache))
        files_after_warm = sorted(p.name for p in Path(tmp_path).iterdir())
        assert cache.stats.writes == 2

        # cache=None (the CLI's --no-cache): every run re-executes and
        # the cache directory is untouched
        report = RunReport()
        run_tiny_point(ExecutionOptions(cache=None, report=report))
        assert report.executed == 2
        assert report.cached == 0
        assert (
            sorted(p.name for p in Path(tmp_path).iterdir())
            == files_after_warm
        )
        assert cache.stats.hits == 0


class TestCliWiring:
    def parse(self, *argv):
        from repro.cli import build_parser

        return build_parser().parse_args(list(argv))

    def test_no_cache_flag_disables_cache(self):
        from repro.cli import execution_options

        options = execution_options(
            self.parse("experiment", "fig3", "--no-cache", "--workers", "3")
        )
        assert options.cache is None
        assert options.workers == 3
        assert options.report is not None

    def test_cache_dir_flag(self, tmp_path):
        from repro.cli import execution_options

        target = tmp_path / "cli-cache"
        options = execution_options(
            self.parse("experiment", "fig3", "--cache-dir", str(target))
        )
        assert options.cache is not None
        assert target.is_dir()

    def test_defaults(self):
        args = self.parse("experiment", "fig3")
        assert args.workers == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_cache_dir_collision_is_clean_error(self, tmp_path):
        from repro.cli import execution_options

        collision = tmp_path / "not-a-dir"
        collision.write_text("occupied")
        with pytest.raises(SystemExit, match="unusable cache directory"):
            execution_options(
                self.parse("experiment", "fig3", "--cache-dir", str(collision))
            )
