"""Tests for the pluggable crypto providers."""

import random

import pytest

from repro.crypto.provider import (
    RealCryptoProvider,
    SimulatedCryptoProvider,
)
from repro.crypto.schnorr import SchnorrCryptoProvider


@pytest.fixture(params=["simulated", "real", "schnorr"])
def any_provider(request):
    if request.param == "simulated":
        return SimulatedCryptoProvider(random.Random(1))
    if request.param == "schnorr":
        return SchnorrCryptoProvider(random.Random(1))
    return RealCryptoProvider(key_bits=384, rng=random.Random(1))


class TestProviderContract:
    """Both providers satisfy the same behavioral contract."""

    def test_sign_verify(self, any_provider):
        private, public = any_provider.generate_keypair()
        sig = any_provider.sign(private, b"data")
        assert any_provider.verify(public, b"data", sig)

    def test_verify_rejects_wrong_payload(self, any_provider):
        private, public = any_provider.generate_keypair()
        sig = any_provider.sign(private, b"data")
        assert not any_provider.verify(public, b"DATA", sig)

    def test_verify_rejects_wrong_key(self, any_provider):
        private, _ = any_provider.generate_keypair()
        _, other_public = any_provider.generate_keypair()
        sig = any_provider.sign(private, b"data")
        assert not any_provider.verify(other_public, b"data", sig)

    def test_verify_rejects_tampered_signature(self, any_provider):
        private, public = any_provider.generate_keypair()
        sig = bytearray(any_provider.sign(private, b"data"))
        sig[0] ^= 1
        assert not any_provider.verify(public, b"data", bytes(sig))

    def test_encrypt_roundtrip(self, any_provider):
        private, public = any_provider.generate_keypair()
        blob = any_provider.encrypt(public, b"payload" * 100)
        assert any_provider.decrypt(private, blob) == b"payload" * 100

    def test_fingerprints_distinct(self, any_provider):
        _, pub_a = any_provider.generate_keypair()
        _, pub_b = any_provider.generate_keypair()
        assert any_provider.fingerprint(pub_a) != any_provider.fingerprint(
            pub_b
        )

    def test_session_key_length(self, any_provider):
        key = any_provider.new_session_key(random.Random(2))
        assert len(key) == 32

    def test_session_keys_fresh(self, any_provider):
        rng = random.Random(2)
        assert any_provider.new_session_key(rng) != any_provider.new_session_key(rng)


class TestSimulatedSpecifics:
    def test_unknown_public_key_rejected(self):
        provider = SimulatedCryptoProvider(random.Random(1))
        other = SimulatedCryptoProvider(random.Random(1))
        private, public = provider.generate_keypair()
        sig = provider.sign(private, b"x")
        # A handle from a foreign provider instance resolves to no
        # secret in this registry... same key_id exists, but secrets
        # differ only if RNG streams diverge; use an id beyond range.
        from repro.crypto.provider import _SimPublicKey

        assert not provider.verify(_SimPublicKey(key_id=999), b"x", sig)

    def test_signature_is_not_reusable_across_keys(self):
        provider = SimulatedCryptoProvider(random.Random(1))
        priv_a, pub_a = provider.generate_keypair()
        priv_b, pub_b = provider.generate_keypair()
        sig = provider.sign(priv_a, b"x")
        assert provider.verify(pub_a, b"x", sig)
        assert not provider.verify(pub_b, b"x", sig)
