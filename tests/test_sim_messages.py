"""Tests for messages and stored copies."""

import pytest

from repro.sim.messages import Message, StoredCopy


def msg(**overrides):
    base = dict(
        msg_id=1, source=0, destination=5, created_at=100.0, ttl=600.0
    )
    base.update(overrides)
    return Message(**base)


class TestMessage:
    def test_expiry(self):
        m = msg()
        assert m.expires_at == 700.0
        assert m.alive_at(699.0)
        assert not m.alive_at(700.0)

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            msg(destination=0)

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError):
            msg(ttl=0.0)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            msg().ttl = 5.0


class TestStoredCopy:
    def test_defaults(self):
        copy = StoredCopy(message=msg(), received_at=100.0)
        assert copy.num_relays == 0
        assert copy.received_from is None
        assert not copy.body_dropped

    def test_memory_accounting(self):
        copy = StoredCopy(message=msg(size_bytes=2048), received_at=0.0)
        assert copy.memory_bytes() == 2048
        copy.proofs.append(object())
        assert copy.memory_bytes(proof_size=64) == 2048 + 64
        copy.body_dropped = True
        assert copy.memory_bytes(proof_size=64) == 64

    def test_relay_tracking(self):
        copy = StoredCopy(message=msg(), received_at=0.0)
        copy.relays.extend([3, 4])
        assert copy.num_relays == 2
