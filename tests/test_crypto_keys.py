"""Tests for identities, certificates, and the authority."""

import random

import pytest

from repro.crypto import (
    Authority,
    RealCryptoProvider,
    SimulatedCryptoProvider,
)


@pytest.fixture
def identities(authority):
    return authority.enroll(1), authority.enroll(2)


class TestAuthority:
    def test_enroll_issues_valid_certificate(self, authority):
        identity = authority.enroll(7)
        assert authority.verify_certificate(identity.certificate)

    def test_duplicate_enrollment_rejected(self, authority):
        authority.enroll(7)
        with pytest.raises(ValueError):
            authority.enroll(7)

    def test_certificate_binds_node_id(self, authority):
        identity = authority.enroll(7)
        assert identity.certificate.node_id == 7

    def test_foreign_certificate_rejected(self, provider, rng):
        authority_a = Authority(provider)
        authority_b = Authority(provider)
        identity = authority_b.enroll(1)
        assert not authority_a.verify_certificate(identity.certificate)


class TestIdentity:
    def test_sign_verify_between_peers(self, identities):
        a, b = identities
        sig = a.sign(b"payload")
        assert b.verify_peer(a.certificate, b"payload", sig)

    def test_wrong_payload_rejected(self, identities):
        a, b = identities
        sig = a.sign(b"payload")
        assert not b.verify_peer(a.certificate, b"other", sig)

    def test_signature_not_transferable(self, identities):
        a, b = identities
        sig = a.sign(b"payload")
        # b cannot claim a's signature as its own.
        assert not a.verify_peer(b.certificate, b"payload", sig)

    def test_encrypt_for_peer_roundtrip(self, identities):
        a, b = identities
        blob = a.encrypt_for(b.certificate, b"for bob only")
        assert b.decrypt(blob) == b"for bob only"

    def test_fingerprint_matches_certificate(self, identities):
        a, _ = identities
        assert a.key_fingerprint() == a.certificate.fingerprint

    def test_forged_certificate_invalidates_signature(
        self, authority, provider
    ):
        a = authority.enroll(1)
        b = authority.enroll(2)
        # Attacker staples a's public key to a cert with b's id but
        # without the authority's signature over that binding.
        from repro.crypto.keys import Certificate

        forged = Certificate(
            node_id=2,
            public_key=a.certificate.public_key,
            fingerprint=a.certificate.fingerprint,
            signature=a.certificate.signature,  # signed for node 1!
        )
        sig = a.sign(b"hello")
        assert not b.verify_peer(forged, b"hello", sig)


class TestRealProviderParity:
    """The RSA-backed provider behaves identically to the fast one."""

    @pytest.fixture
    def real_authority(self):
        provider = RealCryptoProvider(key_bits=384, rng=random.Random(5))
        return Authority(provider)

    def test_sign_verify(self, real_authority):
        a = real_authority.enroll(1)
        b = real_authority.enroll(2)
        sig = a.sign(b"x")
        assert b.verify_peer(a.certificate, b"x", sig)
        assert not b.verify_peer(a.certificate, b"y", sig)

    def test_encrypt_roundtrip(self, real_authority):
        a = real_authority.enroll(1)
        b = real_authority.enroll(2)
        blob = a.encrypt_for(b.certificate, b"payload" * 40)
        assert b.decrypt(blob) == b"payload" * 40
