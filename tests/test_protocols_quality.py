"""Tests for forwarding-quality trackers and timeframe versioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.quality import QualityTracker


@pytest.fixture
def frequency():
    return QualityTracker("frequency", timeframe=100.0)


@pytest.fixture
def last_contact():
    return QualityTracker("last_contact", timeframe=100.0)


class TestValidation:
    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            QualityTracker("hops", timeframe=100.0)

    def test_nonpositive_timeframe(self):
        with pytest.raises(ValueError):
            QualityTracker("frequency", timeframe=0.0)


class TestFrequency:
    def test_counts_encounters(self, frequency):
        frequency.encounter(1, 2, 10.0)
        frequency.encounter(1, 2, 20.0)
        assert frequency.current(1, 2, 30.0) == 2.0

    def test_symmetric(self, frequency):
        frequency.encounter(1, 2, 10.0)
        assert frequency.current(2, 1, 20.0) == 1.0

    def test_unrelated_pair_zero(self, frequency):
        frequency.encounter(1, 2, 10.0)
        assert frequency.current(1, 3, 20.0) == 0.0


class TestLastContact:
    def test_records_time(self, last_contact):
        last_contact.encounter(1, 2, 42.0)
        assert last_contact.current(1, 2, 50.0) == 42.0

    def test_newer_wins(self, last_contact):
        last_contact.encounter(1, 2, 42.0)
        last_contact.encounter(1, 2, 77.0)
        assert last_contact.current(1, 2, 80.0) == 77.0

    def test_better_is_greater(self, last_contact):
        assert last_contact.better(50.0, 20.0)
        assert not last_contact.better(20.0, 50.0)
        assert not last_contact.better(20.0, 20.0)


class TestTimeframes:
    def test_completed_is_zero_in_first_frame(self, frequency):
        frequency.encounter(1, 2, 10.0)
        value, frame = frequency.completed(1, 2, 50.0)
        assert value == 0.0
        assert frame == -1

    def test_completed_lags_current(self, frequency):
        frequency.encounter(1, 2, 10.0)  # frame 0
        frequency.encounter(1, 2, 150.0)  # frame 1
        # At t=160 (frame 1): last completed frame is 0 -> value 1.
        value, frame = frequency.completed(1, 2, 160.0)
        assert (value, frame) == (1.0, 0)
        # At t=250 (frame 2): last completed frame is 1 -> value 2.
        value, frame = frequency.completed(1, 2, 250.0)
        assert (value, frame) == (2.0, 1)

    def test_value_at_frame_within_retention(self, frequency):
        frequency.encounter(1, 2, 10.0)
        frequency.encounter(1, 2, 150.0)
        assert frequency.value_at_frame(1, 2, 0, now=250.0) == 1.0
        assert frequency.value_at_frame(1, 2, 1, now=250.0) == 2.0

    def test_value_at_frame_outside_retention(self, frequency):
        frequency.encounter(1, 2, 10.0)
        # At t=1000 (frame 10), frame 0 is long gone.
        assert frequency.value_at_frame(1, 2, 0, now=1000.0) is None

    def test_idle_frames_carry_value_forward(self, frequency):
        frequency.encounter(1, 2, 10.0)
        # Frames 1..4 had no encounters; completed value stays 1.
        value, frame = frequency.completed(1, 2, 450.0)
        assert (value, frame) == (1.0, 3)

    def test_symmetric_verification(self, last_contact):
        """B's declared completed value equals D's recomputation —
        the basis of the test by the destination."""
        last_contact.encounter(3, 7, 42.0)
        last_contact.encounter(3, 7, 130.0)
        declared, frame = last_contact.completed(3, 7, 250.0)
        assert last_contact.value_at_frame(7, 3, frame, now=260.0) == declared

    @settings(max_examples=30)
    @given(
        times=st.lists(
            st.floats(0.0, 1000.0), min_size=1, max_size=20, unique=True
        ),
        query=st.floats(0.0, 2000.0),
    )
    def test_completed_never_exceeds_current_frequency(self, times, query):
        tracker = QualityTracker("frequency", timeframe=100.0)
        for t in sorted(times):
            tracker.encounter(1, 2, t)
        horizon = max(max(times), query)
        completed, _ = tracker.completed(1, 2, horizon)
        current = tracker.current(1, 2, horizon)
        assert completed <= current

    def test_frame_of(self, frequency):
        assert frequency.frame_of(0.0) == 0
        assert frequency.frame_of(99.9) == 0
        assert frequency.frame_of(100.0) == 1
