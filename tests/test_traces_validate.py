"""Tests for trace validation and repair."""

import pytest

from repro.traces import ContactTrace, make_contact
from repro.traces.validate import repair_trace, validate_trace


def trace_of(*contacts, nodes=(0, 1, 2)):
    return ContactTrace(name="v", nodes=nodes, contacts=tuple(contacts))


class TestValidation:
    def test_clean_trace(self, pair_trace):
        assert validate_trace(pair_trace) == []

    def test_blip_flagged(self):
        trace = trace_of(make_contact(0, 1, 10.0, 10.5))
        issues = validate_trace(trace, min_duration=1.0)
        assert [i.kind for i in issues] == ["blip"]
        assert issues[0].pair == frozenset((0, 1))

    def test_overlap_flagged(self):
        trace = trace_of(
            make_contact(0, 1, 10.0, 50.0),
            make_contact(0, 1, 40.0, 80.0),
        )
        issues = validate_trace(trace)
        assert any(i.kind == "overlap" for i in issues)

    def test_gap_outlier_flagged(self):
        contacts = [
            make_contact(0, 1, t, t + 10.0) for t in range(0, 500, 100)
        ]
        contacts.append(make_contact(0, 1, 1_000_000.0, 1_000_010.0))
        issues = validate_trace(trace_of(*contacts))
        assert any(i.kind == "gap_outlier" for i in issues)

    def test_regular_gaps_clean(self):
        contacts = [
            make_contact(0, 1, float(t), t + 10.0)
            for t in range(0, 1000, 100)
        ]
        assert validate_trace(trace_of(*contacts)) == []


class TestRepair:
    def test_merges_overlaps(self):
        trace = trace_of(
            make_contact(0, 1, 10.0, 50.0),
            make_contact(0, 1, 40.0, 80.0),
        )
        repaired = repair_trace(trace)
        assert len(repaired) == 1
        assert repaired.contacts[0].start == 10.0
        assert repaired.contacts[0].end == 80.0

    def test_merges_touching(self):
        trace = trace_of(
            make_contact(0, 1, 10.0, 50.0),
            make_contact(0, 1, 50.0, 80.0),
        )
        assert len(repair_trace(trace)) == 1

    def test_drops_blips(self):
        trace = trace_of(
            make_contact(0, 1, 10.0, 10.2),
            make_contact(0, 1, 100.0, 200.0),
        )
        repaired = repair_trace(trace, min_duration=1.0)
        assert len(repaired) == 1
        assert repaired.contacts[0].duration == 100.0

    def test_preserves_universe(self):
        trace = trace_of(make_contact(0, 1, 10.0, 10.2), nodes=(0, 1, 9))
        repaired = repair_trace(trace)
        assert repaired.nodes == (0, 1, 9)

    def test_repaired_trace_validates_clean(self):
        trace = trace_of(
            make_contact(0, 1, 10.0, 50.0),
            make_contact(0, 1, 40.0, 80.0),
            make_contact(1, 2, 5.0, 5.1),
        )
        repaired = repair_trace(trace)
        assert validate_trace(repaired) == []

    def test_independent_pairs_untouched(self):
        trace = trace_of(
            make_contact(0, 1, 10.0, 50.0),
            make_contact(1, 2, 40.0, 80.0),  # different pair: no overlap
        )
        assert len(repair_trace(trace)) == 2
