"""Tests for the utility model and empirical best-response check."""

import pytest

from repro.adversaries import Dropper
from repro.core import G2GEpidemicForwarding
from repro.core.payoff import (
    BestResponseReport,
    DeviationOutcome,
    UtilityModel,
    best_response_check,
)
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.sim.results import SimulationResults


def make_results(delivered_for=(), evicted=(), energy=None):
    results = SimulationResults()
    for i, (src, dst) in enumerate([(0, 1), (1, 0), (2, 0)]):
        m = Message(
            msg_id=i, source=src, destination=dst, created_at=0.0, ttl=60.0
        )
        results.record_generated(m)
        if i in delivered_for:
            results.record_delivery(m, 10.0)
    for node in evicted:
        results.record_eviction(node, 100.0)
    for node, joules in (energy or {}).items():
        results.add_energy(node, joules)
    return results


class TestUtilityModel:
    def test_service_counts_sent_and_received(self):
        model = UtilityModel(service_value=10.0)
        # node 0 sources msg 0 (delivered) and receives msgs 1, 2
        results = make_results(delivered_for=(0, 1))
        assert model.utility(0, results) == pytest.approx(20.0)

    def test_energy_subtracts(self):
        model = UtilityModel(service_value=10.0, energy_weight=2.0)
        results = make_results(delivered_for=(0,), energy={0: 3.0})
        assert model.utility(0, results) == pytest.approx(10.0 - 6.0)

    def test_eviction_zeroes_service_keeps_costs(self):
        model = UtilityModel(service_value=10.0)
        results = make_results(
            delivered_for=(0, 1), evicted=(0,), energy={0: 1.0}
        )
        assert model.utility(0, results) == pytest.approx(-1.0)

    def test_uninvolved_node(self):
        model = UtilityModel()
        results = make_results()
        assert model.utility(7, results) == 0.0


class TestOutcome:
    def test_profitable(self):
        o = DeviationOutcome(
            deviation="dropper", node=1, honest_utility=5.0,
            deviant_utility=6.0, detected=False,
        )
        assert o.profitable
        o2 = DeviationOutcome(
            deviation="dropper", node=1, honest_utility=5.0,
            deviant_utility=5.0, detected=True,
        )
        assert not o2.profitable

    def test_report_render(self):
        report = BestResponseReport(protocol="p")
        report.outcomes.append(
            DeviationOutcome(
                deviation="dropper", node=1, honest_utility=5.0,
                deviant_utility=-1.0, detected=True,
            )
        )
        assert report.nash_holds
        assert "True" in report.render()


class TestBestResponseCheck:
    def test_dropping_unprofitable(self, mini_synthetic):
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1200.0,
            heavy_hmac_iterations=2,
        )
        report = best_response_check(
            mini_synthetic.trace,
            G2GEpidemicForwarding,
            config,
            deviations=("dropper",),
            probe_nodes=[0, 1],
            seeds=(1, 2),
        )
        assert len(report.outcomes) == 2
        assert report.nash_holds
