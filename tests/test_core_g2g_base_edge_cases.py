"""Edge-case tests of the shared G2G machinery.

Covers corners the scenario tests don't reach: sealed-message
integrity end to end, energy accounting of the handshake, gossip-mode
eviction semantics, re-tests across multiple messages, and interaction
between eviction and in-flight obligations.
"""

import pytest

from repro.adversaries import Dropper
from repro.core import G2GEpidemicForwarding, GossipBlacklist
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace


def config(**overrides):
    base = dict(
        run_length=10_000.0,
        silent_tail=1000.0,
        mean_interarrival=1e6,
        ttl=1000.0,
        heavy_hmac_iterations=2,
        seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def harness(nodes=6, cfg=None, strategies=None, blacklist=None):
    trace = ContactTrace(name="manual", nodes=tuple(range(nodes)), contacts=())
    protocol = G2GEpidemicForwarding()
    sim = Simulation(
        trace, protocol, cfg or config(), strategies=strategies,
        blacklist=blacklist,
    )
    ctx = sim._build_context()
    protocol.bind(ctx)
    return protocol, ctx


def inject(protocol, ctx, source, destination, created, msg_id=0):
    message = Message(
        msg_id=msg_id, source=source, destination=destination,
        created_at=created, ttl=ctx.config.ttl,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


class TestSealedMessages:
    def test_sender_hidden_from_relays(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        sealed = protocol._sealed[0]
        # The wire form mentions the destination, not the source.
        assert sealed.destination == 5
        with pytest.raises(Exception):
            # relay 1 cannot decrypt
            from repro.core.proofs import open_message

            open_message(protocol.identities[1], sealed)

    def test_destination_authenticates_source(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=1, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        # delivery ran open_message() internally and asserted the
        # (source, msg_id) binding; reaching here means it verified.
        assert ctx.results.delivered == 1


class TestEnergyAccounting:
    def test_relay_charges_both_sides(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        assert ctx.results.energy[0] > 0  # transmit + verification
        assert ctx.results.energy[1] > 0  # receive + signature

    def test_storage_challenge_costs_more_than_relay(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        energy_after_relay = ctx.results.energy[1]
        protocol.on_contact_start(0, 1, 1200.0)  # storage challenge
        challenge_cost = ctx.results.energy[1] - energy_after_relay
        assert challenge_cost > energy_after_relay


class TestGossipMode:
    def test_no_global_eviction_in_gossip_mode(self):
        gossip = GossipBlacklist()
        protocol, ctx = harness(
            cfg=config(instant_blacklist=False),
            strategies={1: Dropper()},
            blacklist=gossip,
        )
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        protocol.on_contact_start(0, 1, 1200.0)  # PoM issued
        assert len(ctx.results.detections) == 1
        # gossip: the offender is not globally evicted...
        assert not ctx.node(1).evicted
        # ...but the detector refuses new sessions with it,
        assert not ctx.usable_pair(0, 1)
        # while an uninformed node still would accept.
        assert ctx.usable_pair(1, 2)

    def test_gossip_spreads_on_contact(self):
        gossip = GossipBlacklist()
        protocol, ctx = harness(
            cfg=config(instant_blacklist=False),
            strategies={1: Dropper()},
            blacklist=gossip,
        )
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        protocol.on_contact_start(0, 1, 1200.0)
        gossip.on_contact(0, 3, 1300.0)  # engine does this per contact
        assert not ctx.usable_pair(3, 1)


class TestMultiMessageObligations:
    def test_obligations_tracked_per_message(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0, msg_id=0)
        inject(protocol, ctx, source=0, destination=4, created=5.0, msg_id=1)
        protocol.on_contact_start(0, 1, 10.0)  # node 1 takes (and drops) both
        protocol.on_contact_start(0, 1, 1200.0)
        # Both tests fail, but the node is evicted at the first PoM;
        # at least one detection exists and cites node 1.
        assert ctx.results.detections
        assert all(d.offender == 1 for d in ctx.results.detections)

    def test_second_source_also_tests(self):
        protocol, ctx = harness(strategies={2: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0, msg_id=0)
        inject(protocol, ctx, source=1, destination=4, created=5.0, msg_id=1)
        protocol.on_contact_start(0, 2, 10.0)
        protocol.on_contact_start(1, 2, 20.0)
        # Only source 1 re-meets the dropper inside the window.
        protocol.on_contact_start(1, 2, 1200.0)
        assert len(ctx.results.detections) == 1
        assert ctx.results.detections[0].detector == 1


class TestEvictionInteractions:
    def test_evicted_source_messages_not_generated(self):
        """Engine-level: once evicted, a node stops sourcing traffic."""
        from repro.traces import make_contact

        trace = ContactTrace(
            name="t",
            nodes=(0, 1, 2, 3),
            contacts=(
                make_contact(0, 1, 10.0, 60.0),
                make_contact(0, 1, 1200.0, 1260.0),
            ),
        )
        cfg = config(mean_interarrival=30.0, run_length=3000.0,
                     silent_tail=100.0)
        results = Simulation(
            trace, G2GEpidemicForwarding(), cfg, strategies={1: Dropper()}
        ).run()
        if 1 in results.evicted_at:
            evicted_at = results.evicted_at[1]
            late_sources = [
                r.message.source
                for r in results.messages.values()
                if r.message.created_at > evicted_at
            ]
            assert 1 not in late_sources

    def test_tests_stop_against_evicted_node(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0, msg_id=0)
        inject(protocol, ctx, source=0, destination=4, created=0.0, msg_id=1)
        protocol.on_contact_start(0, 1, 10.0)
        protocol.on_contact_start(0, 1, 1200.0)
        # first failing test evicts; the loop must stop immediately.
        assert len(ctx.results.detections) == 1


class TestDodgerMechanics:
    def test_dodger_never_tested(self):
        from repro.adversaries import Dodger

        protocol, ctx = harness(strategies={1: Dodger()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)  # take + drop
        assert not ctx.node(1).has_copy(0)
        protocol.on_contact_start(0, 1, 1200.0)  # dodger refuses session
        assert ctx.results.detections == []
        assert ctx.results.session_refusals == 1

    def test_dodger_accepts_unrelated_peers(self):
        from repro.adversaries import Dodger

        protocol, ctx = harness(strategies={1: Dodger()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        # Node 2 is not a creditor: session opens, dodger even relays
        # nothing (it dropped the copy) but receives new messages.
        protocol.on_contact_start(1, 2, 50.0)
        assert ctx.results.session_refusals == 0

    def test_obligation_expires_after_delta2(self):
        from repro.adversaries import Dodger

        protocol, ctx = harness(strategies={1: Dodger()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        # Past Δ2 (= 2000) the obligation is gone; sessions resume.
        protocol.on_contact_start(0, 1, 2500.0)
        assert ctx.results.session_refusals == 0

    def test_honest_nodes_have_no_pending_givers(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        assert protocol._pending_givers(ctx.node(1), 100.0) == frozenset()
