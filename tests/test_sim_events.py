"""Tests for the event queue and the run scheduler."""

from itertools import permutations

from repro.perf.counters import COUNTERS
from repro.sim.eventlog import EventLog, EventType
from repro.sim.events import Event, EventKind, EventQueue, Scheduler, TimerHandle
from repro.traces import make_contact


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(time=5.0, kind=EventKind.MESSAGE_GENERATION, traffic=(0, 1)))
        q.push(Event(time=1.0, kind=EventKind.MESSAGE_GENERATION, traffic=(1, 2)))
        q.push(Event(time=3.0, kind=EventKind.MESSAGE_GENERATION, traffic=(2, 3)))
        assert [e.time for e in q.drain()] == [1.0, 3.0, 5.0]

    def test_end_before_start_at_same_instant(self):
        q = EventQueue()
        c1 = make_contact(0, 1, 0.0, 10.0)
        c2 = make_contact(0, 1, 10.0, 20.0)
        q.push_contact(c1)
        q.push_contact(c2)
        kinds = [(e.time, e.kind) for e in q.drain()]
        assert kinds == [
            (0.0, EventKind.CONTACT_START),
            (10.0, EventKind.CONTACT_END),
            (10.0, EventKind.CONTACT_START),
            (20.0, EventKind.CONTACT_END),
        ]

    def test_generation_after_start_at_same_instant(self):
        q = EventQueue()
        q.push(Event(time=5.0, kind=EventKind.MESSAGE_GENERATION, traffic=(0, 1)))
        q.push_contact(make_contact(0, 1, 5.0, 6.0))
        kinds = [e.kind for e in q.drain() if e.time == 5.0]
        assert kinds == [EventKind.CONTACT_START, EventKind.MESSAGE_GENERATION]

    def test_fifo_tiebreak_within_kind(self):
        q = EventQueue()
        q.push(Event(time=1.0, kind=EventKind.MESSAGE_GENERATION, traffic=(0, 1)))
        q.push(Event(time=1.0, kind=EventKind.MESSAGE_GENERATION, traffic=(2, 3)))
        events = list(q.drain())
        assert events[0].traffic == (0, 1)
        assert events[1].traffic == (2, 3)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push_contact(make_contact(0, 1, 0.0, 1.0))
        assert len(q) == 2
        assert q

    def test_pop_empty_raises(self):
        import pytest

        with pytest.raises(IndexError):
            EventQueue().pop()


def _event_of_kind(kind, time):
    """A representative event of ``kind`` at ``time``."""
    contact = make_contact(0, 1, time, time + 1.0)
    if kind is EventKind.CONTACT_START:
        return Event(time=time, kind=kind, contact=contact)
    if kind is EventKind.CONTACT_END:
        return Event(time=time, kind=kind, contact=contact)
    if kind is EventKind.MESSAGE_GENERATION:
        return Event(time=time, kind=kind, traffic=(0, 1))
    return Event(time=time, kind=kind, timer=TimerHandle(time=time, tag="t"))


class TestFourKindOrdering:
    """All four kinds at one instant drain END < START < GEN < TIMER."""

    CANONICAL = [
        EventKind.CONTACT_END,
        EventKind.CONTACT_START,
        EventKind.MESSAGE_GENERATION,
        EventKind.TIMER,
    ]

    def test_every_push_order_drains_canonically(self):
        # The drain order is a property of the kind priorities alone:
        # no interleaving of pushes may change it.
        for order in permutations(self.CANONICAL):
            q = EventQueue()
            for kind in order:
                q.push(_event_of_kind(kind, 42.0))
            assert [e.kind for e in q.drain()] == self.CANONICAL, order

    def test_sequence_tiebreak_is_stable_within_every_kind(self):
        # Two events of each kind at the same instant, pushed
        # round-robin: kinds sort by priority, and within one kind the
        # push sequence is preserved (FIFO).
        q = EventQueue()
        tagged = []
        for rank in range(2):
            for kind in self.CANONICAL:
                event = _event_of_kind(kind, 7.0)
                tagged.append((kind, rank, event))
                q.push(event)
        drained = list(q.drain())
        assert [e.kind for e in drained] == [
            k for k in self.CANONICAL for _ in range(2)
        ]
        for kind in self.CANONICAL:
            expected = [e for k, _, e in tagged if k is kind]
            got = [e for e in drained if e.kind is kind]
            assert got == expected

    def test_timer_fires_after_same_instant_contact_and_generation(self):
        # The contract the Δ2 purge migration relies on: a timer at t
        # observes the run *after* every contact and generation at t.
        q = EventQueue()
        q.push(_event_of_kind(EventKind.TIMER, 5.0))
        q.push_contact(make_contact(0, 1, 5.0, 6.0))
        q.push(_event_of_kind(EventKind.MESSAGE_GENERATION, 5.0))
        kinds = [e.kind for e in q.drain() if e.time == 5.0]
        assert kinds == [
            EventKind.CONTACT_START,
            EventKind.MESSAGE_GENERATION,
            EventKind.TIMER,
        ]


class _RecordingOwner:
    def __init__(self):
        self.fired = []

    def on_timer(self, tag, payload, now):
        self.fired.append((tag, payload, now))


class TestScheduler:
    def test_schedule_and_dispatch_in_order(self):
        owner = _RecordingOwner()
        sched = Scheduler(EventQueue(), default_owner=owner)
        sched.schedule(3.0, "b", payload="late")
        sched.schedule(1.0, "a", payload="early")
        sched.dispatch_until(10.0)
        assert owner.fired == [("a", "early", 1.0), ("b", "late", 3.0)]

    def test_dispatch_until_is_strictly_before(self):
        owner = _RecordingOwner()
        sched = Scheduler(EventQueue(), default_owner=owner)
        sched.schedule(5.0, "edge")
        sched.dispatch_until(5.0)
        assert owner.fired == []  # not <, so the 5.0 timer waits
        sched.dispatch_until(5.0 + 1e-9)
        assert owner.fired == [("edge", None, 5.0)]

    def test_cancel_before_fire(self):
        owner = _RecordingOwner()
        sched = Scheduler(EventQueue(), default_owner=owner)
        keep = sched.schedule(1.0, "keep")
        kill = sched.schedule(2.0, "kill")
        before = COUNTERS.snapshot()
        sched.cancel(kill)
        sched.cancel(kill)  # idempotent: one cancellation counted
        sched.dispatch_until(10.0)
        diff = COUNTERS.diff(before)
        assert owner.fired == [("keep", None, 1.0)]
        assert not keep.cancelled  # firing does not flip the flag
        assert kill.cancelled
        assert diff["timers_cancelled"] == 1
        assert diff["timer_dispatches"] == 1

    def test_horizon_refuses_unreachable_timers(self):
        sched = Scheduler(EventQueue(), horizon=100.0)
        before = COUNTERS.snapshot()
        dead = sched.schedule(100.5, "beyond")
        live = sched.schedule(100.0, "at-horizon")
        diff = COUNTERS.diff(before)
        assert dead.cancelled
        assert not live.cancelled
        assert len(sched.queue) == 1  # the stillborn timer never enqueued
        assert diff["timers_scheduled"] == 1

    def test_explicit_owner_beats_default(self):
        default = _RecordingOwner()
        explicit = _RecordingOwner()
        sched = Scheduler(EventQueue(), default_owner=default)
        sched.schedule(1.0, "routed", owner=explicit)
        sched.schedule(2.0, "defaulted")
        sched.dispatch_until(10.0)
        assert explicit.fired == [("routed", None, 1.0)]
        assert default.fired == [("defaulted", None, 2.0)]

    def test_dispatches_logged_to_eventlog(self):
        log = EventLog(enabled=True)
        sched = Scheduler(EventQueue(), events=log)
        sched.schedule(4.0, "node.ttl")
        skipped = sched.schedule(6.0, "dropped.tag")
        sched.cancel(skipped)
        sched.dispatch_until(10.0)
        timers = log.filter(event_type=EventType.TIMER)
        assert [(e.time, e.detail) for e in timers] == [(4.0, "node.ttl")]

    def test_dispatch_until_leaves_non_timer_events(self):
        sched = Scheduler(EventQueue())
        sched.queue.push_contact(make_contact(0, 1, 1.0, 2.0))
        sched.schedule(1.5, "between")
        sched.dispatch_until(10.0)
        # The contact at 1.0 heads the queue: the drain must stop at
        # it rather than consume engine-owned events (the timer behind
        # it stays queued too).
        assert len(sched.queue) == 3
        head = sched.queue.peek()
        assert head is not None and head.kind is EventKind.CONTACT_START
