"""Tests for the event queue."""

from repro.sim.events import Event, EventKind, EventQueue
from repro.traces import make_contact


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(time=5.0, kind=EventKind.MESSAGE_GENERATION, traffic=(0, 1)))
        q.push(Event(time=1.0, kind=EventKind.MESSAGE_GENERATION, traffic=(1, 2)))
        q.push(Event(time=3.0, kind=EventKind.MESSAGE_GENERATION, traffic=(2, 3)))
        assert [e.time for e in q.drain()] == [1.0, 3.0, 5.0]

    def test_end_before_start_at_same_instant(self):
        q = EventQueue()
        c1 = make_contact(0, 1, 0.0, 10.0)
        c2 = make_contact(0, 1, 10.0, 20.0)
        q.push_contact(c1)
        q.push_contact(c2)
        kinds = [(e.time, e.kind) for e in q.drain()]
        assert kinds == [
            (0.0, EventKind.CONTACT_START),
            (10.0, EventKind.CONTACT_END),
            (10.0, EventKind.CONTACT_START),
            (20.0, EventKind.CONTACT_END),
        ]

    def test_generation_after_start_at_same_instant(self):
        q = EventQueue()
        q.push(Event(time=5.0, kind=EventKind.MESSAGE_GENERATION, traffic=(0, 1)))
        q.push_contact(make_contact(0, 1, 5.0, 6.0))
        kinds = [e.kind for e in q.drain() if e.time == 5.0]
        assert kinds == [EventKind.CONTACT_START, EventKind.MESSAGE_GENERATION]

    def test_fifo_tiebreak_within_kind(self):
        q = EventQueue()
        q.push(Event(time=1.0, kind=EventKind.MESSAGE_GENERATION, traffic=(0, 1)))
        q.push(Event(time=1.0, kind=EventKind.MESSAGE_GENERATION, traffic=(2, 3)))
        events = list(q.drain())
        assert events[0].traffic == (0, 1)
        assert events[1].traffic == (2, 3)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push_contact(make_contact(0, 1, 0.0, 1.0))
        assert len(q) == 2
        assert q

    def test_pop_empty_raises(self):
        import pytest

        with pytest.raises(IndexError):
            EventQueue().pop()
