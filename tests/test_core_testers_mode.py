"""Tests for the source-only vs any-giver auditing modes."""

import pytest

from repro.adversaries import Dropper
from repro.core import G2GDelegationForwarding, G2GEpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace


def config(**overrides):
    base = dict(
        run_length=10_000.0, silent_tail=1000.0, mean_interarrival=1e6,
        ttl=1000.0, heavy_hmac_iterations=2, seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def harness(testers, strategies=None):
    trace = ContactTrace(name="manual", nodes=tuple(range(6)), contacts=())
    protocol = G2GEpidemicForwarding(testers=testers)
    sim = Simulation(trace, protocol, config(), strategies=strategies)
    ctx = sim._build_context()
    protocol.bind(ctx)
    return protocol, ctx


def inject(protocol, ctx, source, destination, created, msg_id=0):
    message = Message(
        msg_id=msg_id, source=source, destination=destination,
        created_at=created, ttl=ctx.config.ttl,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            G2GEpidemicForwarding(testers="everyone")
        with pytest.raises(ValueError):
            G2GDelegationForwarding(testers="everyone")

    def test_default_is_source(self):
        assert G2GEpidemicForwarding().testers == "source"
        assert G2GDelegationForwarding().testers == "source"


class TestSourceOnly:
    def test_relay_giver_never_tests(self):
        protocol, ctx = harness("source", strategies={2: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)   # source -> relay 1
        protocol.on_contact_start(1, 2, 20.0)   # relay 1 -> dropper 2
        protocol.on_contact_start(1, 2, 1200.0)  # 1 is not the source
        assert ctx.results.detections == []


class TestAnyGiver:
    def test_relay_giver_tests_its_takers(self):
        protocol, ctx = harness("any_giver", strategies={2: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        protocol.on_contact_start(1, 2, 20.0)
        protocol.on_contact_start(1, 2, 1200.0)  # relay 1 audits now
        assert len(ctx.results.detections) == 1
        record = ctx.results.detections[0]
        assert record.offender == 2
        assert record.detector == 1

    def test_honest_takers_still_pass(self):
        protocol, ctx = harness("any_giver")
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        protocol.on_contact_start(0, 1, 10.0)
        protocol.on_contact_start(1, 2, 20.0)
        protocol.on_contact_start(1, 2, 1200.0)
        assert ctx.results.detections == []
        assert ctx.results.test_phases == 1

    def test_delegation_source_duties_stay_at_source(self):
        """Intermediate relays must not embed failed declarations."""
        trace = ContactTrace(name="m", nodes=tuple(range(8)), contacts=())
        protocol = G2GDelegationForwarding(testers="any_giver")
        sim = Simulation(
            trace, protocol, config(ttl=400.0, quality_timeframe=100.0)
        )
        ctx = sim._build_context()
        protocol.bind(ctx)
        S, D = 0, 5
        protocol.on_contact_start(S, D, 20.0)   # S gains quality to D
        protocol.on_contact_start(1, D, 60.0)
        protocol.on_contact_start(2, D, 80.0)
        message = Message(
            msg_id=0, source=S, destination=D, created_at=120.0, ttl=400.0
        )
        ctx.results.record_generated(message)
        protocol.on_message_generated(message, 120.0)
        protocol.on_contact_start(S, 1, 150.0)  # relay to node 1
        # node 1 (a relay) meets a failing candidate: node 3 declares 0.
        protocol.on_contact_start(1, 3, 200.0)
        record = protocol._sources[1].get(0)
        if record is not None:
            assert not record.is_source
            assert record.failed_declarations == []
