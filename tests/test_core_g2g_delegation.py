"""Protocol-level tests for G2G Delegation Forwarding.

Scenario construction notes: the quality timeframe is 100 s, so
frame k covers [100k, 100(k+1)).  Declarations report the value at the
end of the *last completed* frame; the destination retains the last
two completed frames for verification.
"""

import pytest

from repro.adversaries import Cheater, Dropper, Liar
from repro.core import G2GDelegationForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace


def config(**overrides):
    base = dict(
        run_length=10_000.0,
        silent_tail=1000.0,
        mean_interarrival=1e6,
        ttl=400.0,
        delta2_factor=2.0,
        quality_timeframe=100.0,
        heavy_hmac_iterations=2,
        seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def harness(nodes=8, cfg=None, strategies=None, variant="last_contact"):
    trace = ContactTrace(name="manual", nodes=tuple(range(nodes)), contacts=())
    protocol = G2GDelegationForwarding(variant)
    sim = Simulation(trace, protocol, cfg or config(), strategies=strategies)
    ctx = sim._build_context()
    protocol.bind(ctx)
    return protocol, ctx


def inject(protocol, ctx, source, destination, created, msg_id=0):
    message = Message(
        msg_id=msg_id, source=source, destination=destination,
        created_at=created, ttl=ctx.config.ttl,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


def meet(protocol, a, b, t):
    protocol.on_contact_start(a, b, t)


# Node cast used throughout: 0 = source S, 5 = destination D.
S, D = 0, 5


class TestNegotiation:
    def test_low_quality_candidate_declined(self):
        protocol, ctx = harness()
        # S has quality toward D (met at t=20, frame 0 completes at 100)
        meet(protocol, S, D, 20.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        # node 1 never met D: declared 0 < fm=20 -> declined.
        meet(protocol, S, 1, 150.0)
        assert not ctx.node(1).has_copy(0)

    def test_better_candidate_accepted(self):
        protocol, ctx = harness()
        meet(protocol, S, D, 20.0)
        meet(protocol, 1, D, 60.0)  # node 1 saw D more recently
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)
        assert ctx.node(1).has_copy(0)
        assert ctx.node(1).buffer[0].quality == pytest.approx(60.0)

    def test_both_copies_relabelled(self):
        protocol, ctx = harness()
        meet(protocol, S, D, 20.0)
        meet(protocol, 1, D, 60.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)
        assert ctx.node(S).buffer[0].quality == pytest.approx(60.0)

    def test_delivery_unconditional(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        # S's quality toward D is 0 and D's camouflage declaration is
        # irrelevant: meeting the destination always delivers.
        meet(protocol, S, D, 150.0)
        assert ctx.results.delivered == 1

    def test_failed_declaration_recorded_at_source(self):
        protocol, ctx = harness()
        meet(protocol, S, D, 20.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)  # node 1 fails (0 < 20)
        record = protocol._sources[S][0]
        assert len(record.failed_declarations) == 1
        assert record.failed_declarations[0].declarant == 1

    def test_failed_declarations_ride_with_message(self):
        protocol, ctx = harness()
        meet(protocol, S, D, 20.0)
        meet(protocol, 2, D, 60.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)  # fails
        meet(protocol, S, 2, 160.0)  # succeeds; carries the failure
        attachments = ctx.node(2).buffer[0].attachments
        assert [d.declarant for d in attachments] == [1]

    def test_only_last_two_failures_embedded(self):
        protocol, ctx = harness()
        meet(protocol, S, D, 20.0)
        meet(protocol, 4, D, 60.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        for node, t in ((1, 150.0), (2, 160.0), (3, 170.0)):
            meet(protocol, S, node, t)  # three failures
        meet(protocol, S, 4, 180.0)  # good relay
        attachments = ctx.node(4).buffer[0].attachments
        assert [d.declarant for d in attachments] == [2, 3]


class TestLiarDetection:
    def liar_scenario(self, deliver_at=250.0):
        protocol, ctx = harness(strategies={1: Liar()})
        meet(protocol, S, D, 80.0)     # frame 0: f_SD > 0
        meet(protocol, 1, D, 50.0)     # frame 0: liar truly has quality
        meet(protocol, 2, D, 90.0)     # frame 0: good relay, later contact
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)    # liar declares 0 < fm -> failed
        meet(protocol, S, 2, 160.0)    # good relay takes msg + evidence
        meet(protocol, 2, D, deliver_at)  # delivery -> test by destination
        return protocol, ctx

    def test_liar_convicted_by_destination(self):
        protocol, ctx = self.liar_scenario()
        assert len(ctx.results.detections) == 1
        record = ctx.results.detections[0]
        assert record.offender == 1
        assert record.deviation == "liar"
        assert record.detector == D
        assert ctx.node(1).evicted

    def test_conviction_carries_signed_evidence(self):
        protocol, ctx = self.liar_scenario()
        evidence = ctx.blacklist.poms[0].evidence
        assert evidence.declarant == 1
        assert evidence.value == 0.0

    def test_stale_frame_unverifiable_no_conviction(self):
        # Deliver late enough that frame 0 left D's retention window
        # (frame_of(550)=5; retained completed frames are 3 and 4).
        protocol, ctx = self.liar_scenario(deliver_at=550.0)
        # TTL expired at 520 so delivery cannot happen anyway; extend
        # the TTL via a dedicated config to isolate frame retention.
        protocol2, ctx2 = harness(
            strategies={1: Liar()}, cfg=config(ttl=800.0)
        )
        meet(protocol2, S, D, 80.0)
        meet(protocol2, 1, D, 50.0)
        meet(protocol2, 2, D, 90.0)
        inject(protocol2, ctx2, source=S, destination=D, created=120.0)
        meet(protocol2, S, 1, 150.0)
        meet(protocol2, S, 2, 160.0)
        meet(protocol2, 2, D, 550.0)
        assert ctx2.results.delivered == 1
        assert ctx2.results.detections == []

    def test_honest_failed_candidate_not_convicted(self):
        protocol, ctx = harness()
        meet(protocol, S, D, 80.0)
        meet(protocol, 1, D, 50.0)   # honest, lower quality than S
        meet(protocol, 2, D, 90.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)  # declares 50 < 80: honest failure
        meet(protocol, S, 2, 160.0)
        meet(protocol, 2, D, 250.0)
        assert ctx.results.delivered == 1
        assert ctx.results.detections == []

    def test_liar_in_first_frame_tells_vacuous_truth(self):
        """Before any frame completes, true completed quality is 0, so
        declaring 0 is not detectable (and not a recorded deviation)."""
        protocol, ctx = harness(strategies={1: Liar()})
        meet(protocol, 1, D, 30.0)
        inject(protocol, ctx, source=S, destination=D, created=50.0)
        meet(protocol, S, 1, 60.0)  # everything still in frame 0
        assert ctx.results.deviation_counts.get(1) is None


class TestCheaterDetection:
    def cheater_scenario(self, strategies=None):
        """A (node 1) takes from S, relays to 2 and 3, then is tested."""
        protocol, ctx = harness(
            strategies=strategies if strategies is not None else {1: Cheater()}
        )
        meet(protocol, 1, D, 30.0)   # f_AD: last contact 30 (frame 0)
        meet(protocol, 2, D, 40.0)
        meet(protocol, 3, D, 50.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)  # relay to A: fm=0 -> declared 30 wins
        meet(protocol, 1, 2, 200.0)  # A relays (cheating lowers label)
        meet(protocol, 1, 3, 250.0)
        # Δ1 expires at 520; test window (520, 1040].
        meet(protocol, S, 1, 600.0)
        return protocol, ctx

    def test_cheater_convicted_by_sender(self):
        protocol, ctx = self.cheater_scenario()
        assert len(ctx.results.detections) == 1
        record = ctx.results.detections[0]
        assert record.offender == 1
        assert record.deviation == "cheater"
        assert ctx.node(1).evicted

    def test_honest_chain_passes(self):
        protocol, ctx = self.cheater_scenario(strategies={})
        assert ctx.results.detections == []
        assert ctx.results.test_phases == 1

    def test_cheater_with_body_passes_storage(self):
        """A cheater that found no relays yet answers the storage
        challenge — cheating is unobservable until proofs exist."""
        protocol, ctx = harness(strategies={1: Cheater()})
        meet(protocol, 1, D, 30.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)
        meet(protocol, S, 1, 600.0)  # test: node 1 still holds the body
        assert ctx.results.detections == []
        assert ctx.results.heavy_hmac_runs == 1

    def test_por_from_destination_exempt_from_chain(self):
        """Delivering to D consumes a fanout slot whose PoR carries a
        camouflage quality; the chain check must skip it."""
        protocol, ctx = harness()
        meet(protocol, 1, D, 30.0)
        meet(protocol, 2, D, 40.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)
        meet(protocol, 1, D, 200.0)   # delivery (PoR from D)
        meet(protocol, 1, 2, 250.0)   # second PoR, honest chain
        meet(protocol, S, 1, 600.0)   # test with both PoRs
        assert ctx.results.delivered == 1
        assert ctx.results.detections == []


class TestDropperDetection:
    def test_dropper_convicted(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        meet(protocol, 1, D, 30.0)
        inject(protocol, ctx, source=S, destination=D, created=120.0)
        meet(protocol, S, 1, 150.0)  # relay; dropper discards
        assert not ctx.node(1).has_copy(0)
        meet(protocol, S, 1, 600.0)
        assert len(ctx.results.detections) == 1
        assert ctx.results.detections[0].deviation == "dropper"


class TestFullRun:
    def test_honest_run_clean(self, mini_synthetic):
        cfg = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1500.0, seed=4,
            quality_timeframe=600.0, heavy_hmac_iterations=2,
        )
        results = Simulation(
            mini_synthetic.trace, G2GDelegationForwarding("last_contact"), cfg
        ).run()
        assert results.detections == []
        assert results.delivered > 0

    def test_frequency_variant_runs(self, mini_synthetic):
        cfg = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=60.0, ttl=1500.0, seed=4,
            quality_timeframe=600.0, heavy_hmac_iterations=2,
        )
        results = Simulation(
            mini_synthetic.trace, G2GDelegationForwarding("frequency"), cfg
        ).run()
        assert results.detections == []
        assert results.protocol == "g2g_delegation_frequency"
