"""Tests for evaluation-window selection."""

import pytest

from repro.traces import (
    ContactTrace,
    EvaluationWindow,
    SILENT_TAIL,
    STANDARD_WINDOW,
    active_windows,
    busiest_window,
    make_contact,
)


def clustered_trace():
    """Activity concentrated between t=10000 and t=14000."""
    contacts = [make_contact(0, 1, 100.0, 150.0)]
    t = 10_000.0
    for i in range(30):
        contacts.append(make_contact(i % 3, (i + 1) % 3 + 1, t, t + 50.0))
        t += 120.0
    return ContactTrace(name="c", nodes=(0, 1, 2, 3), contacts=tuple(contacts))


class TestEvaluationWindow:
    def test_bounds(self):
        w = EvaluationWindow(start=500.0, length=100.0)
        assert w.end == 600.0
        assert w.generation_deadline == 100.0 - SILENT_TAIL

    def test_standard_length(self):
        assert EvaluationWindow(start=0.0).length == STANDARD_WINDOW

    def test_slice_shifts_origin(self):
        trace = clustered_trace()
        w = EvaluationWindow(start=10_000.0, length=5_000.0)
        sliced = w.slice(trace)
        assert sliced.start_time >= 0.0
        assert sliced.end_time <= 5_000.0


class TestBusiestWindow:
    def test_finds_cluster(self):
        trace = clustered_trace()
        w = busiest_window(trace, length=4_000.0, step=1_000.0)
        sliced = w.slice(trace)
        assert len(sliced) >= 25

    def test_short_trace_returns_full(self):
        trace = ContactTrace(
            name="s", nodes=(0, 1), contacts=(make_contact(0, 1, 0.0, 10.0),)
        )
        w = busiest_window(trace, length=100_000.0)
        assert w.start == trace.start_time


class TestActiveWindows:
    def test_threshold_filters(self):
        trace = clustered_trace()
        windows = active_windows(
            trace, length=4_000.0, step=1_000.0, min_contacts=10
        )
        assert windows
        for w in windows:
            count = sum(
                1 for c in trace.contacts if c.overlaps(w.start, w.end)
            )
            assert count >= 10

    def test_high_threshold_empty(self):
        trace = clustered_trace()
        assert (
            active_windows(
                trace, length=1_000.0, step=1_000.0, min_contacts=1_000
            )
            == []
        )


class TestSliceTypeGuard:
    def test_synthetic_bundle_rejected_with_hint(self):
        from repro.traces.synthetic import SyntheticTrace

        bundle = SyntheticTrace(
            trace=clustered_trace(), assignment=None, config=None
        )
        w = EvaluationWindow(start=0.0, length=1_000.0)
        with pytest.raises(TypeError, match=r"\.trace attribute"):
            w.slice(bundle)

    def test_unwrapped_trace_accepted(self):
        from repro.traces.synthetic import SyntheticTrace

        bundle = SyntheticTrace(
            trace=clustered_trace(), assignment=None, config=None
        )
        w = EvaluationWindow(start=0.0, length=1_000.0)
        assert w.slice(bundle.trace).duration <= 1_000.0

    def test_plain_wrong_type_has_no_hint(self):
        w = EvaluationWindow(start=0.0, length=1_000.0)
        with pytest.raises(TypeError) as excinfo:
            w.slice([1, 2, 3])
        assert "ContactTrace" in str(excinfo.value)
        assert ".trace attribute" not in str(excinfo.value)
