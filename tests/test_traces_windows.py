"""Tests for evaluation-window selection."""

from repro.traces import (
    ContactTrace,
    EvaluationWindow,
    SILENT_TAIL,
    STANDARD_WINDOW,
    active_windows,
    busiest_window,
    make_contact,
)


def clustered_trace():
    """Activity concentrated between t=10000 and t=14000."""
    contacts = [make_contact(0, 1, 100.0, 150.0)]
    t = 10_000.0
    for i in range(30):
        contacts.append(make_contact(i % 3, (i + 1) % 3 + 1, t, t + 50.0))
        t += 120.0
    return ContactTrace(name="c", nodes=(0, 1, 2, 3), contacts=tuple(contacts))


class TestEvaluationWindow:
    def test_bounds(self):
        w = EvaluationWindow(start=500.0, length=100.0)
        assert w.end == 600.0
        assert w.generation_deadline == 100.0 - SILENT_TAIL

    def test_standard_length(self):
        assert EvaluationWindow(start=0.0).length == STANDARD_WINDOW

    def test_slice_shifts_origin(self):
        trace = clustered_trace()
        w = EvaluationWindow(start=10_000.0, length=5_000.0)
        sliced = w.slice(trace)
        assert sliced.start_time >= 0.0
        assert sliced.end_time <= 5_000.0


class TestBusiestWindow:
    def test_finds_cluster(self):
        trace = clustered_trace()
        w = busiest_window(trace, length=4_000.0, step=1_000.0)
        sliced = w.slice(trace)
        assert len(sliced) >= 25

    def test_short_trace_returns_full(self):
        trace = ContactTrace(
            name="s", nodes=(0, 1), contacts=(make_contact(0, 1, 0.0, 10.0),)
        )
        w = busiest_window(trace, length=100_000.0)
        assert w.start == trace.start_time


class TestActiveWindows:
    def test_threshold_filters(self):
        trace = clustered_trace()
        windows = active_windows(
            trace, length=4_000.0, step=1_000.0, min_contacts=10
        )
        assert windows
        for w in windows:
            count = sum(
                1 for c in trace.contacts if c.overlaps(w.start, w.end)
            )
            assert count >= 10

    def test_high_threshold_empty(self):
        trace = clustered_trace()
        assert (
            active_windows(
                trace, length=1_000.0, step=1_000.0, min_contacts=1_000
            )
            == []
        )
