"""Tests for per-node state and memory accounting."""

import pytest

from repro.sim.messages import Message, StoredCopy
from repro.sim.node import NodeState
from repro.sim.results import SimulationResults


def msg(i=1, size=1000):
    return Message(
        msg_id=i, source=0, destination=9, created_at=0.0, ttl=600.0,
        size_bytes=size,
    )


@pytest.fixture
def results():
    return SimulationResults()


@pytest.fixture
def node():
    return NodeState(node_id=3)


class TestBuffer:
    def test_store_marks_seen(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=10.0), 10.0, results)
        assert node.has_copy(1)
        assert node.has_seen(1)

    def test_double_store_rejected(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=10.0), 10.0, results)
        with pytest.raises(ValueError):
            node.store(
                StoredCopy(message=msg(), received_at=11.0), 11.0, results
            )

    def test_drop_keeps_seen(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=10.0), 10.0, results)
        node.drop(1, 20.0, results)
        assert not node.has_copy(1)
        assert node.has_seen(1)

    def test_drop_missing_is_none(self, node, results):
        assert node.drop(99, 0.0, results) is None

    def test_live_copies_filters_expired(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=0.0), 0.0, results)
        assert len(node.live_copies(100.0)) == 1
        assert node.live_copies(600.0) == []

    def test_live_copies_filters_dropped_bodies(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=0.0), 0.0, results)
        node.drop_body(1, 50.0, results)
        assert node.live_copies(100.0) == []
        assert node.has_copy(1)  # record still there


class TestMemoryAccounting:
    def test_byte_seconds_integrated(self, node, results):
        node.store(
            StoredCopy(message=msg(size=1000), received_at=0.0), 0.0, results
        )
        node.drop(1, 10.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(10_000.0)

    def test_body_drop_stops_accumulation(self, node, results):
        node.store(
            StoredCopy(message=msg(size=1000), received_at=0.0), 0.0, results
        )
        node.drop_body(1, 10.0, results)
        node.flush(20.0, results)
        # only the first 10 seconds carry the body
        assert results.memory_byte_seconds[3] == pytest.approx(10_000.0)

    def test_flush_settles(self, node, results):
        node.store(
            StoredCopy(message=msg(size=500), received_at=0.0), 0.0, results
        )
        node.flush(4.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(2_000.0)
        assert node.buffer == {}

    def test_multiple_copies_sum(self, node, results):
        node.store(
            StoredCopy(message=msg(1, size=100), received_at=0.0), 0.0, results
        )
        node.store(
            StoredCopy(message=msg(2, size=300), received_at=0.0), 0.0, results
        )
        node.flush(10.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(4_000.0)

    def test_double_body_drop_is_idempotent(self, node, results):
        node.store(
            StoredCopy(message=msg(size=1000), received_at=0.0), 0.0, results
        )
        node.drop_body(1, 5.0, results)
        node.drop_body(1, 6.0, results)
        node.flush(10.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(5_000.0)
