"""Tests for per-node state and memory accounting."""

import pytest

from repro.sim.messages import Message, StoredCopy
from repro.sim.node import NodeState
from repro.sim.results import SimulationResults


def msg(i=1, size=1000):
    return Message(
        msg_id=i, source=0, destination=9, created_at=0.0, ttl=600.0,
        size_bytes=size,
    )


@pytest.fixture
def results():
    return SimulationResults()


@pytest.fixture
def node():
    return NodeState(node_id=3)


class TestBuffer:
    def test_store_marks_seen(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=10.0), 10.0, results)
        assert node.has_copy(1)
        assert node.has_seen(1)

    def test_double_store_rejected(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=10.0), 10.0, results)
        with pytest.raises(ValueError):
            node.store(
                StoredCopy(message=msg(), received_at=11.0), 11.0, results
            )

    def test_drop_keeps_seen(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=10.0), 10.0, results)
        node.drop(1, 20.0, results)
        assert not node.has_copy(1)
        assert node.has_seen(1)

    def test_drop_missing_is_none(self, node, results):
        assert node.drop(99, 0.0, results) is None

    def test_live_copies_filters_expired(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=0.0), 0.0, results)
        assert len(node.live_copies(100.0)) == 1
        assert node.live_copies(600.0) == []

    def test_live_copies_filters_dropped_bodies(self, node, results):
        node.store(StoredCopy(message=msg(), received_at=0.0), 0.0, results)
        node.drop_body(1, 50.0, results)
        assert node.live_copies(100.0) == []
        assert node.has_copy(1)  # record still there


class TestMemoryAccounting:
    def test_byte_seconds_integrated(self, node, results):
        node.store(
            StoredCopy(message=msg(size=1000), received_at=0.0), 0.0, results
        )
        node.drop(1, 10.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(10_000.0)

    def test_body_drop_stops_accumulation(self, node, results):
        node.store(
            StoredCopy(message=msg(size=1000), received_at=0.0), 0.0, results
        )
        node.drop_body(1, 10.0, results)
        node.flush(20.0, results)
        # only the first 10 seconds carry the body
        assert results.memory_byte_seconds[3] == pytest.approx(10_000.0)

    def test_flush_settles(self, node, results):
        node.store(
            StoredCopy(message=msg(size=500), received_at=0.0), 0.0, results
        )
        node.flush(4.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(2_000.0)
        assert node.buffer == {}

    def test_multiple_copies_sum(self, node, results):
        node.store(
            StoredCopy(message=msg(1, size=100), received_at=0.0), 0.0, results
        )
        node.store(
            StoredCopy(message=msg(2, size=300), received_at=0.0), 0.0, results
        )
        node.flush(10.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(4_000.0)

    def test_double_body_drop_is_idempotent(self, node, results):
        node.store(
            StoredCopy(message=msg(size=1000), received_at=0.0), 0.0, results
        )
        node.drop_body(1, 5.0, results)
        node.drop_body(1, 6.0, results)
        node.flush(10.0, results)
        assert results.memory_byte_seconds[3] == pytest.approx(5_000.0)


class TestRelaySpill:
    def copy(self, i=1, relays=(), received_from=None):
        return StoredCopy(
            message=msg(i, size=1234),
            received_at=12.5,
            received_from=received_from,
            quality=0.75,
            relays=list(relays),
        )

    def test_record_round_trip(self, tmp_path):
        from repro.sim.node import RelaySpill

        spill = RelaySpill(str(tmp_path / "spill.bin"))
        try:
            original = self.copy(7, relays=(3, 9), received_from=2)
            offset = spill.append(original)
            assert spill.read(offset) == original
        finally:
            spill.close()

    def test_none_received_from_round_trips(self, tmp_path):
        from repro.sim.node import RelaySpill

        spill = RelaySpill(str(tmp_path / "spill.bin"))
        try:
            original = self.copy(1, received_from=None)
            restored = spill.read(spill.append(original))
            assert restored.received_from is None
            assert restored == original
        finally:
            spill.close()

    def test_interleaved_records_stay_addressable(self, tmp_path):
        from repro.sim.node import RelaySpill

        spill = RelaySpill(str(tmp_path / "spill.bin"))
        try:
            first = spill.append(self.copy(1, relays=(5,)))
            second = spill.append(self.copy(2))
            assert spill.read(first).message.msg_id == 1
            assert spill.read(second).message.msg_id == 2
            assert spill.records == 2
        finally:
            spill.close()

    def test_anonymous_spill_unlinks_on_close(self):
        import os

        from repro.sim.node import RelaySpill

        spill = RelaySpill()
        path = spill.path
        assert os.path.exists(path)
        spill.close()
        assert not os.path.exists(path)

    def test_policy_validation(self):
        from repro.sim.node import SpillPolicy

        with pytest.raises(ValueError):
            SpillPolicy(keep=0)


class TestSpillableBuffer:
    @pytest.fixture
    def spill(self):
        from repro.sim.node import RelaySpill

        spill = RelaySpill()
        yield spill
        spill.close()

    def spilled_node(self, spill, keep=2):
        node = NodeState(node_id=3)
        node.enable_spill(spill, keep=keep)
        return node

    def fill(self, node, results, count, size=100):
        for i in range(1, count + 1):
            node.store(
                StoredCopy(message=msg(i, size=size), received_at=float(i)),
                float(i),
                results,
            )

    def test_enable_spill_requires_empty_buffer(self, spill, results):
        node = NodeState(node_id=3)
        node.store(StoredCopy(message=msg(), received_at=0.0), 0.0, results)
        with pytest.raises(ValueError):
            node.enable_spill(spill, keep=2)

    def test_store_demotes_oldest_beyond_keep(self, spill, results):
        node = self.spilled_node(spill, keep=2)
        self.fill(node, results, 5)
        assert node.buffer.resident == 2
        assert node.buffer.spilled == 3
        assert len(node.buffer) == 5

    def test_iteration_order_survives_demotion(self, spill, results):
        node = self.spilled_node(spill, keep=2)
        self.fill(node, results, 5)
        # items() promotes everything back and must present the exact
        # insertion order a plain dict buffer would.
        assert [i for i, _ in node.buffer.items()] == [1, 2, 3, 4, 5]
        assert node.buffer.spilled == 0

    def test_promotion_restores_identical_copy(self, spill, results):
        node = self.spilled_node(spill, keep=1)
        self.fill(node, results, 3)
        plain = NodeState(node_id=3)
        self.fill(plain, results, 3)
        for i in (1, 2, 3):
            assert node.buffer[i] == plain.buffer[i]

    def test_live_copies_match_plain_buffer(self, spill, results):
        node = self.spilled_node(spill, keep=1)
        plain = NodeState(node_id=3)
        self.fill(node, results, 4)
        self.fill(plain, results, 4)
        assert node.live_copies(50.0) == plain.live_copies(50.0)
        assert node.relay_candidates(50.0, exclude={2}) == (
            plain.relay_candidates(50.0, exclude={2})
        )

    def test_pop_of_spilled_copy(self, spill, results):
        node = self.spilled_node(spill, keep=1)
        self.fill(node, results, 3)
        assert node.buffer.spilled > 0
        popped = node.buffer.pop(1)
        assert popped.message.msg_id == 1
        assert 1 not in node.buffer
        assert node.buffer.pop(99, None) is None

    def test_spill_ops_are_counted(self, spill, results):
        from repro.perf import COUNTERS

        before = COUNTERS.snapshot()
        node = self.spilled_node(spill, keep=1)
        self.fill(node, results, 3)
        list(node.buffer.items())
        ops = COUNTERS.diff(before)
        assert ops["relay_spill_writes"] == 2
        assert ops["relay_spill_reads"] == 2
