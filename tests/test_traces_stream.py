"""Tests for the streaming ContactSource layer (repro.traces.stream).

Three properties carry the scale axis: the source contract (a declared
universe plus a time-ordered chunk stream), determinism of the lazy
synthetic generator (same config, same stream — and any chunk
regenerable in isolation), and lossless round-trips through the packed
chunked file format.
"""

import pytest

from repro.perf import COUNTERS
from repro.traces import (
    ChunkedFileSource,
    ContactSource,
    ContactTrace,
    InMemorySource,
    StreamModelConfig,
    SyntheticStreamSource,
    ensure_contact_source,
    iter_chunked_contacts,
    make_contact,
    read_chunked_universe,
    source_from_spec,
    write_chunked_contacts,
)

SMALL = StreamModelConfig(
    nodes=200, duration=1_200.0, seed=7, chunk_seconds=300.0
)


@pytest.fixture
def trace():
    return ContactTrace(
        name="t",
        nodes=(0, 1, 2, 3),
        contacts=(
            make_contact(0, 1, 10.0, 20.0),
            make_contact(1, 2, 15.0, 30.0),
            make_contact(2, 3, 40.0, 55.0),
        ),
    )


class TestInMemorySource:
    def test_wraps_trace_bit_identically(self, trace):
        source = InMemorySource(trace)
        assert source.materialized
        assert source.trace is trace
        assert source.name == "t"
        assert source.universe == trace.nodes
        assert source.num_nodes == 4
        assert list(source.iter_contacts()) == list(trace.contacts)

    def test_spec_is_none(self, trace):
        # Ad-hoc traces cannot be reconstructed from a spec, so they
        # must never be folded into a cache key.
        assert InMemorySource(trace).spec() is None

    def test_iter_contacts_counts_ops(self, trace):
        source = InMemorySource(trace)
        before = COUNTERS.snapshot()
        list(source.iter_contacts())
        ops = COUNTERS.diff(before)
        assert ops["stream_chunks"] == 1
        assert ops["stream_contacts"] == 3


class TestEnsureContactSource:
    def test_passthrough(self, trace):
        source = InMemorySource(trace)
        assert ensure_contact_source(source, "test") is source

    def test_wraps_trace_and_bundle(self, trace):
        assert ensure_contact_source(trace, "test").trace is trace

        class Bundle:
            pass

        bundle = Bundle()
        bundle.trace = trace
        assert ensure_contact_source(bundle, "test").trace is trace

    def test_rejects_junk(self):
        with pytest.raises(TypeError, match="caller-name expected"):
            ensure_contact_source(42, "caller-name")


class TestSyntheticStreamSource:
    def test_universe_is_a_range(self):
        source = SyntheticStreamSource(SMALL)
        assert source.universe == range(200)
        assert source.num_nodes == 200

    def test_stream_is_time_ordered_and_valid(self):
        source = SyntheticStreamSource(SMALL)
        contacts = list(source.iter_contacts())
        assert contacts, "default config must produce contacts"
        starts = [c.start for c in contacts]
        assert starts == sorted(starts)
        for c in contacts:
            assert 0 <= c.a < c.b < 200
            assert c.end > c.start >= 0.0

    def test_same_config_same_stream(self):
        first = list(SyntheticStreamSource(SMALL).iter_contacts())
        second = list(SyntheticStreamSource(SMALL).iter_contacts())
        assert first == second

    def test_seed_changes_stream(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=8)
        assert list(SyntheticStreamSource(SMALL).iter_contacts()) != list(
            SyntheticStreamSource(other).iter_contacts()
        )

    def test_chunks_regenerable_out_of_order(self):
        # Each chunk is seeded independently, so reading chunk 2 first
        # must not perturb chunk 0 — the property spill/replay rests on.
        source = SyntheticStreamSource(SMALL)
        in_order = list(source.iter_chunks())
        assert source._chunk(2) == in_order[2]
        assert source._chunk(0) == in_order[0]

    def test_materialize_matches_stream(self):
        source = SyntheticStreamSource(SMALL)
        trace = source.materialize()
        assert trace.nodes == tuple(range(200))
        assert list(trace.contacts) == sorted(source.iter_contacts())

    def test_spec_round_trip(self):
        source = SyntheticStreamSource(SMALL)
        rebuilt = source_from_spec(source.spec())
        assert isinstance(rebuilt, SyntheticStreamSource)
        assert rebuilt.config == SMALL
        assert list(rebuilt.iter_contacts()) == list(source.iter_contacts())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamModelConfig(nodes=1)
        with pytest.raises(ValueError):
            StreamModelConfig(duration=0.0)
        with pytest.raises(ValueError):
            StreamModelConfig(p_leaf=0.9, p_parent=0.2)


class TestChunkedFileFormat:
    def test_round_trip_preserves_chunks(self, tmp_path, trace):
        path = str(tmp_path / "t.g2gc")
        chunks = [list(trace.contacts[:2]), [], list(trace.contacts[2:])]
        written = write_chunked_contacts(path, trace.nodes, chunks)
        assert written == 3
        assert read_chunked_universe(path) == list(trace.nodes)
        # Empty chunks are skipped on write; the others come back with
        # their boundaries intact.
        assert [len(c) for c in iter_chunked_contacts(path)] == [2, 1]
        flat = [c for chunk in iter_chunked_contacts(path) for c in chunk]
        assert flat == list(trace.contacts)

    def test_range_universe_round_trips_compactly(self, tmp_path):
        path = str(tmp_path / "r.g2gc")
        write_chunked_contacts(path, range(1_000_000), [])
        universe = read_chunked_universe(path)
        assert universe == range(1_000_000)

    def test_file_source(self, tmp_path):
        source = SyntheticStreamSource(SMALL)
        path = str(tmp_path / "stream.g2gc")
        write_chunked_contacts(path, source.universe, source.iter_chunks())
        replay = ChunkedFileSource(path)
        assert isinstance(replay, ContactSource)
        assert replay.name == "stream"
        assert replay.universe == range(200)
        assert replay.spec() is None
        assert list(replay.iter_contacts()) == list(source.iter_contacts())
