"""Golden regression tests: one tiny grid point per figure module.

Each paper figure/table gets one representative grid point — the same
protocol, family, and adversary kind that figure sweeps — executed on
a short slice of the synthetic Infocom 05 trace and compared against
committed golden JSON with *exact* equality.  Any runner refactor
that shifts reproduced numbers (a reordered RNG draw, a changed
default, a lossy merge) fails these tests instead of silently bending
the curves.

Regenerate the goldens after an *intentional* semantic change with::

    PYTHONPATH=src python tests/test_experiments_golden.py --regenerate

and commit the diff; the review trail of the golden file documents
every accepted change to reproduced numbers.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import PROTOCOLS, ReplicationPlan, run_point

GOLDEN_PATH = Path(__file__).parent / "golden" / "experiment_points.json"

#: Short runs with an in-window TTL so delivery *and* detection paths
#: both execute; quality_timeframe is shortened likewise so delegation
#: declarations stay verifiable inside the slice.
TINY = {
    "run_length": 1800.0,
    "silent_tail": 600.0,
    "mean_interarrival": 60.0,
    "ttl": 600.0,
    "quality_timeframe": 480.0,
    "heavy_hmac_iterations": 4,
}

PLAN = ReplicationPlan(seeds=(1, 2))

#: One representative grid point per figure module: the protocol that
#: figure plots and an adversary kind it sweeps.  The G2G Delegation
#: cases run a longer window (detection there takes tens of minutes in
#: the paper too) so the goldens pin the detection path, not just
#: delivery.
CASES = {
    "fig3": dict(protocol="epidemic", deviation="dropper", count=5),
    "fig4": dict(protocol="g2g_epidemic", deviation="dropper", count=5),
    "fig5": dict(
        protocol="delegation_last_contact", deviation="liar", count=5
    ),
    "fig7": dict(
        protocol="g2g_delegation_last_contact",
        deviation="cheater",
        count=10,
        overrides={
            "run_length": 3600.0,
            "silent_tail": 1800.0,
            "mean_interarrival": 30.0,
        },
    ),
    "fig8": dict(protocol="g2g_epidemic", deviation=None, count=0),
    "table1": dict(
        protocol="g2g_delegation_last_contact",
        deviation="dropper_with_outsiders",
        count=10,
        overrides={
            "run_length": 3600.0,
            "silent_tail": 1800.0,
            "mean_interarrival": 30.0,
        },
    ),
}


def measure(case):
    """Run one tiny grid point and summarize it as plain JSON data."""
    family, factory = PROTOCOLS[case["protocol"]]
    point = run_point(
        "infocom05",
        family,
        factory,
        deviation=case["deviation"],
        deviation_count=case["count"],
        plan=PLAN,
        config_overrides={**TINY, **case.get("overrides", {})},
    )
    return {
        "success_rate": point.success_rate,
        "mean_delay": point.mean_delay,
        "cost": point.cost,
        "memory_byte_seconds": point.memory_byte_seconds,
        "detection_rate": point.detection_rate,
        "detection_delay": point.detection_delay,
        "detection_delay_after_ttl": point.detection_delay_after_ttl,
        "false_positives": point.false_positives,
        "generated": [run.generated for run in point.runs],
        "delivered": [run.delivered for run in point.runs],
        "detections": [len(run.detections) for run in point.runs],
    }


def load_golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_point(name):
    golden = load_golden()
    assert name in golden, (
        f"no golden entry for {name}; regenerate with "
        f"`python {Path(__file__).name} --regenerate`"
    )
    measured = measure(CASES[name])
    # exact equality: JSON round-trips floats losslessly, and the
    # deterministic merge order makes reruns bit-identical
    assert measured == golden[name]


def test_golden_covers_every_case():
    assert set(load_golden()) == set(CASES)


def regenerate():
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    golden = {name: measure(case) for name, case in sorted(CASES.items())}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} entries)")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
