"""Tests for finite-buffer behavior (the paper assumes infinite)."""

import pytest

from repro.core import G2GEpidemicForwarding
from repro.protocols import EpidemicForwarding
from repro.protocols.base import make_room
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message, StoredCopy
from repro.sim.node import NodeState
from repro.sim.results import SimulationResults
from repro.traces import ContactTrace


def msg(i, source=0, created=0.0):
    return Message(
        msg_id=i, source=source, destination=9, created_at=created,
        ttl=600.0 + i,  # staggered expiry for deterministic victims
    )


class FakeCtx:
    def __init__(self, capacity):
        from repro.sim.eventlog import EventLog

        self.config = SimulationConfig(buffer_capacity=capacity)
        self.results = SimulationResults()
        self.events = EventLog(enabled=False)


class TestMakeRoom:
    def test_no_capacity_no_eviction(self):
        ctx = FakeCtx(None)
        node = NodeState(node_id=1)
        for i in range(5):
            node.store(StoredCopy(message=msg(i), received_at=0.0), 0.0,
                       ctx.results)
        make_room(ctx, node, 1.0)
        assert len(node.buffer) == 5
        assert ctx.results.buffer_evictions == 0

    def test_evicts_earliest_expiring(self):
        ctx = FakeCtx(3)
        node = NodeState(node_id=1)
        for i in range(3):
            node.store(StoredCopy(message=msg(i), received_at=0.0), 0.0,
                       ctx.results)
        make_room(ctx, node, 1.0)
        # msg 0 expires first -> evicted
        assert not node.has_copy(0)
        assert node.has_copy(1) and node.has_copy(2)
        assert ctx.results.buffer_evictions == 1

    def test_own_messages_evicted_first(self):
        ctx = FakeCtx(3)
        node = NodeState(node_id=1)
        # Relayed copies expire earlier than the node's own message,
        # but the own message is risk-free so it must go first.
        node.store(StoredCopy(message=msg(0, source=0), received_at=0.0),
                   0.0, ctx.results)
        node.store(StoredCopy(message=msg(1, source=0), received_at=0.0),
                   0.0, ctx.results)
        node.store(StoredCopy(message=msg(5, source=1), received_at=0.0),
                   0.0, ctx.results)
        make_room(ctx, node, 1.0)
        assert not node.has_copy(5)  # own-sourced victim
        assert node.has_copy(0) and node.has_copy(1)

    def test_proofs_only_records_do_not_count(self):
        ctx = FakeCtx(2)
        node = NodeState(node_id=1)
        for i in range(3):
            node.store(StoredCopy(message=msg(i), received_at=0.0), 0.0,
                       ctx.results)
        node.drop_body(0, 0.5, ctx.results)
        node.drop_body(1, 0.5, ctx.results)
        make_room(ctx, node, 1.0)
        # only one body (msg 2) is buffered: under capacity 2, evict
        # nothing... capacity check is >=, so one body < 2 keeps all.
        assert node.has_copy(2)
        assert ctx.results.buffer_evictions == 0


class TestFullRuns:
    def small_trace(self, mini):
        return mini.trace

    def test_capacity_reduces_delivery(self, mini_synthetic):
        trace = mini_synthetic.trace
        base = dict(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=20.0, ttl=1200.0, seed=4,
        )
        unbounded = Simulation(
            trace, EpidemicForwarding(), SimulationConfig(**base)
        ).run()
        tiny = Simulation(
            trace, EpidemicForwarding(),
            SimulationConfig(buffer_capacity=3, **base),
        ).run()
        assert tiny.success_rate < unbounded.success_rate
        assert tiny.buffer_evictions > 0

    def test_memory_pressure_can_convict_honest_g2g_nodes(
        self, mini_synthetic
    ):
        trace = mini_synthetic.trace
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=15.0, ttl=1200.0, seed=4,
            heavy_hmac_iterations=2, buffer_capacity=2,
        )
        results = Simulation(trace, G2GEpidemicForwarding(), config).run()
        # All nodes are honest; any conviction is a memory-pressure
        # false positive — the documented failure mode.
        assert results.buffer_evictions > 0
        # (no assertion that convictions MUST happen on this small
        # trace; the ablation benchmark demonstrates it at scale)

    def test_unbounded_never_convicts_honest(self, mini_synthetic):
        trace = mini_synthetic.trace
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=15.0, ttl=1200.0, seed=4,
            heavy_hmac_iterations=2,
        )
        results = Simulation(trace, G2GEpidemicForwarding(), config).run()
        assert results.detections == []
        assert results.buffer_evictions == 0
