"""Property-based invariants of G2G Delegation Forwarding.

Post-run inspection over random small traces: in all-honest runs the
wire-level artifacts must be internally consistent — quality chains
monotone, declarations truthful, attachments only ever signed by
genuinely failed candidates, and no PoM ever issued.
"""

import random as _random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import G2GDelegationForwarding
from repro.core.proofs import verify_quality_declaration
from repro.sim import Simulation, SimulationConfig
from repro.traces import ContactTrace, make_contact


@st.composite
def small_traces(draw):
    num_nodes = draw(st.integers(6, 9))
    num_contacts = draw(st.integers(10, 40))
    seed = draw(st.integers(0, 10**6))
    rng = _random.Random(seed)
    contacts = []
    for _ in range(num_contacts):
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        while b == a:
            b = rng.randrange(num_nodes)
        start = rng.uniform(0.0, 5000.0)
        contacts.append(
            make_contact(a, b, start, start + rng.uniform(10, 120))
        )
    return ContactTrace(
        name=f"g2gdel-{seed}",
        nodes=tuple(range(num_nodes)),
        contacts=tuple(contacts),
    )


CONFIG = SimulationConfig(
    run_length=6000.0,
    silent_tail=500.0,
    mean_interarrival=150.0,
    ttl=1500.0,
    quality_timeframe=400.0,
    seed=13,
    heavy_hmac_iterations=2,
)


def run_delegation(trace):
    protocol = G2GDelegationForwarding("last_contact")
    results = Simulation(trace, protocol, CONFIG).run()
    return protocol, results


@settings(max_examples=15, deadline=None)
@given(trace=small_traces())
def test_honest_runs_never_convict(trace):
    _, results = run_delegation(trace)
    assert results.detections == []
    assert results.evicted_at == {}


@settings(max_examples=15, deadline=None)
@given(trace=small_traces())
def test_proof_chains_monotone(trace):
    """Every honest copy's PoR sequence has strictly increasing
    qualities (destination PoRs excepted)."""
    protocol, results = run_delegation(trace)
    ctx = protocol.ctx
    for node in ctx.nodes.values():
        for copy in node.buffer.values():
            destination = copy.message.destination
            chain = [
                por
                for por in sorted(copy.proofs, key=lambda p: p.signed_at)
                if por.taker != destination
            ]
            for por in chain:
                assert por.taker_quality > por.message_quality
            for earlier, later in zip(chain, chain[1:]):
                assert later.message_quality == earlier.taker_quality


@settings(max_examples=15, deadline=None)
@given(trace=small_traces())
def test_attachments_are_signed_failures(trace):
    """Attachments riding with copies verify and concern the true
    destination."""
    protocol, results = run_delegation(trace)
    ctx = protocol.ctx
    verifier = protocol.identities[trace.nodes[0]]
    for node in ctx.nodes.values():
        for copy in node.buffer.values():
            for declaration in copy.attachments:
                assert declaration.destination == copy.message.destination
                assert verify_quality_declaration(
                    verifier,
                    protocol.identities[declaration.declarant].certificate,
                    declaration,
                )


@settings(max_examples=10, deadline=None)
@given(trace=small_traces())
def test_source_records_only_direct_takers(trace):
    protocol, results = run_delegation(trace)
    for node_id, records in protocol._sources.items():
        for msg_id, record in records.items():
            assert record.message.source == node_id
            assert record.is_source
            # takers are distinct and never the source itself
            assert len(record.takers) == len(set(record.takers))
            assert node_id not in record.takers
