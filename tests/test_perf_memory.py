"""Tests for the memory-measurement helpers (repro.perf.memory)."""

import tracemalloc

from repro.perf import current_rss_bytes, measure_peak_alloc, peak_rss_bytes


class TestMeasurePeakAlloc:
    def test_known_allocation_is_measured(self):
        # A single 8 MB bytearray dominates the callable's footprint;
        # the traced peak must land on it (tracemalloc is exact, so
        # only the surrounding bookkeeping adds slack).
        size = 8_000_000

        result, peak = measure_peak_alloc(lambda: len(bytearray(size)))
        assert result == size
        assert size <= peak < size * 1.05

    def test_peak_not_residency(self):
        # Two sequential 4 MB blocks: both are freed before return, so
        # the *peak* sees one block, never the sum.
        size = 4_000_000

        def churn():
            for _ in range(2):
                block = bytearray(size)
                del block
            return True

        result, peak = measure_peak_alloc(churn)
        assert result is True
        assert size <= peak < size * 1.5

    def test_nested_tracing_preserved(self):
        # When the caller already traces, the helper must neither stop
        # tracing nor report the caller's baseline as its own peak.
        tracemalloc.start()
        try:
            outer = bytearray(1_000_000)
            _, peak = measure_peak_alloc(lambda: bytearray(2_000_000))
            assert tracemalloc.is_tracing()
            assert 2_000_000 <= peak < 2_100_000
            assert len(outer) == 1_000_000
        finally:
            tracemalloc.stop()

    def test_zero_allocation_clamped(self):
        _, peak = measure_peak_alloc(lambda: None)
        assert peak >= 0


class TestRssProbes:
    def test_peak_rss_positive_and_monotone(self):
        first = peak_rss_bytes()
        assert first > 0
        ballast = bytearray(1_000_000)
        assert peak_rss_bytes() >= first
        assert len(ballast) == 1_000_000

    def test_current_rss_on_linux(self):
        rss = current_rss_bytes()
        if rss is not None:  # Linux container: always taken
            assert 0 < rss <= peak_rss_bytes()
