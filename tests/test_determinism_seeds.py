"""Seed-determinism regression: identical runs must be bit-identical.

This is the dynamic counterpart of lint rule G2G001 (no global-RNG
draws): after auditing every ``import random`` module and converting
the unseeded fallbacks to fixed-seed instances, two executions of the
same seeded run (on either synthetic trace) must serialize to
byte-identical JSON —
the property all paper-figure comparisons rest on.  If this test ever
fails, some code path started drawing from outside the injected
per-run RNGs.
"""

import hashlib
import json

import pytest

from repro.experiments.parallel import RunRequest, execute_request
from repro.sim.serialize import results_to_dict


def results_digest(results) -> str:
    payload = json.dumps(
        results_to_dict(results), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Shortened cambridge06 setting so the double-runs stay quick while
#: still exercising generation, relay, proof, and detection paths.
QUICK = (
    ("run_length", 1800.0),
    ("silent_tail", 600.0),
    ("mean_interarrival", 60.0),
    ("ttl", 600.0),
    ("heavy_hmac_iterations", 4),
)


class TestSeededRunsAreReproducible:
    # Both synthetic traces: a determinism leak that only manifests on
    # one trace's contact pattern (e.g. a timer/contact tie) would slip
    # past a single-trace check.
    @pytest.mark.parametrize("trace_name", ["cambridge06", "infocom05"])
    def test_identical_seeded_runs_identical_digests(self, trace_name):
        request = RunRequest(
            trace_name=trace_name,
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=1,
            overrides=QUICK,
        )
        first = results_digest(execute_request(request))
        second = results_digest(execute_request(request))
        assert first == second

    def test_identical_adversarial_runs_identical_digests(self):
        # Adversary placement, camouflage draws, and detection all pull
        # randomness; they must pull it from the injected RNGs only.
        request = RunRequest(
            trace_name="cambridge06",
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=2,
            deviation="dropper",
            deviation_count=5,
            overrides=QUICK,
        )
        first = results_digest(execute_request(request))
        second = results_digest(execute_request(request))
        assert first == second

    def test_different_seeds_differ(self):
        # Guard against the digest comparing constants: changing the
        # seed must change the run.
        base = dict(
            trace_name="cambridge06",
            family="epidemic",
            protocol_name="g2g_epidemic",
            overrides=QUICK,
        )
        one = results_digest(execute_request(RunRequest(seed=1, **base)))
        other = results_digest(execute_request(RunRequest(seed=2, **base)))
        assert one != other
