"""Tests for the G2G lint framework, rules, and CLI integration.

The fixture tree under ``tests/fixtures/lint/repro/`` mirrors the
package layout (the framework classifies files by their path below a
``repro`` directory) and contains exactly one deliberate violation per
rule plus a clean file; the shipped source tree itself must lint
clean — that self-check is the PR's standing acceptance gate.
"""

from pathlib import Path

import pytest

from repro.analysis import RULE_REGISTRY, lint_paths, lint_source, render_report
from repro.analysis.framework import (
    LintModule,
    package_relative,
    parse_suppressions,
)
from repro.cli import main
from repro.perf.counters import FIELDS, HOT_MODULE_COUNTERS

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

#: rule id -> (fixture relative to FIXTURES, expected line).
EXPECTED = {
    "G2G001": ("repro/sim/g2g001_global_rng.py", 7),
    "G2G002": ("repro/traces/g2g002_wall_clock.py", 7),
    "G2G003": ("repro/core/g2g003_set_iteration.py", 6),
    "G2G004": ("repro/protocols/g2g004_frozen_mutation.py", 16),
    "G2G005": ("repro/sim/node.py", 1),
    "G2G006": ("repro/metrics/g2g006_broad_except.py", 8),
    "G2G007": ("repro/core/g2g007_private_heap.py", 8),
}


class TestFixtures:
    def test_registry_has_all_rules(self):
        assert sorted(RULE_REGISTRY) == sorted(EXPECTED)

    @pytest.mark.parametrize("rule_id", sorted(EXPECTED))
    def test_each_rule_fires_exactly_where_expected(self, rule_id):
        rel, line = EXPECTED[rule_id]
        violations = lint_paths([FIXTURES / rel])
        assert [
            (v.rule_id, v.line) for v in violations
        ] == [(rule_id, line)], render_report(violations)

    def test_whole_fixture_tree_one_violation_per_rule(self):
        violations = lint_paths([FIXTURES])
        assert sorted(v.rule_id for v in violations) == sorted(EXPECTED)

    def test_clean_fixture_is_clean(self):
        clean = FIXTURES / "repro" / "experiments" / "clean.py"
        assert lint_paths([clean]) == []


class TestSelfCheck:
    def test_shipped_tree_lints_clean(self):
        violations = lint_paths([REPO_ROOT / "src"])
        assert violations == [], render_report(violations)

    def test_hot_module_map_matches_fields(self):
        # Every counter field is owned by at least one hot module, and
        # the map never names a field that does not exist.
        declared = {f for fields in HOT_MODULE_COUNTERS.values() for f in fields}
        assert declared == set(FIELDS)


class TestFramework:
    def test_package_relative(self):
        assert package_relative(Path("src/repro/sim/node.py")) == "sim/node.py"
        assert (
            package_relative(Path("tests/fixtures/lint/repro/core/x.py"))
            == "core/x.py"
        )
        assert package_relative(Path("examples/quickstart.py")) is None

    def test_pragma_parsing(self):
        table = parse_suppressions(
            "x = 1  # g2g: allow(G2G001: seeded elsewhere)\n"
            "y = 2  # g2g: allow(G2G002, G2G003)\n"
            "z = 3  # g2g: allow-broad-except(worker boundary)\n"
            "w = 4  # g2g: allow()\n"
        )
        assert table == {
            1: {"G2G001"},
            2: {"G2G002", "G2G003"},
            3: {"G2G006"},
        }

    def test_pragma_suppresses_same_line_and_next_line(self):
        flagged = "import random\ndef f():\n    return random.random()\n"
        assert [v.rule_id for v in lint_source(flagged, rel="sim/f.py")] == [
            "G2G001"
        ]
        same_line = flagged.replace(
            "random.random()", "random.random()  # g2g: allow(G2G001: test)"
        )
        assert lint_source(same_line, rel="sim/f.py") == []
        line_above = flagged.replace(
            "    return",
            "    # g2g: allow(G2G001: test)\n    return",
        )
        assert lint_source(line_above, rel="sim/f.py") == []

    def test_pragma_reason_may_contain_parens(self):
        # The body parses to the end of the comment, so a justification
        # with its own parens does not truncate the pragma.
        table = parse_suppressions(
            "x = 1  # g2g: allow(G2G002: fallback (rare) path)\n"
        )
        assert table == {1: {"G2G002"}}
        source = (
            "import random\n"
            "def f():\n"
            "    # g2g: allow(G2G001: seeded (per-run) upstream)\n"
            "    return random.random()\n"
        )
        assert lint_source(source, rel="sim/f.py") == []

    def test_wrong_rule_pragma_does_not_suppress(self):
        source = (
            "import random\n"
            "def f():\n"
            "    return random.random()  # g2g: allow(G2G002: wrong id)\n"
        )
        assert [v.rule_id for v in lint_source(source, rel="sim/f.py")] == [
            "G2G001"
        ]

    def test_out_of_scope_package_not_checked(self):
        # metrics/ is outside the seeded-RNG scope: G2G001 stays quiet.
        source = "import random\nx = random.random()\n"
        assert lint_source(source, rel="metrics/plot.py", select=["G2G001"]) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "repro" / "sim"
        bad.mkdir(parents=True)
        (bad / "broken.py").write_text("def f(:\n")
        violations = lint_paths([tmp_path])
        assert [v.rule_id for v in violations] == ["E999"]
        rendered = violations[0].render()
        # path:line:col: E999 message — a normal diagnostic line.
        assert ": E999 file does not parse:" in rendered
        assert rendered.startswith(str(bad / "broken.py") + ":1:")

    def test_syntax_error_fixture(self):
        fixture = REPO_ROOT / "tests" / "fixtures" / "syntax"
        violations = lint_paths([fixture])
        assert [v.rule_id for v in violations] == ["E999"]
        assert violations[0].line == 3

    def test_null_byte_file_reported_not_raised(self, tmp_path):
        bad = tmp_path / "nulls.py"
        bad.write_bytes(b"x = 1\x00\n")
        violations = lint_paths([bad])
        assert [v.rule_id for v in violations] == ["E999"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", select=["G2G999"])


class TestFrameworkHelpers:
    """Direct unit tests for the shared AST helpers."""

    def _tree(self, source):
        import ast

        return ast.parse(source)

    def test_imported_origins_aliases(self):
        from repro.analysis.framework import imported_origins

        tree = self._tree(
            "import random\n"
            "import numpy as np\n"
            "import os.path\n"
            "from random import Random\n"
            "from random import shuffle as mix\n"
        )
        origins = imported_origins(tree)
        assert origins["random"] == "random"
        assert origins["np"] == "numpy"
        # `import os.path` binds the *root* name, mapping it to itself.
        assert origins["os"] == "os"
        assert origins["Random"] == "random.Random"
        assert origins["mix"] == "random.shuffle"

    def test_imported_origins_skips_relative_imports(self):
        from repro.analysis.framework import imported_origins

        tree = self._tree(
            "from . import events\n"
            "from ..perf import counters\n"
            "from .events import Scheduler\n"
        )
        assert imported_origins(tree) == {}

    def test_resolve_call_non_import_root(self):
        import ast

        from repro.analysis.framework import imported_origins, resolve_call

        tree = self._tree(
            "import random\n"
            "rng = random.Random(7)\n"
            "a = rng.randint(0, 5)\n"
            "b = self.rng.random()\n"
            "c = random.randint(0, 5)\n"
            "d = (lambda: 0)()\n"
        )
        origins = imported_origins(tree)
        calls = [n.func for n in ast.walk(tree) if isinstance(n, ast.Call)]
        resolved = [resolve_call(c, origins) for c in calls]
        # Only the chains rooted at an import resolve; local/attribute
        # roots and non-name callables come back None.
        assert "random.Random" in resolved
        assert "random.randint" in resolved
        assert resolved.count(None) == 3

    def test_package_relative_path_ending_at_repro(self):
        # A path whose last component IS the package root has no
        # relative remainder — that is None, not "".
        assert package_relative(Path("src/repro")) is None
        assert package_relative(Path("repro")) is None
        # Nested repro segments classify by the innermost one.
        assert (
            package_relative(Path("repro/outer/repro/sim/x.py"))
            == "sim/x.py"
        )

    def test_function_stack_nesting(self):
        import ast

        from repro.analysis.framework import function_stack

        tree = self._tree(
            "def outer():\n"
            "    def inner():\n"
            "        x = 1\n"
            "    y = 2\n"
            "z = 3\n"
        )
        stacks = {}
        for node, stack in function_stack(tree):
            if isinstance(node, ast.Assign):
                stacks[node.targets[0].id] = stack
        assert stacks == {
            "x": ("outer", "inner"),
            "y": ("outer",),
            "z": (),
        }


class TestRuleDetails:
    def test_seeded_random_and_aliased_import_handled(self):
        ok = "import random\nrng = random.Random(7)\nv = rng.random()\n"
        assert lint_source(ok, rel="core/x.py", select=["G2G001"]) == []
        aliased = "import random as rnd\nv = rnd.randint(0, 5)\n"
        assert [
            v.rule_id
            for v in lint_source(aliased, rel="core/x.py", select=["G2G001"])
        ] == ["G2G001"]
        from_import = "from random import shuffle\nshuffle([])\n"
        assert [
            v.rule_id
            for v in lint_source(from_import, rel="core/x.py", select=["G2G001"])
        ] == ["G2G001"]

    def test_unseeded_random_instance_flagged(self):
        source = "import random\nrng = random.Random()\n"
        violations = lint_source(source, rel="crypto/x.py", select=["G2G001"])
        assert [v.rule_id for v in violations] == ["G2G001"]
        assert "unseeded" in violations[0].message

    def test_secrets_import_flagged_anywhere_in_repro(self):
        source = "import secrets\n"
        assert [
            v.rule_id
            for v in lint_source(source, rel="metrics/x.py", select=["G2G002"])
        ] == ["G2G002"]

    def test_perf_package_exempt_from_wall_clock(self):
        source = "import time\nt = time.perf_counter()\n"
        assert lint_source(source, rel="perf/bench.py", select=["G2G002"]) == []

    def test_sorted_set_iteration_allowed(self):
        source = "for x in sorted(set(items)):\n    pass\n"
        assert lint_source(source, rel="sim/x.py", select=["G2G003"]) == []

    def test_set_comprehension_iteration_flagged(self):
        source = "out = [x for x in {a for a in items}]\n"
        assert [
            v.rule_id
            for v in lint_source(source, rel="sim/x.py", select=["G2G003"])
        ] == ["G2G003"]

    def test_sanctioned_setattr_sites_exempt(self):
        source = "object.__setattr__(artifact, 'signature', sig)\n"
        assert lint_source(source, rel="core/wire.py", select=["G2G004"]) == []
        assert lint_source(source, rel="core/proofs.py", select=["G2G004"]) == []
        assert [
            v.rule_id
            for v in lint_source(source, rel="core/other.py", select=["G2G004"])
        ] == ["G2G004"]

    def test_unknown_counter_flagged(self):
        source = "from repro.perf.counters import COUNTERS\nCOUNTERS.typo_field += 1\n"
        violations = lint_source(source, rel="metrics/x.py", select=["G2G005"])
        assert [v.rule_id for v in violations] == ["G2G005"]
        assert "typo_field" in violations[0].message

    def test_reraising_broad_except_allowed(self):
        source = (
            "try:\n    work()\nexcept BaseException:\n    cleanup()\n    raise\n"
        )
        assert lint_source(source, select=["G2G006"]) == []

    def test_bare_except_flagged(self):
        source = "try:\n    work()\nexcept:\n    pass\n"
        assert [
            v.rule_id for v in lint_source(source, select=["G2G006"])
        ] == ["G2G006"]


class TestCli:
    def test_lint_fixtures_exits_nonzero(self, capsys):
        assert main(["lint", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "7 violations" in out

    def test_lint_shipped_tree_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "no G2G violations" in capsys.readouterr().out

    def test_select_restricts_rules(self, capsys):
        assert main(["lint", str(FIXTURES), "--select", "G2G003"]) == 1
        out = capsys.readouterr().out
        assert "1 violations (1 x G2G003)" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in sorted(RULE_REGISTRY):
            assert rule_id in out

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["lint", "does/not/exist"])
