"""Tests for centrality measures, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.social.centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    rank_nodes,
)
from repro.social.graph import ContactGraph


def graph_from_edges(edges, extra_nodes=()):
    nodes = sorted({n for e in edges for n in e} | set(extra_nodes))
    return ContactGraph(
        nodes=tuple(nodes),
        edges={frozenset(e): (1, 1.0) for e in edges},
    )


STAR = [(0, 1), (0, 2), (0, 3), (0, 4)]
PATH = [(0, 1), (1, 2), (2, 3)]
BRIDGED = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]


class TestDegree:
    def test_star_center(self):
        c = degree_centrality(graph_from_edges(STAR))
        assert c[0] == 1.0
        assert c[1] == pytest.approx(0.25)

    def test_isolated_zero(self):
        c = degree_centrality(graph_from_edges(STAR, extra_nodes=(9,)))
        assert c[9] == 0.0

    def test_matches_networkx(self):
        ours = degree_centrality(graph_from_edges(BRIDGED))
        theirs = nx.degree_centrality(nx.Graph(BRIDGED))
        for node, value in theirs.items():
            assert ours[node] == pytest.approx(value)


class TestCloseness:
    def test_path_ends_lowest(self):
        c = closeness_centrality(graph_from_edges(PATH))
        assert c[1] > c[0]
        assert c[2] > c[3]

    def test_matches_networkx(self):
        ours = closeness_centrality(graph_from_edges(BRIDGED))
        theirs = nx.closeness_centrality(nx.Graph(BRIDGED))
        for node, value in theirs.items():
            assert ours[node] == pytest.approx(value)

    def test_disconnected_component_scaled(self):
        edges = [(0, 1), (2, 3)]
        ours = closeness_centrality(graph_from_edges(edges))
        theirs = nx.closeness_centrality(nx.Graph(edges))
        for node, value in theirs.items():
            assert ours[node] == pytest.approx(value)

    def test_isolated_zero(self):
        c = closeness_centrality(graph_from_edges(PATH, extra_nodes=(9,)))
        assert c[9] == 0.0


class TestBetweenness:
    def test_bridge_node_highest(self):
        c = betweenness_centrality(graph_from_edges(BRIDGED))
        assert max(c, key=c.get) in (2, 3)

    def test_matches_networkx(self):
        ours = betweenness_centrality(graph_from_edges(BRIDGED))
        theirs = nx.betweenness_centrality(nx.Graph(BRIDGED))
        for node, value in theirs.items():
            assert ours[node] == pytest.approx(value)

    def test_star_matches_networkx(self):
        ours = betweenness_centrality(graph_from_edges(STAR))
        theirs = nx.betweenness_centrality(nx.Graph(STAR))
        for node, value in theirs.items():
            assert ours[node] == pytest.approx(value)

    def test_leaf_zero(self):
        c = betweenness_centrality(graph_from_edges(STAR))
        assert c[1] == 0.0


class TestRanking:
    def test_rank_order(self):
        c = {1: 0.5, 2: 0.9, 3: 0.5}
        assert rank_nodes(c) == [2, 1, 3]

    def test_on_trace_graph(self, mini_synthetic):
        graph = ContactGraph.from_trace(mini_synthetic.trace)
        ranking = rank_nodes(degree_centrality(graph))
        assert len(ranking) == mini_synthetic.trace.num_nodes
