"""Tests for trace statistics."""

import pytest

from repro.traces import (
    ContactTrace,
    SummaryStats,
    TraceProfile,
    contact_durations,
    contact_rate_matrix,
    contacts_per_pair,
    inter_contact_times,
    make_contact,
    pairwise_contacts,
    reencounter_probability,
)


class TestSummaryStats:
    def test_empty(self):
        s = SummaryStats.of([])
        assert s.count == 0 and s.mean == 0.0

    def test_basic(self):
        s = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.maximum == 4.0

    def test_p90(self):
        s = SummaryStats.of(list(map(float, range(1, 11))))
        assert s.p90 == pytest.approx(9.1)


class TestDurations:
    def test_durations(self, pair_trace):
        assert contact_durations(pair_trace) == [100.0, 100.0, 100.0]


class TestPairwise:
    def test_grouping(self, line_trace):
        pairs = pairwise_contacts(line_trace)
        assert len(pairs[frozenset((0, 1))]) == 2
        assert len(pairs[frozenset((2, 3))]) == 1

    def test_counts(self, line_trace):
        counts = contacts_per_pair(line_trace)
        assert counts[frozenset((1, 2))] == 2


class TestInterContact:
    def test_gaps(self, pair_trace):
        gaps = inter_contact_times(pair_trace)
        assert gaps == [800.0, 1900.0]

    def test_single_contacts_have_no_gap(self):
        trace = ContactTrace(
            name="t", nodes=(0, 1), contacts=(make_contact(0, 1, 0.0, 1.0),)
        )
        assert inter_contact_times(trace) == []


class TestReencounter:
    def test_all_reencountered(self):
        # Pair meets at 0 and 50; window large enough.
        trace = ContactTrace(
            name="t",
            nodes=(0, 1),
            contacts=(
                make_contact(0, 1, 0.0, 10.0),
                make_contact(0, 1, 50.0, 60.0),
                make_contact(0, 1, 5000.0, 5010.0),
            ),
        )
        # First contact re-encountered within 100s; second not (gap
        # 4940 > 100); third excluded (no room before trace end).
        assert reencounter_probability(trace, within=100.0) == 0.5

    def test_empty_trace(self):
        trace = ContactTrace(name="t", nodes=(0, 1), contacts=())
        assert reencounter_probability(trace, within=60.0) == 0.0


class TestProfileAndMatrix:
    def test_profile(self, line_trace):
        profile = TraceProfile.of(line_trace)
        assert profile.num_nodes == 4
        assert profile.num_contacts == 5
        assert profile.distinct_pairs == 3
        assert 0 < profile.pair_coverage <= 1
        assert "trace line" in profile.describe()

    def test_matrix_symmetry(self, line_trace):
        matrix, index = contact_rate_matrix(line_trace)
        assert matrix.shape == (4, 4)
        assert (matrix == matrix.T).all()
        assert matrix[index[0], index[1]] == 2
        assert matrix[index[0], index[3]] == 0
