"""Tests for the geometric (HCMM-style) mobility trace generator."""

import pytest

from repro.traces.mobility import (
    MobilityConfig,
    MobilitySimulator,
    lab_config,
    simulate_mobility,
)


def tiny_config(**overrides):
    base = dict(
        name="tiny",
        community_sizes=(4, 4),
        duration=1800.0,
        area_side=400.0,
        grid=2,
        radio_range=40.0,
        time_step=10.0,
    )
    base.update(overrides)
    return MobilityConfig(**base)


class TestConfigValidation:
    def test_empty_communities(self):
        with pytest.raises(ValueError):
            tiny_config(community_sizes=())

    def test_more_communities_than_cells(self):
        with pytest.raises(ValueError):
            tiny_config(community_sizes=(1, 1, 1, 1, 1), grid=2)

    def test_bad_radio_range(self):
        with pytest.raises(ValueError):
            tiny_config(radio_range=0.0)
        with pytest.raises(ValueError):
            tiny_config(radio_range=1000.0)

    def test_bad_speeds(self):
        with pytest.raises(ValueError):
            tiny_config(speed_min=2.0, speed_max=1.0)

    def test_bad_bias(self):
        with pytest.raises(ValueError):
            tiny_config(home_bias=1.5)

    def test_cell_side(self):
        assert tiny_config().cell_side == 200.0


class TestGeneration:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate_mobility(tiny_config(), seed=3)

    def test_deterministic(self, result):
        again = simulate_mobility(tiny_config(), seed=3)
        assert again.trace.contacts == result.trace.contacts

    def test_seed_matters(self, result):
        other = simulate_mobility(tiny_config(), seed=4)
        assert other.trace.contacts != result.trace.contacts

    def test_node_universe(self, result):
        assert result.trace.num_nodes == 8

    def test_contacts_within_duration(self, result):
        for c in result.trace:
            assert 0.0 <= c.start < c.end <= 1800.0

    def test_contact_granularity(self, result):
        # contacts close on sampled steps: durations are multiples of
        # the 10 s step (subject to the end-of-run clamp).
        for c in result.trace:
            if c.end < 1800.0:
                assert c.duration % 10.0 == pytest.approx(0.0, abs=1e-6)

    def test_some_contacts_exist(self, result):
        assert len(result.trace) > 0

    def test_assignment_attached(self, result):
        assert set(result.assignment.community_of) == set(range(8))
        assert all(
            s == 1.0 for s in result.assignment.sociability.values()
        )


class TestSocialStructure:
    def test_intra_community_contacts_dominate(self):
        st = simulate_mobility(lab_config(hours=3.0), seed=2)
        intra = inter = 0
        for c in st.trace:
            if st.assignment.same_community(c.a, c.b):
                intra += 1
            else:
                inter += 1
        # per-pair normalization: fewer intra pairs exist than inter.
        sizes = st.config.community_sizes
        intra_pairs = sum(s * (s - 1) // 2 for s in sizes)
        total_pairs = st.trace.num_nodes * (st.trace.num_nodes - 1) // 2
        inter_pairs = total_pairs - intra_pairs
        assert intra / intra_pairs > inter / inter_pairs

    def test_home_cells_distinct(self):
        sim = MobilitySimulator(tiny_config(), seed=1)
        cells = list(sim.home_cell.values())
        assert len(set(cells)) == len(cells)

    def test_travelers_sampled(self):
        config = tiny_config(traveler_fraction=0.25)
        sim = MobilitySimulator(config, seed=1)
        assert len(sim.travelers) == 2


class TestProtocolInterop:
    def test_epidemic_runs_on_mobility_trace(self):
        from repro.protocols import EpidemicForwarding
        from repro.sim import Simulation, SimulationConfig

        st = simulate_mobility(lab_config(hours=3.0), seed=5)
        config = SimulationConfig(
            run_length=3 * 3600.0, silent_tail=3600.0,
            mean_interarrival=60.0, ttl=1800.0, seed=1,
        )
        results = Simulation(st.trace, EpidemicForwarding(), config).run()
        assert results.delivered > 0

    def test_g2g_detects_droppers_on_mobility_trace(self):
        from repro.adversaries import strategy_population
        from repro.core import G2GEpidemicForwarding
        from repro.sim import Simulation, SimulationConfig

        st = simulate_mobility(lab_config(hours=3.0), seed=5)
        strategies, bad = strategy_population(
            st.trace.nodes, "dropper", 4, seed=1
        )
        config = SimulationConfig(
            run_length=3 * 3600.0, silent_tail=3600.0,
            mean_interarrival=60.0, ttl=1800.0, seed=1,
            heavy_hmac_iterations=2,
        )
        results = Simulation(
            st.trace, G2GEpidemicForwarding(), config, strategies=strategies
        ).run()
        assert results.detection_rate(bad) > 0
        assert results.false_positives(bad) == set()


class TestMobilityProperties:
    """Hypothesis: positions bounded, contacts symmetric-free, repeatable."""

    def test_positions_stay_in_area(self):
        from repro.traces.mobility import MobilitySimulator

        config = tiny_config(duration=600.0)
        sim = MobilitySimulator(config, seed=9)
        for t in range(0, 600, 10):
            for node in range(config.num_nodes):
                sim._advance(node, float(t), config.time_step)
        for motion in sim._motions.values():
            assert -1.0 <= motion.x <= config.area_side + 1.0
            assert -1.0 <= motion.y <= config.area_side + 1.0

    def test_no_self_contacts(self):
        st = simulate_mobility(tiny_config(), seed=11)
        assert all(c.a != c.b for c in st.trace)

    def test_contacts_sorted_and_disjoint_per_pair(self):
        from repro.traces.stats import pairwise_contacts

        st = simulate_mobility(tiny_config(), seed=11)
        for contacts in pairwise_contacts(st.trace).values():
            for prev, nxt in zip(contacts, contacts[1:]):
                assert nxt.start >= prev.end

    def test_larger_radio_range_more_contact_time(self):
        small = simulate_mobility(tiny_config(radio_range=20.0), seed=3)
        large = simulate_mobility(tiny_config(radio_range=80.0), seed=3)
        total_small = sum(c.duration for c in small.trace)
        total_large = sum(c.duration for c in large.trace)
        assert total_large > total_small
