"""Tests for H(), HMAC, and the heavy HMAC."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    DEFAULT_HEAVY_ITERATIONS,
    DIGEST_SIZE,
    HeavyHmac,
    constant_time_equal,
    digest,
    hexdigest,
    hmac_digest,
)


class TestDigest:
    def test_size(self):
        assert len(digest(b"abc")) == DIGEST_SIZE

    def test_deterministic(self):
        assert digest(b"abc") == digest(b"abc")

    def test_distinct_inputs(self):
        assert digest(b"abc") != digest(b"abd")

    def test_hexdigest_matches(self):
        assert bytes.fromhex(hexdigest(b"abc")) == digest(b"abc")

    def test_known_vector(self):
        # SHA-256("abc") — FIPS 180-2 test vector.
        assert hexdigest(b"abc") == (
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad"
        )


class TestHmac:
    def test_key_matters(self):
        assert hmac_digest(b"k1", b"m") != hmac_digest(b"k2", b"m")

    def test_message_matters(self):
        assert hmac_digest(b"k", b"m1") != hmac_digest(b"k", b"m2")

    def test_known_vector(self):
        # RFC 4231 test case 2.
        assert hmac_digest(b"Jefe", b"what do ya want for nothing?").hex() == (
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843"
        )


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"abc", b"abc")

    def test_unequal(self):
        assert not constant_time_equal(b"abc", b"abd")

    def test_length_mismatch(self):
        assert not constant_time_equal(b"abc", b"abcd")


class TestHeavyHmac:
    def test_compute_verify(self):
        h = HeavyHmac(iterations=10)
        mac = h.compute(b"message", b"seed")
        assert h.verify(b"message", b"seed", mac)

    def test_wrong_seed_fails(self):
        h = HeavyHmac(iterations=10)
        mac = h.compute(b"message", b"seed")
        assert not h.verify(b"message", b"other-seed", mac)

    def test_wrong_message_fails(self):
        h = HeavyHmac(iterations=10)
        mac = h.compute(b"message", b"seed")
        assert not h.verify(b"other", b"seed", mac)

    def test_iterations_change_output(self):
        a = HeavyHmac(iterations=5).compute(b"m", b"s")
        b = HeavyHmac(iterations=6).compute(b"m", b"s")
        assert a != b

    def test_work_accounting(self):
        h = HeavyHmac(iterations=7)
        h.compute(b"m", b"s")
        h.compute(b"m", b"t")
        assert h.work_performed == 14

    def test_verify_counts_work(self):
        h = HeavyHmac(iterations=3)
        mac = h.compute(b"m", b"s")
        h.verify(b"m", b"s", mac)
        assert h.work_performed == 6

    def test_default_iterations(self):
        assert HeavyHmac().iterations == DEFAULT_HEAVY_ITERATIONS

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            HeavyHmac(iterations=0)

    @given(st.binary(max_size=64), st.binary(min_size=1, max_size=32))
    def test_deterministic_property(self, message, seed):
        h1 = HeavyHmac(iterations=3)
        h2 = HeavyHmac(iterations=3)
        assert h1.compute(message, seed) == h2.compute(message, seed)
