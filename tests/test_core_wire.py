"""Tests for the wire-level artifact encodings."""

from repro.core.wire import (
    ProofOfRelay,
    QualityDeclaration,
    RelayAccept,
    RelayRequest,
    SealedMessage,
    StorageChallenge,
    StorageProof,
)


class TestPayloadDomainSeparation:
    """Signatures over one artifact kind can never verify as another."""

    def test_all_payloads_distinct(self):
        h = b"\x01" * 32
        artifacts = [
            RelayRequest(msg_hash=h, sender=1),
            RelayAccept(msg_hash=h, relay=1),
            ProofOfRelay(msg_hash=h, giver=1, taker=1),
            StorageChallenge(msg_hash=h, challenger=1, seed=b"s"),
            StorageProof(msg_hash=h, prover=1, seed=b"s", mac=b"m"),
            QualityDeclaration(
                declarant=1, destination=1, value=0.0, frame=0,
                declared_at=0.0,
            ),
        ]
        payloads = [a.payload() for a in artifacts]
        assert len(set(payloads)) == len(payloads)

    def test_por_payload_covers_all_fields(self):
        base = dict(
            msg_hash=b"h", giver=1, taker=2, quality_subject=3,
            message_quality=1.0, taker_quality=2.0, signed_at=5.0,
        )
        reference = ProofOfRelay(**base).payload()
        for field, new in [
            ("msg_hash", b"H"),
            ("giver", 9),
            ("taker", 9),
            ("quality_subject", 9),
            ("message_quality", 9.0),
            ("taker_quality", 9.0),
            ("signed_at", 9.0),
        ]:
            changed = dict(base, **{field: new})
            assert ProofOfRelay(**changed).payload() != reference

    def test_declaration_payload_covers_value_and_frame(self):
        base = dict(
            declarant=1, destination=2, value=3.0, frame=4, declared_at=5.0
        )
        reference = QualityDeclaration(**base).payload()
        assert (
            QualityDeclaration(**dict(base, value=0.0)).payload() != reference
        )
        assert (
            QualityDeclaration(**dict(base, frame=5)).payload() != reference
        )


class TestSealedMessage:
    def test_content_hash_stable(self):
        m = SealedMessage(
            msg_id=1, destination=2, ciphertext=b"ct", source_signature=b"sig"
        )
        assert m.content_hash() == m.content_hash()

    def test_hash_covers_ciphertext(self):
        a = SealedMessage(
            msg_id=1, destination=2, ciphertext=b"ct", source_signature=b"s"
        )
        b = SealedMessage(
            msg_id=1, destination=2, ciphertext=b"CT", source_signature=b"s"
        )
        assert a.content_hash() != b.content_hash()

    def test_destination_in_clear(self):
        m = SealedMessage(
            msg_id=1, destination=42, ciphertext=b"ct", source_signature=b"s"
        )
        assert m.destination == 42
