"""Tests for distribution fitting, using scipy as an oracle."""

import random

import numpy as np
import pytest
from scipy import stats as sstats

from repro.traces.fitting import (
    analyze_trace,
    empirical_ccdf,
    fit_exponential,
    fit_pareto_tail,
    ks_distance,
)


@pytest.fixture(scope="module")
def exp_sample():
    rng = np.random.default_rng(7)
    return rng.exponential(scale=120.0, size=2000).tolist()


@pytest.fixture(scope="module")
def pareto_sample():
    rng = np.random.default_rng(8)
    # Pareto with alpha=1.5, xmin=10
    return (10.0 * (1.0 + rng.pareto(1.5, size=2000))).tolist()


class TestExponentialFit:
    def test_recovers_rate(self, exp_sample):
        fit = fit_exponential(exp_sample)
        assert fit.mean == pytest.approx(120.0, rel=0.1)

    def test_ccdf(self):
        fit = fit_exponential([1.0, 1.0, 1.0])
        assert fit.ccdf(0.0) == 1.0
        assert fit.ccdf(1.0) == pytest.approx(np.exp(-1.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([])
        with pytest.raises(ValueError):
            fit_exponential([0.0, -1.0])


class TestParetoFit:
    def test_recovers_alpha(self, pareto_sample):
        fit = fit_pareto_tail(pareto_sample, xmin=10.0)
        assert fit.alpha == pytest.approx(1.5, rel=0.15)

    def test_ccdf_below_xmin(self, pareto_sample):
        fit = fit_pareto_tail(pareto_sample, xmin=10.0)
        assert fit.ccdf(5.0) == 1.0
        assert 0 < fit.ccdf(100.0) < 0.2

    def test_tiny_tail_rejected(self):
        with pytest.raises(ValueError):
            fit_pareto_tail([1.0, 2.0, 3.0], xmin=2.5)


class TestCcdfAndKs:
    def test_empirical_ccdf_monotone(self, exp_sample):
        ccdf = empirical_ccdf(exp_sample[:100])
        values = [p for _, p in ccdf]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(0.0)

    def test_ks_matches_scipy(self, exp_sample):
        fit = fit_exponential(exp_sample)
        ours = ks_distance(exp_sample, fit.ccdf)
        theirs = sstats.kstest(
            exp_sample, sstats.expon(scale=fit.mean).cdf
        ).statistic
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_ks_separates_families(self, exp_sample, pareto_sample):
        exp_fit = fit_exponential(exp_sample)
        # The exponential model fits its own data far better than the
        # Pareto data.
        assert ks_distance(exp_sample, exp_fit.ccdf) < 0.05
        assert ks_distance(
            pareto_sample, fit_exponential(pareto_sample).ccdf
        ) > 0.1

    def test_ks_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], lambda x: 1.0)


class TestTraceAnalysis:
    def test_report_on_synthetic(self, mini_synthetic):
        report = analyze_trace(mini_synthetic.trace)
        assert report.trace == "mini"
        assert report.inter_contact_exp.n > 0
        assert 0 <= report.inter_contact_ks_exp <= 1
        assert "distribution fits" in report.describe()

    def test_synthetic_gaps_not_wildly_nonexponential(self, mini_synthetic):
        """The generator mixes exponentials, so KS should be modest."""
        report = analyze_trace(mini_synthetic.trace)
        assert report.inter_contact_ks_exp < 0.35
