"""Tests for the synthetic community-structured trace generator."""

import pytest

from repro.traces.synthetic import (
    ActivityWindow,
    CommunityModelConfig,
    expected_pair_rates,
    generate,
)


def small_config(**overrides):
    base = dict(
        name="test",
        community_sizes=(4, 4),
        duration=4 * 3600.0,
        base_rate=1.0 / 900.0,
        inter_factor=0.2,
        traveler_fraction=0.25,
        sociability_sigma=0.3,
        mean_contact_duration=60.0,
        min_contact_duration=10.0,
    )
    base.update(overrides)
    return CommunityModelConfig(**base)


class TestConfigValidation:
    def test_empty_communities_rejected(self):
        with pytest.raises(ValueError):
            small_config(community_sizes=())

    def test_nonpositive_community_rejected(self):
        with pytest.raises(ValueError):
            small_config(community_sizes=(4, 0))

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            small_config(duration=0.0)

    def test_bad_traveler_fraction_rejected(self):
        with pytest.raises(ValueError):
            small_config(traveler_fraction=1.5)

    def test_num_nodes(self):
        assert small_config(community_sizes=(3, 5, 2)).num_nodes == 10


class TestActivityWindow:
    def test_valid(self):
        w = ActivityWindow(9.0, 17.0)
        assert w.start_s == 9 * 3600.0
        assert w.end_s == 17 * 3600.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            ActivityWindow(17.0, 9.0)

    def test_out_of_day_rejected(self):
        with pytest.raises(ValueError):
            ActivityWindow(9.0, 25.0)


class TestGeneration:
    def test_deterministic(self):
        a = generate(small_config(), seed=3)
        b = generate(small_config(), seed=3)
        assert a.trace.contacts == b.trace.contacts

    def test_seed_changes_output(self):
        a = generate(small_config(), seed=3)
        b = generate(small_config(), seed=4)
        assert a.trace.contacts != b.trace.contacts

    def test_node_universe(self):
        st = generate(small_config(), seed=1)
        assert st.trace.num_nodes == 8
        assert set(st.assignment.community_of) == set(range(8))

    def test_contacts_within_duration(self):
        st = generate(small_config(), seed=1)
        assert all(
            0 <= c.start < c.end <= st.config.duration for c in st.trace
        )

    def test_min_contact_duration_respected(self):
        st = generate(small_config(), seed=1)
        # Contacts may be clipped at the trace end; all others respect
        # the floor.
        for c in st.trace:
            if c.end < st.config.duration:
                assert c.duration >= st.config.min_contact_duration

    def test_communities_sized_correctly(self):
        st = generate(small_config(community_sizes=(3, 5)), seed=1)
        assert len(st.assignment.members(0)) == 3
        assert len(st.assignment.members(1)) == 5

    def test_traveler_count(self):
        st = generate(small_config(traveler_fraction=0.25), seed=1)
        assert len(st.assignment.travelers) == 2

    def test_intra_denser_than_inter(self):
        st = generate(small_config(), seed=2)
        intra = inter = 0
        for c in st.trace:
            if st.assignment.same_community(c.a, c.b):
                intra += 1
            else:
                inter += 1
        # 12 intra pairs at full rate vs 16 inter pairs at 20% rate
        # (some boosted): intra contacts should dominate per pair.
        assert intra / 12 > inter / 16

    def test_expected_rates_structure(self):
        st = generate(small_config(), seed=2)
        rates = expected_pair_rates(st.config, st.assignment)
        assert len(rates) == 8 * 7 // 2
        # Intra rates exceed inter rates for equal-sociability pairs;
        # check the aggregate ordering instead of per-pair.
        intra = [
            r
            for (i, j), r in rates.items()
            if st.assignment.same_community(i, j)
        ]
        inter = [
            r
            for (i, j), r in rates.items()
            if not st.assignment.same_community(i, j)
        ]
        assert sum(intra) / len(intra) > sum(inter) / len(inter)

    def test_activity_windows_confine_starts(self):
        config = small_config(
            duration=2 * 86_400.0,
            activity_windows=(ActivityWindow(9.0, 17.0),),
        )
        st = generate(config, seed=5)
        assert len(st.trace) > 0
        for c in st.trace:
            seconds_of_day = c.start % 86_400.0
            assert 9 * 3600.0 <= seconds_of_day < 17 * 3600.0 + 601

    def test_sociability_disabled(self):
        st = generate(small_config(sociability_sigma=0.0), seed=1)
        assert all(v == 1.0 for v in st.assignment.sociability.values())
