"""Mini counter schema: one field, one hot-module declaration.

``sim/node.py`` is declared to increment ``signatures`` but never
does, and increments ``bogus`` which is not in FIELDS — both
directions of G2G009 fire.
"""

FIELDS = ("signatures",)

HOT_MODULE_COUNTERS = {
    "sim/node.py": ("signatures",),
}
