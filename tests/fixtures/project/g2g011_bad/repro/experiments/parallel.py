"""Cached spec with a field that never reaches the key — G2G011."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunRequest:
    seed: int
    deviation: str
    secret_knob: float

    def config(self):
        return {"seed": self.seed, "deviation": self.deviation}

    def cache_key(self):
        return repr(sorted(self.config().items()))
