"""Facade with drift: a public def missing from the pinned __all__."""

__all__ = ["run"]


def run():
    return None


def extra_entry_point():
    return None
