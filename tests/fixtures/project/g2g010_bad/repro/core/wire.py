"""Core module with a forbidden upward import — the G2G010 shape."""

from repro.experiments.cache import run_key  # noqa: F401


def encode(artifact):
    return bytes(artifact)
