"""Core module reaching the sink one hop away — the G2G008 shape."""

from ..perf.util import stamp


def step():
    return stamp()
