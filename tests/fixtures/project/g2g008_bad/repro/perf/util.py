"""Helper in the G2G002-exempt perf package: a direct wall-clock read.

The single-file rules stay quiet here; the taint rule must still see
the sink and follow it into the core.
"""

import time


def stamp():
    return time.time()
