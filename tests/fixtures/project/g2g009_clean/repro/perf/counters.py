"""Clean counterpart: declaration and increments agree both ways."""

FIELDS = ("signatures",)

HOT_MODULE_COUNTERS = {
    "sim/node.py": ("signatures",),
}
