from ..perf.counters import COUNTERS  # noqa: F401 (fixture shape)


def hot_loop():
    COUNTERS.signatures += 1
