"""Clean counterpart: every field flows into the key via a helper."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunRequest:
    seed: int
    deviation: str
    secret_knob: float

    def config(self):
        return {
            "seed": self.seed,
            "deviation": self.deviation,
            "secret_knob": self.secret_knob,
        }

    def cache_key(self):
        return repr(sorted(self.config().items()))
