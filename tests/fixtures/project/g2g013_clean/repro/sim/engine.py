"""Clean counterpart: contacts stream through the source choke point."""


def run(source):
    total = 0.0
    for contact in source.iter_contacts():
        total += contact.end - contact.start
    return total
