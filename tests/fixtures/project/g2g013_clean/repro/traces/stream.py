"""Trace-layer module: its own .contacts reads are sanctioned."""


def one_chunk(trace):
    return list(trace.contacts)
