"""Materializes the contact list outside the trace layer — G2G013."""


def run(trace):
    total = 0.0
    for contact in trace.contacts:
        total += contact.end - contact.start
    return total
