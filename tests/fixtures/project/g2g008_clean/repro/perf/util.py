"""Clean counterpart: the helper takes its clock from the caller."""


def stamp(now):
    return float(now)
