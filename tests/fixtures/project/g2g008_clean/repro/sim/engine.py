"""Core module whose determinism is discharged by a context parameter."""

from ..perf.util import stamp


def step(ctx):
    return stamp(ctx.now)
