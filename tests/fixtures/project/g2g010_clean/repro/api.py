"""Facade whose public surface exactly matches its pinned __all__."""

__all__ = ["run"]


def run():
    return None


def _helper():
    return None
