"""Clean counterpart: the core only imports sideways/down."""

from repro.crypto import provider  # noqa: F401


def encode(artifact):
    return bytes(artifact)
