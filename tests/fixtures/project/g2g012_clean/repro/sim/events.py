"""Clean counterpart: event-time math lives in the scheduler itself."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    time: float
    kind: int


def drain(queue, horizon):
    out = []
    for event in queue:
        if event.time > horizon:
            break
        out.append(event)
    out.append(Event(time=horizon, kind=0))
    return out
