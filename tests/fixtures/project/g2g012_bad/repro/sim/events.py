"""Mini scheduler module for the G2G012 fixtures."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Event:
    time: float
    kind: int
