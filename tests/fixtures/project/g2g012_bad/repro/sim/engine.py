"""Raw event-time comparison and Event construction outside the
scheduler — both G2G012 shapes."""

from .events import Event


def drain(queue, horizon):
    out = []
    for event in queue:
        if event.time > horizon:
            break
        out.append(event)
    out.append(Event(time=horizon, kind=0))
    return out
