"""Deliberately unparseable fixture: `repro lint` must report E999."""

def f(:
    pass
