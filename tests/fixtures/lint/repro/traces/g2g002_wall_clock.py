"""Fixture: reads the wall clock inside traces/ (G2G002)."""

import time


def timestamped_name(prefix: str) -> str:
    return f"{prefix}-{time.time()}"  # line 7: the violation
