"""Fixture: a hot-package module keeping a private timer heap.

Deliberate G2G007 violation — deferred work in ``core/`` must route
through the run scheduler (``SimulationContext.schedule``), not a
module-local ``heapq``.
"""

import heapq


def schedule_purge(heap, deadline, msg_id):
    heapq.heappush(heap, (deadline, msg_id))
