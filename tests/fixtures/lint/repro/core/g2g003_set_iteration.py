"""Fixture: iterates a set expression in a hot module (G2G003)."""


def visit_all(neighbors: list) -> list:
    order = []
    for node in set(neighbors):  # line 6: the violation
        order.append(node)
    return order


def visit_sorted(neighbors: list) -> list:
    # The sanctioned form: sorted() pins the order.
    return [node for node in sorted(set(neighbors))]
