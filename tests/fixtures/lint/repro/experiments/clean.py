"""Fixture: a clean module — sanctioned patterns and valid pragmas.

Every construct here is either genuinely allowed (seeded RNG, sorted
set iteration, narrow excepts) or carries a justification pragma; the
linter must report nothing for this file.
"""

import random
import time


def seeded_draws(seed: int, n: int) -> list:
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


def ordered_union(a: set, b: set) -> list:
    return [x for x in sorted(a | b)]


def wall_time() -> float:
    return time.time()  # g2g: allow(G2G002: fixture demonstrates the pragma)


def tolerant_parse(text: str) -> int:
    try:
        return int(text)
    # g2g: allow-broad-except(fixture demonstrates the pragma on the line above)
    except Exception:
        return 0
