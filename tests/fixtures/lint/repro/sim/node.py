"""Fixture: the sim/node.py hot module with its counters ripped out.

repro.perf.counters.HOT_MODULE_COUNTERS declares that sim/node.py
increments ``buffer_scans`` and ``buffer_scanned``; this copy only
increments the first, so G2G005 must flag the module (at line 1).
"""

from repro.perf.counters import COUNTERS


def relay_candidates(buffer: list) -> list:
    COUNTERS.buffer_scans += 1
    return list(buffer)
