"""Fixture: draws from the process-global RNG inside sim/ (G2G001)."""

import random


def jitter(base: float) -> float:
    return base + random.random()  # line 7: the violation
