"""Fixture: mutates a frozen artifact outside the sanctioned sites (G2G004)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class FakeProof:
    signature: bytes = b""

    def __post_init__(self) -> None:
        # Allowed: frozen-dataclass self-construction.
        object.__setattr__(self, "signature", b"")


def tamper(proof: FakeProof, signature: bytes) -> None:
    object.__setattr__(proof, "signature", signature)  # line 16: the violation
