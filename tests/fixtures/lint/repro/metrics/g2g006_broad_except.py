"""Fixture: broad except without a pragma or re-raise (G2G006)."""


def load(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:  # line 8: the violation
        return ""


def load_strict(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        # Allowed: cleanup-and-reraise swallows nothing.
        raise
