"""Streaming-equivalence tests for the ContactSource engine refactor.

The refactor moved *every* run — goldens included — onto the
:class:`~repro.traces.InMemorySource` path, so its correctness
contract is identity: wrapping an evaluation trace in a source
explicitly must reproduce the standard ``execute_request`` digests
byte for byte, and source-backed requests must stay bit-identical
across worker counts and repeated executions (the streaming generator
draws only from per-chunk seeded RNGs).
"""

import hashlib
import json
import os

import pytest

from repro.experiments import (
    ExecutionOptions,
    PROTOCOLS,
    RunRequest,
    run_requests,
)
from repro.experiments.parallel import execute_request
from repro.experiments.setting import evaluation_community, evaluation_trace
from repro.sim.engine import Simulation
from repro.sim.serialize import results_to_dict
from repro.traces import InMemorySource, StreamModelConfig, SyntheticStreamSource

_env_workers = os.environ.get("REPRO_TEST_WORKERS")
POOL_WORKERS = int(_env_workers) if _env_workers else 4

QUICK = (
    ("run_length", 1800.0),
    ("silent_tail", 600.0),
    ("mean_interarrival", 60.0),
    ("ttl", 600.0),
    ("heavy_hmac_iterations", 4),
)

#: Source runs carry their full config in overrides (no preset TTL
#: table exists for synthetic universes).
STREAM_OVERRIDES = (
    ("run_length", 1_200.0),
    ("silent_tail", 300.0),
    ("mean_interarrival", 30.0),
    ("ttl", 600.0),
)

STREAM_SPEC = SyntheticStreamSource(
    StreamModelConfig(nodes=300, duration=1_200.0, seed=3, chunk_seconds=300.0)
).spec()


def digest(results) -> str:
    payload = json.dumps(
        results_to_dict(results), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TestInMemorySourceIsTheIdentityPath:
    # Both evaluation traces: the goldens and determinism digests all
    # run through this wrapper now, so any divergence here would show
    # up as a golden break with no code touching the figures.
    @pytest.mark.parametrize("trace_name", ["cambridge06", "infocom05"])
    def test_explicit_source_matches_standard_run(self, trace_name):
        request = RunRequest(
            trace_name=trace_name,
            family="epidemic",
            protocol_name="g2g_epidemic",
            seed=1,
            overrides=QUICK,
        )
        standard = execute_request(request)
        _, factory = PROTOCOLS["g2g_epidemic"]
        via_source = Simulation(
            InMemorySource(evaluation_trace(trace_name)),
            factory(),
            request.config(),
            community=evaluation_community(trace_name),
        ).run()
        assert digest(standard) == digest(via_source)


class TestSourceRequestDeterminism:
    def _request(self, seed: int) -> RunRequest:
        return RunRequest(
            trace_name="stream-300n-s3",
            family="epidemic",
            protocol_name="epidemic",
            seed=seed,
            overrides=STREAM_OVERRIDES,
            source=STREAM_SPEC,
        )

    def test_repeated_execution_identical(self):
        request = self._request(1)
        assert digest(execute_request(request)) == digest(
            execute_request(request)
        )

    def test_workers_pool_matches_sequential(self):
        requests = [self._request(seed) for seed in (1, 2, 3, 4)]
        sequential = run_requests(requests)
        pooled = run_requests(
            requests, ExecutionOptions(workers=POOL_WORKERS)
        )
        assert [digest(r) for r in sequential] == [
            digest(r) for r in pooled
        ]

    def test_source_requests_reject_adversaries(self):
        import dataclasses

        bad = dataclasses.replace(
            self._request(1), deviation="dropper", deviation_count=5
        )
        with pytest.raises(ValueError, match="adversary placement"):
            execute_request(bad)


class TestSpillEquivalence:
    def test_spill_on_off_identical_results(self):
        # The relay spill changes *where* cold copies live, never what
        # the protocol observes: a run with an aggressive keep budget
        # must be byte-identical to the unbounded run — while actually
        # exercising the demote/promote machinery.
        from repro.perf import COUNTERS
        from repro.sim.config import SimulationConfig
        from repro.sim.node import SpillPolicy
        from repro.traces.stream import source_from_spec

        _, factory = PROTOCOLS["epidemic"]
        config = SimulationConfig(
            seed=1, **dict(STREAM_OVERRIDES)
        )
        plain = Simulation(
            source_from_spec(STREAM_SPEC), factory(), config
        ).run()
        before = COUNTERS.snapshot()
        spilled = Simulation(
            source_from_spec(STREAM_SPEC),
            factory(),
            config,
            spill=SpillPolicy(keep=1),
        ).run()
        ops = COUNTERS.diff(before)
        assert ops["relay_spill_writes"] > 0, (
            "keep=1 must actually demote copies"
        )
        assert digest(plain) == digest(spilled)
