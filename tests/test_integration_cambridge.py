"""Integration tests on the Cambridge 06 stand-in.

Complements test_integration_paper_claims.py (Infocom-focused) with
the Cambridge-specific shape claims: higher baseline delivery, longer
TTLs, slower-but-still-reliable detection, and the G2G machinery
working end to end on the sparser trace.
"""

import pytest

from repro.adversaries import strategy_population
from repro.core import G2GDelegationForwarding, G2GEpidemicForwarding
from repro.experiments import (
    evaluation_community,
    evaluation_trace,
    standard_config,
)
from repro.protocols import DelegationForwarding, EpidemicForwarding
from repro.sim import Simulation


@pytest.fixture(scope="module")
def cambridge():
    return evaluation_trace("cambridge06")


def run(trace, protocol, family="epidemic", strategies=None, seed=1):
    config = standard_config("cambridge06", family, seed)
    return Simulation(trace, protocol, config, strategies=strategies).run()


class TestBaselines:
    def test_epidemic_delivery_band(self, cambridge):
        results = run(cambridge, EpidemicForwarding())
        # calibration target: ~80-90% (paper: ~93% on the real trace)
        assert 0.70 < results.success_rate < 0.95

    def test_cambridge_beats_infocom_delivery(self, cambridge):
        infocom = evaluation_trace("infocom05")
        cam = run(cambridge, EpidemicForwarding())
        inf = Simulation(
            infocom, EpidemicForwarding(),
            standard_config("infocom05", "epidemic", 1),
        ).run()
        assert cam.success_rate > inf.success_rate

    def test_delegation_ttl_is_75_minutes(self, cambridge):
        config = standard_config("cambridge06", "delegation", 1)
        assert config.ttl == 75 * 60.0
        assert config.delta2 == 150 * 60.0


class TestDetection:
    def test_droppers_detected(self, cambridge):
        strategies, bad = strategy_population(
            cambridge.nodes, "dropper", 10, seed=1
        )
        results = run(
            cambridge, G2GEpidemicForwarding(), strategies=strategies
        )
        assert results.detection_rate(bad) >= 0.7
        assert results.false_positives(bad) == set()

    def test_delegation_liars_detected(self, cambridge):
        strategies, bad = strategy_population(
            cambridge.nodes, "liar", 10, seed=1
        )
        results = run(
            cambridge,
            G2GDelegationForwarding("last_contact"),
            family="delegation",
            strategies=strategies,
        )
        assert results.detection_rate(bad) >= 0.4
        assert results.false_positives(bad) == set()

    def test_frequency_variant_detects_like_last_contact(self, cambridge):
        """Sec. VII: 'Delegation Destination Frequency ... behaves in a
        very similar way' for detection."""
        rates = {}
        for variant in ("last_contact", "frequency"):
            strategies, bad = strategy_population(
                cambridge.nodes, "dropper", 10, seed=1
            )
            results = run(
                cambridge,
                G2GDelegationForwarding(variant),
                family="delegation",
                strategies=strategies,
            )
            rates[variant] = results.detection_rate(bad)
        assert abs(rates["last_contact"] - rates["frequency"]) <= 0.4
        assert min(rates.values()) > 0.3


class TestPerformance:
    def test_g2g_epidemic_cheaper(self, cambridge):
        vanilla = run(cambridge, EpidemicForwarding())
        g2g = run(cambridge, G2GEpidemicForwarding())
        assert g2g.cost < vanilla.cost
        assert g2g.success_rate > vanilla.success_rate * 0.75

    def test_g2g_delegation_cheaper(self, cambridge):
        vanilla = run(
            cambridge, DelegationForwarding("last_contact"),
            family="delegation",
        )
        g2g = run(
            cambridge, G2GDelegationForwarding("last_contact"),
            family="delegation",
        )
        assert g2g.cost < vanilla.cost
