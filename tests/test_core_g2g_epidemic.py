"""Protocol-level tests for G2G Epidemic Forwarding.

These drive the protocol by hand over explicit contact sequences so
each mechanism — the relay handshake, the give-2 cap, proof
collection, the test phase, PoM issuance — is observable in isolation.
"""

import pytest

from repro.adversaries import Dropper
from repro.core import G2GEpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.messages import Message
from repro.traces import ContactTrace, make_contact


def config(**overrides):
    base = dict(
        run_length=10_000.0,
        silent_tail=1000.0,
        mean_interarrival=1e6,
        ttl=1000.0,
        delta2_factor=2.0,
        heavy_hmac_iterations=2,
        seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def harness(nodes=6, cfg=None, strategies=None):
    trace = ContactTrace(
        name="manual", nodes=tuple(range(nodes)), contacts=()
    )
    protocol = G2GEpidemicForwarding()
    sim = Simulation(trace, protocol, cfg or config(), strategies=strategies)
    ctx = sim._build_context()
    protocol.bind(ctx)
    return protocol, ctx


def inject(protocol, ctx, source, destination, created, msg_id=0):
    message = Message(
        msg_id=msg_id, source=source, destination=destination,
        created_at=created, ttl=ctx.config.ttl,
    )
    ctx.results.record_generated(message)
    protocol.on_message_generated(message, created)
    return message


def meet(protocol, a, b, t):
    protocol.on_contact_start(a, b, t)


class TestRelayPhase:
    def test_handoff_stores_copy_and_proof(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        assert ctx.node(1).has_copy(0)
        assert len(ctx.node(0).buffer[0].proofs) == 1
        assert ctx.results.messages[0].replicas == 1

    def test_proof_signed_by_taker(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        por = ctx.node(0).buffer[0].proofs[0]
        assert por.taker == 1
        assert por.giver == 0
        from repro.core.proofs import verify_proof_of_relay

        assert verify_proof_of_relay(
            protocol.identities[0], protocol.identities[1].certificate, por
        )

    def test_delivery_to_destination(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=1, created=0.0)
        meet(protocol, 0, 1, 10.0)
        assert ctx.results.delivered == 1
        # the destination also signed a PoR during the phase
        assert len(ctx.node(0).buffer[0].proofs) == 1

    def test_seen_prevents_rerelay(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 0, 1, 20.0)
        assert ctx.results.messages[0].replicas == 1

    def test_no_relay_after_ttl(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 1500.0)  # ttl is 1000
        assert not ctx.node(1).has_copy(0)


class TestGive2Rule:
    def test_relay_fanout_capped_at_two(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        # node 1 relays onward to 2 and 3, then stops
        meet(protocol, 1, 2, 20.0)
        meet(protocol, 1, 3, 30.0)
        meet(protocol, 1, 4, 40.0)
        assert ctx.node(2).has_copy(0)
        assert ctx.node(3).has_copy(0)
        assert not ctx.node(4).has_copy(0)

    def test_body_dropped_after_two_proofs(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 1, 2, 20.0)
        meet(protocol, 1, 3, 30.0)
        copy = ctx.node(1).buffer[0]
        assert copy.body_dropped
        assert len(copy.proofs) == 2

    def test_source_exceeds_cap_by_default(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        for peer in (1, 2, 3, 4):
            meet(protocol, 0, peer, 10.0 * peer)
        assert all(ctx.node(p).has_copy(0) for p in (1, 2, 3, 4))
        assert not ctx.node(0).buffer[0].body_dropped

    def test_source_cap_configurable(self):
        protocol, ctx = harness(cfg=config(source_fanout=2))
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        for peer in (1, 2, 3):
            meet(protocol, 0, peer, 10.0 * peer)
        assert ctx.node(1).has_copy(0)
        assert ctx.node(2).has_copy(0)
        assert not ctx.node(3).has_copy(0)


class TestTestPhase:
    def test_no_test_before_ttl(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 0, 1, 900.0)  # before Δ1 expiry
        assert ctx.results.detections == []

    def test_dropper_caught_in_window(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        message = inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        assert not ctx.node(1).has_copy(0)  # dropped post-relay
        meet(protocol, 0, 1, 1200.0)  # inside (1000, 2000]
        assert len(ctx.results.detections) == 1
        record = ctx.results.detections[0]
        assert record.offender == 1
        assert record.deviation == "dropper"
        assert record.delay_after_ttl == pytest.approx(200.0)
        assert ctx.node(1).evicted

    def test_no_test_after_delta2(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 0, 1, 2500.0)  # beyond Δ2 = 2000
        assert ctx.results.detections == []

    def test_honest_relay_passes_with_proofs(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 1, 2, 20.0)
        meet(protocol, 1, 3, 30.0)
        meet(protocol, 0, 1, 1200.0)
        assert ctx.results.detections == []
        assert ctx.results.test_phases == 1
        assert ctx.results.heavy_hmac_runs == 0

    def test_honest_holder_passes_storage_challenge(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)  # node 1 finds no further relays
        meet(protocol, 0, 1, 1200.0)
        assert ctx.results.detections == []
        assert ctx.results.heavy_hmac_runs == 1
        # the prover paid the heavy-HMAC energy price
        assert ctx.results.energy[1] > ctx.config.energy.heavy_hmac / 2

    def test_each_taker_tested_once(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 0, 1, 1200.0)
        meet(protocol, 0, 1, 1300.0)
        assert len(ctx.results.detections) == 1

    def test_destination_never_tested(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=1, created=0.0)
        meet(protocol, 0, 1, 10.0)  # delivery
        meet(protocol, 0, 1, 1200.0)
        assert ctx.results.test_phases == 0
        assert ctx.results.detections == []

    def test_only_source_tests(self):
        """A relay's giver that is not the source never challenges."""
        protocol, ctx = harness(strategies={2: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 1, 2, 20.0)  # node 2 takes from relay 1, drops
        meet(protocol, 1, 2, 1200.0)  # relay 1 does NOT test
        assert ctx.results.detections == []
        meet(protocol, 0, 2, 1300.0)  # the source never gave 2 anything
        assert ctx.results.detections == []


class TestEviction:
    def test_evicted_node_excluded(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 0, 1, 1200.0)  # PoM + eviction
        assert ctx.node(1).evicted
        assert not ctx.usable_pair(0, 1)
        # a fresh message never reaches the evicted node
        inject(protocol, ctx, source=0, destination=5, created=1300.0, msg_id=1)
        meet(protocol, 0, 1, 1400.0)
        assert not ctx.node(1).has_copy(1)

    def test_pom_published_to_blacklist(self):
        protocol, ctx = harness(strategies={1: Dropper()})
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        meet(protocol, 0, 1, 1200.0)
        assert ctx.blacklist.knows(4, 1)


class TestHousekeeping:
    def test_purge_after_delta2(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        assert ctx.node(1).has_copy(0)
        meet(protocol, 1, 2, 2500.0)  # beyond Δ2: housekeeping purges
        assert not ctx.node(1).has_copy(0)

    def test_source_records_purged(self):
        protocol, ctx = harness()
        inject(protocol, ctx, source=0, destination=5, created=0.0)
        meet(protocol, 0, 1, 10.0)
        assert protocol._sources[0]
        meet(protocol, 0, 2, 2500.0)
        assert not protocol._sources[0]


class TestFullRun:
    def test_honest_run_no_detections(self, mini_synthetic):
        cfg = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1200.0, seed=4,
            heavy_hmac_iterations=2,
        )
        results = Simulation(
            mini_synthetic.trace, G2GEpidemicForwarding(), cfg
        ).run()
        assert results.detections == []
        assert results.evicted_at == {}
        assert results.delivered > 0

    def test_droppers_detected_in_full_run(self, mini_synthetic):
        cfg = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1200.0, seed=4,
            heavy_hmac_iterations=2,
        )
        strategies = {3: Dropper(), 7: Dropper()}
        results = Simulation(
            mini_synthetic.trace, G2GEpidemicForwarding(), cfg,
            strategies=strategies,
        ).run()
        assert results.detection_rate([3, 7]) > 0
        assert results.false_positives([3, 7]) == set()
