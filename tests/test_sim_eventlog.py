"""Tests for the structured protocol event log."""

import pytest

from repro.adversaries import Dropper
from repro.core import G2GEpidemicForwarding
from repro.sim import Simulation, SimulationConfig
from repro.sim.eventlog import EventLog, EventType, ProtocolEvent


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        log.log(1.0, EventType.RELAYED, msg_id=0, actor=1, subject=2)
        assert len(log) == 0

    def test_enabled_log_records(self):
        log = EventLog()
        log.log(1.0, EventType.RELAYED, msg_id=0, actor=1, subject=2)
        assert len(log) == 1
        event = next(iter(log))
        assert event.event_type is EventType.RELAYED

    def test_filter_by_type(self):
        log = EventLog()
        log.log(1.0, EventType.RELAYED, msg_id=0, actor=1)
        log.log(2.0, EventType.DELIVERED, msg_id=0, actor=1)
        assert len(log.filter(event_type=EventType.DELIVERED)) == 1

    def test_filter_by_node_matches_both_roles(self):
        log = EventLog()
        log.log(1.0, EventType.RELAYED, msg_id=0, actor=1, subject=2)
        assert len(log.filter(node=1)) == 1
        assert len(log.filter(node=2)) == 1
        assert len(log.filter(node=3)) == 0

    def test_filter_predicate(self):
        log = EventLog()
        log.log(1.0, EventType.RELAYED, msg_id=0)
        log.log(5.0, EventType.RELAYED, msg_id=1)
        late = log.filter(predicate=lambda e: e.time > 2.0)
        assert [e.msg_id for e in late] == [1]

    def test_timelines_sorted(self):
        log = EventLog()
        log.log(5.0, EventType.DELIVERED, msg_id=0, actor=2)
        log.log(1.0, EventType.RELAYED, msg_id=0, actor=1)
        timeline = log.message_timeline(0)
        assert [e.time for e in timeline] == [1.0, 5.0]

    def test_render(self):
        log = EventLog()
        log.log(1.0, EventType.POM, msg_id=3, actor=0, subject=7,
                detail="dropper")
        text = log.render()
        assert "pom" in text
        assert "0->7" in text
        assert "(dropper)" in text


class TestEndToEndLogging:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.traces.synthetic import CommunityModelConfig, generate

        trace = generate(
            CommunityModelConfig(
                name="mini",
                community_sizes=(5, 5),
                duration=2 * 3600.0,
                base_rate=1.0 / 600.0,
                inter_factor=0.08,
                traveler_fraction=0.2,
                sociability_sigma=0.2,
                mean_contact_duration=60.0,
                min_contact_duration=10.0,
            ),
            seed=7,
        ).trace
        config = SimulationConfig(
            run_length=2 * 3600.0, silent_tail=1800.0,
            mean_interarrival=30.0, ttl=1200.0, seed=4,
            heavy_hmac_iterations=2, track_events=True,
        )
        return Simulation(
            trace, G2GEpidemicForwarding(), config,
            strategies={3: Dropper()},
        ).run()

    def test_log_attached(self, results):
        assert results.events is not None
        assert len(results.events) > 0

    def test_generation_events_match_messages(self, results):
        generated = results.events.filter(event_type=EventType.GENERATED)
        assert len(generated) == results.generated

    def test_delivery_events_match_metrics(self, results):
        delivered = results.events.filter(event_type=EventType.DELIVERED)
        # First-delivery metric counts distinct messages; the log may
        # contain at most one DELIVERED per message (seen-set).
        assert len({e.msg_id for e in delivered}) == results.delivered

    def test_pom_events_match_detections(self, results):
        poms = results.events.filter(event_type=EventType.POM)
        assert len(poms) == len(results.detections)
        for event, record in zip(
            sorted(poms, key=lambda e: e.time),
            sorted(results.detections, key=lambda d: d.time),
        ):
            assert event.subject == record.offender
            assert event.detail == record.deviation

    def test_dropper_story_reconstructable(self, results):
        """The offender's timeline shows drop -> failed test -> PoM."""
        if 3 not in results.evicted_at:
            pytest.skip("dropper not convicted in this configuration")
        timeline = results.events.node_timeline(3)
        kinds = [e.event_type for e in timeline]
        assert EventType.DROPPED in kinds
        assert EventType.POM in kinds
        assert EventType.EVICTED in kinds
        # the PoM comes after at least one drop
        first_drop = min(
            e.time for e in timeline if e.event_type is EventType.DROPPED
        )
        pom_time = min(
            e.time for e in timeline if e.event_type is EventType.POM
        )
        assert pom_time > first_drop

    def test_no_timer_events_in_plain_g2g_run(self, results):
        # TTL expiry and Δ2 purges moved off the scheduler into
        # per-node sorted deadline arrays: a plain G2G run dispatches
        # zero timers, so none may appear in the log.  (Timer events
        # themselves stay first-class — see
        # tests/test_sim_events.py::test_dispatches_logged_to_eventlog
        # — for the features that still wake up via the scheduler:
        # gossip blacklist rounds, churn, quality-frame rollover.)
        timers = results.events.filter(event_type=EventType.TIMER)
        assert len(timers) == 0

    def test_disabled_by_default(self):
        config = SimulationConfig()
        assert config.track_events is False
