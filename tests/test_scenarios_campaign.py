"""Campaign determinism pin: worker counts, cache states, golden schema.

The campaign matrix is the subsystem's product; this suite pins that

* a workers=4 campaign is byte-identical to workers=1 — matrix rows,
  digest, and merged telemetry;
* a cache-warm rerun reproduces the same matrix rows (per-class
  columns are recomputed from serialized fields, so cache hits carry
  them too);
* the matrix document matches the golden fixture under
  ``tests/golden/`` — schema drift must be deliberate.
"""

import json
import os

import pytest

from repro.experiments.cache import RunCache
from repro.scenarios import (
    ScenarioSpec,
    build_matrix,
    matrix_digest,
    run_campaign,
)
from tests.test_determinism_seeds import QUICK

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "campaign_matrix.json"
)

#: The acceptance campaign: the 40/20/10 mixed population with churn
#: on cambridge06 (shortened window), one seed.
ACCEPTANCE = ScenarioSpec(
    name="mixed-churn",
    trace="cambridge06",
    protocol="g2g_epidemic",
    mix=(("cheater", 0.1), ("dropper", 0.4), ("liar", 0.2)),
    churn=((0.1, 600.0, 1200.0), (0.05, 900.0, None)),
    seeds=(1,),
    overrides=tuple(sorted(QUICK)),
)


def _campaign():
    return [
        ACCEPTANCE,
        ScenarioSpec(
            name="honest-baseline",
            trace="cambridge06",
            protocol="g2g_epidemic",
            seeds=(1,),
            overrides=tuple(sorted(QUICK)),
        ),
    ]


def _canonical(document) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


class TestWorkerCountInvariance:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_campaign(_campaign(), workers=1)

    def test_matrix_byte_identical_across_worker_counts(self, sequential):
        parallel = run_campaign(_campaign(), workers=4)
        assert _canonical(parallel.matrix) == _canonical(sequential.matrix)
        assert parallel.digest == sequential.digest

    def test_merged_telemetry_identical_across_worker_counts(
        self, sequential
    ):
        parallel = run_campaign(_campaign(), workers=4)
        assert _canonical(parallel.merged) == _canonical(sequential.merged)
        assert [r["scenario"] for r in parallel.records] == [
            r["scenario"] for r in sequential.records
        ]

    def test_consecutive_runs_identical(self, sequential):
        again = run_campaign(_campaign(), workers=1)
        assert again.digest == sequential.digest

    def test_per_class_keys_reach_the_records(self, sequential):
        record = sequential.records[0]
        counters = record["telemetry"]["counters"]
        for cls in ("cheater", "dropper", "liar", "honest"):
            for metric in ("nodes", "energy", "detections", "evictions"):
                assert f"scenario.class.{cls}.{metric}" in counters
        assert record["scenario"] == "mixed-churn"

    def test_jsonl_records_validate(self, sequential, tmp_path):
        from repro.telemetry.export import read_jsonl, validate_record

        redo = run_campaign(
            _campaign(), workers=1, telemetry_dir=str(tmp_path)
        )
        path = tmp_path / "campaign.jsonl"
        records = read_jsonl(str(path))
        assert len(records) == len(redo.records)
        for record in records:
            assert validate_record(record) == []
        assert (tmp_path / "campaign.prom").read_text().strip()


class TestCacheInvariance:
    def test_cache_warm_rerun_reproduces_matrix_rows(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        cold = run_campaign(_campaign(), workers=1, cache=cache)
        warm = run_campaign(_campaign(), workers=1, cache=cache)
        assert warm.report.cached == warm.report.total
        # Cache hits carry no telemetry, but every matrix column —
        # including the per-class breakdown — is recomputed from the
        # serialized results, so the matrix itself is unchanged.
        assert _canonical(warm.matrix) == _canonical(cold.matrix)
        assert warm.records == []

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError):
            run_campaign([ACCEPTANCE, ACCEPTANCE])

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            run_campaign([])


class TestMatrixSchema:
    def test_missing_columns_rejected(self):
        with pytest.raises(ValueError):
            build_matrix([{"scenario": "x"}])

    def test_golden_matrix(self):
        result = run_campaign([ACCEPTANCE], workers=1)
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert result.matrix == golden, (
            "campaign matrix drifted from tests/golden/campaign_matrix.json"
            " — if the change is deliberate, regenerate the fixture"
            " (see docs/scenarios.md)"
        )
        assert matrix_digest(result.matrix) == matrix_digest(golden)

    def test_spec_round_trips_through_json(self):
        data = ACCEPTANCE.to_dict()
        assert ScenarioSpec.from_dict(json.loads(json.dumps(data))) == (
            ACCEPTANCE
        )
