"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes one evaluation condition — which
trace and protocol, what fraction of the population runs which
adversary strategy, which cohorts churn in and out and when, and how
per-node energy budgets are distributed — as plain picklable values.
The spec expands into :class:`~repro.experiments.parallel.RunRequest`
grid points (one per replication seed), so campaigns ride the same
parallel runner and run cache as every figure.

All node-level expansion (which node gets which role, who churns,
who gets which budget) is derived from seed-keyed RNG streams, never
from ambient randomness: the same spec and seed always select the
same nodes, whatever process or worker count expands them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..adversaries.factory import mix_counts
from ..experiments.catalog import protocol
from ..experiments.parallel import RunRequest
from ..sim.engine import ChurnEvent
from ..traces.trace import NodeId

#: Replication seeds used when a spec does not name its own.
DEFAULT_SEEDS: Tuple[int, ...] = (1, 2, 3)

#: Recognized energy-budget distributions.
ENERGY_DISTRIBUTIONS = ("constant", "uniform")


def _validate_energy_budget(budget: Tuple[Any, ...]) -> None:
    if not budget:
        return
    kind = budget[0]
    if kind == "constant":
        if len(budget) != 2:
            raise ValueError(
                "constant energy budget takes exactly one value:"
                " ('constant', joules)"
            )
        if float(budget[1]) <= 0:
            raise ValueError("energy budget must be positive")
    elif kind == "uniform":
        if len(budget) != 3:
            raise ValueError(
                "uniform energy budget takes two bounds:"
                " ('uniform', lo, hi)"
            )
        lo, hi = float(budget[1]), float(budget[2])
        if lo <= 0 or hi < lo:
            raise ValueError(
                "uniform energy budget needs 0 < lo <= hi"
            )
    else:
        raise ValueError(
            f"unknown energy distribution {kind!r};"
            f" expected one of {ENERGY_DISTRIBUTIONS}"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation condition of a campaign.

    Attributes:
        name: scenario label (matrix rows and telemetry records carry
            it; must be unique within a campaign).
        trace: evaluation trace name ("infocom05", "cambridge06").
        protocol: :data:`repro.experiments.catalog.PROTOCOLS` name.
        mix: adversary kind -> population fraction; the remainder of
            the population is honest.  Kinds come from
            :data:`repro.adversaries.DEVIATIONS`; fractions are
            expanded with largest-remainder rounding, so realized
            counts are within one node of ``fraction * n``.
        churn: cohorts of ``(fraction, leave_time, rejoin_time)``;
            ``rejoin_time`` None means the cohort never returns.
            Cohorts are disjoint (sampled without replacement, in
            listed order).
        energy_budget: ``()`` for the paper's unbounded batteries,
            ``("constant", joules)`` or ``("uniform", lo, hi)``.
            Community-conditioned adversaries are requested through
            the kind name (``"dropper_with_outsiders"``), exactly as
            in the single-deviation experiments.
        seeds: replication seeds; one run request per seed.
        overrides: sorted :class:`~repro.sim.config.SimulationConfig`
            override pairs applied to every run of the scenario.
    """

    name: str
    trace: str = "cambridge06"
    protocol: str = "g2g_epidemic"
    mix: Tuple[Tuple[str, float], ...] = ()
    churn: Tuple[Tuple[float, float, Optional[float]], ...] = ()
    energy_budget: Tuple[Any, ...] = ()
    seeds: Tuple[int, ...] = DEFAULT_SEEDS
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if not self.seeds:
            raise ValueError(f"scenario {self.name!r} needs at least one seed")
        protocol(self.protocol)  # raises KeyError on unknown names
        # mix_counts validates kinds, signs, and the fraction sum; the
        # node count only scales the quotas, so any positive n works
        # as a validation probe.
        mix_counts(100, dict(self.mix))
        for cohort in self.churn:
            fraction, leave_time, rejoin_time = cohort
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(
                    f"churn fraction must lie in [0, 1], got {fraction}"
                )
            if leave_time < 0:
                raise ValueError("churn leave time must be non-negative")
            if rejoin_time is not None and rejoin_time <= leave_time:
                raise ValueError(
                    "churn rejoin time must come after the leave time"
                )
        _validate_energy_budget(self.energy_budget)

    @property
    def family(self) -> str:
        """TTL family of the scenario's protocol."""
        family, _ = protocol(self.protocol)
        return family

    def requests(self) -> Tuple[RunRequest, ...]:
        """The scenario's grid points, one per replication seed."""
        return tuple(
            RunRequest(
                trace_name=self.trace,
                family=self.family,
                protocol_name=self.protocol,
                seed=seed,
                overrides=self.overrides,
                mix=tuple(sorted(self.mix)),
                churn=self.churn,
                energy_budget=self.energy_budget,
            )
            for seed in self.seeds
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (round-trips via from_dict)."""
        return {
            "name": self.name,
            "trace": self.trace,
            "protocol": self.protocol,
            "mix": {kind: fraction for kind, fraction in sorted(self.mix)},
            "churn": [list(cohort) for cohort in self.churn],
            "energy_budget": list(self.energy_budget),
            "seeds": list(self.seeds),
            "overrides": {name: value for name, value in self.overrides},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from its JSON form.

        Raises:
            ValueError: on unknown keys or invalid field values (the
                constructor validation applies).
        """
        known = {
            "name", "trace", "protocol", "mix", "churn",
            "energy_budget", "seeds", "overrides",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario keys: {', '.join(unknown)}"
            )
        if "name" not in data:
            raise ValueError("scenario needs a name")
        kwargs: Dict[str, Any] = {"name": data["name"]}
        for key in ("trace", "protocol"):
            if key in data:
                kwargs[key] = data[key]
        if "mix" in data:
            kwargs["mix"] = tuple(sorted(
                (str(kind), float(fraction))
                for kind, fraction in dict(data["mix"]).items()
            ))
        if "churn" in data:
            kwargs["churn"] = tuple(
                (
                    float(cohort[0]),
                    float(cohort[1]),
                    None if cohort[2] is None else float(cohort[2]),
                )
                for cohort in data["churn"]
            )
        if "energy_budget" in data:
            kwargs["energy_budget"] = tuple(data["energy_budget"])
        if "seeds" in data:
            kwargs["seeds"] = tuple(int(seed) for seed in data["seeds"])
        if "overrides" in data:
            kwargs["overrides"] = tuple(sorted(
                (str(name), value)
                for name, value in dict(data["overrides"]).items()
            ))
        return cls(**kwargs)


def churn_events_for(
    nodes: Iterable[NodeId],
    cohorts: Sequence[Tuple[float, float, Optional[float]]],
    seed: int,
) -> List[ChurnEvent]:
    """Expand churn cohorts into node-level join/leave transitions.

    Cohorts draw without replacement from a shrinking pool in listed
    order, each through the same seed-keyed stream — the node-level
    schedule is a pure function of ``(nodes, cohorts, seed)``.
    """
    pool = sorted(nodes)
    total = len(pool)
    rng = random.Random(f"{seed}|scenario|churn")
    transitions: List[ChurnEvent] = []
    for fraction, leave_time, rejoin_time in cohorts:
        count = min(int(round(fraction * total)), len(pool))
        if count <= 0:
            continue
        members = sorted(rng.sample(pool, count))
        pool = [node for node in pool if node not in set(members)]
        for node in members:
            transitions.append(ChurnEvent(leave_time, node, "leave"))
            if rejoin_time is not None:
                transitions.append(ChurnEvent(rejoin_time, node, "join"))
    return transitions


def energy_budgets_for(
    nodes: Iterable[NodeId],
    budget: Tuple[Any, ...],
    seed: int,
) -> Dict[NodeId, float]:
    """Expand an energy-budget spec into per-node budgets.

    The uniform distribution draws one budget per node in sorted node
    order from a seed-keyed stream, so heterogeneous budgets are as
    reproducible as everything else.
    """
    _validate_energy_budget(budget)
    if not budget:
        return {}
    ordered = sorted(nodes)
    if budget[0] == "constant":
        value = float(budget[1])
        return {node: value for node in ordered}
    lo, hi = float(budget[1]), float(budget[2])
    rng = random.Random(f"{seed}|scenario|energy")
    return {node: rng.uniform(lo, hi) for node in ordered}
