"""The campaign matrix: one row per (scenario, seed), canonical digest.

The matrix is the campaign's tabular product — headline delivery
metrics plus the per-adversary-class breakdown for every run — in a
versioned JSON document whose canonical encoding is digestable: the
digest of a campaign is a SHA-256 over sorted-key compact JSON, so two
campaigns agree iff their matrices are byte-identical.  The runner
guarantees the rows themselves are worker-count independent (results
merge in request order); the digest turns that guarantee into a
one-line regression check.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Sequence

#: Bump when row fields change incompatibly.
MATRIX_SCHEMA_VERSION = 1

#: Per-row columns guaranteed present (per-class columns are dynamic:
#: ``class.<name>.nodes`` / ``.energy`` / ``.detections`` /
#: ``.evictions`` for every class in the row's population).
MATRIX_COLUMNS = (
    "scenario",
    "trace",
    "protocol",
    "seed",
    "generated",
    "delivered",
    "success_rate",
    "cost",
    "mean_delay",
    "detections",
    "evictions",
    "total_energy",
)


def build_matrix(rows: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Wrap campaign rows in the versioned matrix document.

    Raises:
        ValueError: if a row misses a guaranteed column.
    """
    for position, row in enumerate(rows):
        missing = [name for name in MATRIX_COLUMNS if name not in row]
        if missing:
            raise ValueError(
                f"matrix row {position} misses columns: {', '.join(missing)}"
            )
    return {
        "schema": MATRIX_SCHEMA_VERSION,
        "kind": "campaign_matrix",
        "rows": list(rows),
    }


def matrix_digest(matrix: Dict[str, Any]) -> str:
    """SHA-256 over the matrix's canonical JSON encoding."""
    canonical = json.dumps(matrix, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_matrix(path: str, matrix: Dict[str, Any]) -> None:
    """Write the matrix document as stable, diff-friendly JSON."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(matrix, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_matrix(path: str) -> Dict[str, Any]:
    """Read a matrix document back.

    Raises:
        ValueError: on a wrong schema or kind.
    """
    with open(path, "r", encoding="utf-8") as handle:
        matrix = json.load(handle)
    if (
        not isinstance(matrix, dict)
        or matrix.get("schema") != MATRIX_SCHEMA_VERSION
        or matrix.get("kind") != "campaign_matrix"
    ):
        raise ValueError(f"{path}: not a campaign matrix document")
    return matrix


def render_matrix(matrix: Dict[str, Any]) -> str:
    """Human-readable table of the headline columns."""
    header = (
        f"{'scenario':<20} {'seed':>4} {'succ':>6} {'cost':>7}"
        f" {'PoMs':>5} {'evic':>5} {'energy':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in matrix["rows"]:
        lines.append(
            f"{row['scenario']:<20} {row['seed']:>4}"
            f" {row['success_rate']:>6.3f} {row['cost']:>7.2f}"
            f" {int(row['detections']):>5} {int(row['evictions']):>5}"
            f" {row['total_energy']:>10.2f}"
        )
    return "\n".join(lines)


def class_columns(matrix: Dict[str, Any]) -> List[str]:
    """Sorted union of the per-class columns across every row."""
    names = set()
    for row in matrix["rows"]:
        names.update(name for name in row if name.startswith("class."))
    return sorted(names)
