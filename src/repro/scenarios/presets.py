"""Named campaign presets for the CLI and CI smoke jobs.

Presets are plain spec constructors, not magic: ``repro scenarios run
--preset mixed-churn`` is exactly ``--spec`` with the JSON below
written out.  Every preset shortens the run (30 min of trace, fast
heavy-HMAC) so a full campaign stays in CI-smoke territory; paper-scale
studies should write their own spec files (see docs/scenarios.md).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .spec import ScenarioSpec

#: Shortened-run overrides shared by the presets (mirrors the QUICK
#: profile of the determinism tests: 30 min window, 10 min silent
#: tail, 10 min TTL, cheap storage proofs).
SMOKE_OVERRIDES: Tuple[Tuple[str, object], ...] = (
    ("heavy_hmac_iterations", 4),
    ("mean_interarrival", 60.0),
    ("run_length", 1800.0),
    ("silent_tail", 600.0),
    ("ttl", 600.0),
)


def _smoke() -> List[ScenarioSpec]:
    """Minimal mixed+churn campaign: one scenario, one seed."""
    return [
        ScenarioSpec(
            name="smoke",
            trace="cambridge06",
            protocol="g2g_epidemic",
            mix=(("dropper", 0.2),),
            churn=((0.1, 600.0, 1200.0),),
            energy_budget=("uniform", 50.0, 200.0),
            seeds=(1,),
            overrides=SMOKE_OVERRIDES,
        )
    ]


def _mixed_churn() -> List[ScenarioSpec]:
    """The headline campaign: heavy mixed population plus churn.

    40% droppers, 20% liars, 10% cheaters (30% honest) on
    cambridge06, with a tenth of the population leaving mid-run and
    returning, and another twentieth leaving for good — the acceptance
    scenario of the campaign subsystem.  A no-adversary control with
    the same churn rides along for comparison.
    """
    churn = ((0.1, 600.0, 1200.0), (0.05, 900.0, None))
    return [
        ScenarioSpec(
            name="mixed-churn",
            trace="cambridge06",
            protocol="g2g_epidemic",
            mix=(("cheater", 0.1), ("dropper", 0.4), ("liar", 0.2)),
            churn=churn,
            seeds=(1, 2),
            overrides=SMOKE_OVERRIDES,
        ),
        ScenarioSpec(
            name="honest-churn",
            trace="cambridge06",
            protocol="g2g_epidemic",
            churn=churn,
            seeds=(1, 2),
            overrides=SMOKE_OVERRIDES,
        ),
    ]


def _energy() -> List[ScenarioSpec]:
    """Energy-heterogeneity sweep: same mix, shrinking budgets."""
    mix = (("dropper", 0.2),)
    specs = []
    for label, budget in (
        ("energy-unbounded", ()),
        ("energy-rich", ("constant", 500.0)),
        ("energy-poor", ("uniform", 20.0, 100.0)),
    ):
        specs.append(
            ScenarioSpec(
                name=label,
                trace="cambridge06",
                protocol="g2g_epidemic",
                mix=mix,
                energy_budget=budget,
                seeds=(1, 2),
                overrides=SMOKE_OVERRIDES,
            )
        )
    return specs


#: Preset name -> zero-arg spec-list constructor.
PRESETS: Dict[str, object] = {
    "smoke": _smoke,
    "mixed-churn": _mixed_churn,
    "energy": _energy,
}


def preset(name: str) -> List[ScenarioSpec]:
    """Build a preset campaign by name.

    Raises:
        KeyError: for unknown names.
    """
    if name not in PRESETS:
        raise KeyError(
            f"unknown preset {name!r}; expected one of {sorted(PRESETS)}"
        )
    return PRESETS[name]()  # type: ignore[operator]
