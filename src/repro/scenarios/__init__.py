"""Scenario campaigns: mixed populations, churn, energy heterogeneity.

The paper evaluates one deviation kind at a time against an otherwise
honest, always-on, battery-unbounded network.  This package asks the
robustness questions around that setting: declarative
:class:`ScenarioSpec` conditions combine an adversary *mix*, a churn
schedule, and per-node energy budgets, and :func:`run_campaign`
expands a list of them through the standard parallel runner into a
deterministic campaign matrix plus per-adversary-class telemetry.
See docs/scenarios.md.
"""

from .campaign import (
    CAMPAIGN_JSONL,
    CAMPAIGN_PROM,
    CampaignResult,
    run_campaign,
)
from .matrix import (
    MATRIX_COLUMNS,
    MATRIX_SCHEMA_VERSION,
    build_matrix,
    class_columns,
    load_matrix,
    matrix_digest,
    render_matrix,
    write_matrix,
)
from .presets import PRESETS, preset
from .spec import (
    DEFAULT_SEEDS,
    ScenarioSpec,
    churn_events_for,
    energy_budgets_for,
)

__all__ = [
    "CAMPAIGN_JSONL",
    "CAMPAIGN_PROM",
    "CampaignResult",
    "DEFAULT_SEEDS",
    "MATRIX_COLUMNS",
    "MATRIX_SCHEMA_VERSION",
    "PRESETS",
    "ScenarioSpec",
    "build_matrix",
    "churn_events_for",
    "class_columns",
    "energy_budgets_for",
    "load_matrix",
    "matrix_digest",
    "preset",
    "render_matrix",
    "run_campaign",
    "write_matrix",
]
