"""Campaign execution: expand specs, run the grid, emit the matrix.

A campaign is a list of :class:`~repro.scenarios.spec.ScenarioSpec`
conditions.  :func:`run_campaign` flattens every condition's seed
replications into **one** request batch for
:func:`~repro.experiments.parallel.run_requests` — scenarios run
concurrently with each other, not just their own seeds — then slices
the merged results back per spec and derives:

* the campaign matrix (one row per (scenario, seed), headline metrics
  plus the per-adversary-class breakdown);
* per-run telemetry JSONL records tagged with the scenario name and
  carrying the ``scenario.class.*`` counter keys;
* a merged Prometheus-style snapshot over every live run.

Results merge in request order and the per-class breakdown reads only
serialized result fields, so the matrix — and its digest — is
identical whatever the worker count or cache state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..experiments.cache import RunCache
from ..experiments.parallel import (
    ExecutionOptions,
    RunReport,
    RunRequest,
    run_requests,
)
from ..experiments.setting import evaluation_trace
from ..telemetry.export import run_record, to_prometheus, write_jsonl
from ..telemetry.population import (
    inject_population_metrics,
    population_metrics,
)
from ..telemetry.run import merge_run_snapshots
from .matrix import build_matrix, matrix_digest
from .spec import ScenarioSpec

#: Telemetry file names used under ``telemetry_dir``.
CAMPAIGN_JSONL = "campaign.jsonl"
CAMPAIGN_PROM = "campaign.prom"


@dataclass
class CampaignResult:
    """Everything one campaign invocation produced.

    Attributes:
        matrix: the versioned campaign-matrix document.
        digest: SHA-256 of the matrix's canonical encoding.
        records: per-run telemetry JSONL records (live runs only —
            cache hits carry no telemetry snapshot).
        merged: merged telemetry snapshot over ``records``.
        report: run/cache accounting from the parallel runner.
    """

    matrix: Dict[str, Any]
    digest: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    merged: Dict[str, Any] = field(default_factory=dict)
    report: RunReport = field(default_factory=RunReport)


def _matrix_row(
    spec: ScenarioSpec,
    request: RunRequest,
    results: Any,
    metrics: Dict[str, float],
) -> Dict[str, Any]:
    summary = results.summary()
    # Summed in sorted-node order, NOT summary()["total_energy"]: the
    # live energy dict accrues in protocol order while a cache
    # round-trip rebuilds it in serialized order, and float addition
    # is order-sensitive — the canonical order makes the column (and
    # the matrix digest) cache-state independent.
    total_energy = 0.0
    for node in sorted(results.energy):
        total_energy += results.energy[node]
    row: Dict[str, Any] = {
        "scenario": spec.name,
        "trace": spec.trace,
        "protocol": spec.protocol,
        "seed": request.seed,
        "generated": summary["generated"],
        "delivered": summary["delivered"],
        "success_rate": summary["success_rate"],
        "cost": summary["cost"],
        "mean_delay": summary["mean_delay"],
        "detections": summary["detections"],
        "evictions": float(len(results.evicted_at)),
        "total_energy": total_energy,
    }
    for name in sorted(metrics):
        # "scenario.class.dropper.energy" -> "class.dropper.energy":
        # inside a matrix row the scenario prefix is redundant.
        row[name.split(".", 1)[1]] = metrics[name]
    return row


def run_campaign(
    specs: Sequence[ScenarioSpec],
    workers: int = 1,
    cache: Optional[RunCache] = None,
    telemetry_dir: Optional[str] = None,
    on_progress: Optional[Callable[[int, int, bool], None]] = None,
) -> CampaignResult:
    """Run every scenario of a campaign and build its matrix.

    Args:
        specs: the campaign's conditions (names must be unique).
        workers: process count for the parallel runner.
        cache: optional run cache consulted/filled per run.
        telemetry_dir: when given, the JSONL records and the merged
            Prometheus snapshot are written beneath it.
        on_progress: per-run progress callback ``(done, total,
            was_cached)``.

    Raises:
        ValueError: on duplicate scenario names or an empty campaign.
    """
    if not specs:
        raise ValueError("campaign needs at least one scenario")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names: {names}")
    flat: List[RunRequest] = []
    owners: List[ScenarioSpec] = []
    for spec in specs:
        for request in spec.requests():
            flat.append(request)
            owners.append(spec)
    report = RunReport()
    options = ExecutionOptions(
        workers=workers,
        cache=cache,
        report=report,
        on_progress=on_progress,
    )
    results = run_requests(flat, options)

    rows: List[Dict[str, Any]] = []
    records: List[Dict[str, Any]] = []
    for spec, request, result in zip(owners, flat, results):
        nodes = evaluation_trace(spec.trace).nodes
        metrics = population_metrics(nodes, request.roles(), result)
        rows.append(_matrix_row(spec, request, result, metrics))
        if result.telemetry is not None:
            record = run_record(result)
            record["scenario"] = spec.name
            inject_population_metrics(record, metrics)
            records.append(record)
    matrix = build_matrix(rows)
    merged = merge_run_snapshots(
        [record["telemetry"] for record in records]
    )
    if telemetry_dir is not None:
        os.makedirs(telemetry_dir, exist_ok=True)
        write_jsonl(os.path.join(telemetry_dir, CAMPAIGN_JSONL), records)
        with open(
            os.path.join(telemetry_dir, CAMPAIGN_PROM), "w", encoding="utf-8"
        ) as handle:
            handle.write(to_prometheus(merged))
    return CampaignResult(
        matrix=matrix,
        digest=matrix_digest(matrix),
        records=records,
        merged=merged,
        report=report,
    )
