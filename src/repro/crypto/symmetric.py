"""Symmetric stream cipher used for in-session encryption.

After the DH handshake, "every communication during the session is
encrypted with a symmetric algorithm like AES and the session key"
(Sec. IV-A).  With no AES available offline, we implement a SHA-256
counter-mode stream cipher with an HMAC authentication tag — a
standard encrypt-then-MAC construction whose behavior (confidentiality
plus integrity under a shared key) matches what the protocols need.

The same primitive also implements ``E_k(m)`` from step 3 of the relay
phase, where the message is handed over under a random key ``k`` that
is revealed only after the Proof of Relay is signed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .hashing import DIGEST_SIZE, constant_time_equal, digest, hmac_digest

#: Length of the random per-message nonce.
NONCE_SIZE = 16

#: Length of the authentication tag.
TAG_SIZE = DIGEST_SIZE


class AuthenticationError(Exception):
    """Raised when a ciphertext fails tag verification."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes from ``(key, nonce)``."""
    out = bytearray()
    block = 0
    while len(out) < length:
        out += digest(key + nonce + block.to_bytes(8, "big"))
        block += 1
    return bytes(out[:length])


def random_key(rng: random.Random) -> bytes:
    """Sample a fresh 32-byte symmetric key."""
    return bytes(rng.getrandbits(8) for _ in range(DIGEST_SIZE))


def encrypt(key: bytes, plaintext: bytes, rng: random.Random) -> bytes:
    """Encrypt-then-MAC ``plaintext`` under ``key``.

    Layout: ``nonce || ciphertext || tag`` where the tag authenticates
    the nonce and ciphertext under a key derived from ``key``.
    """
    nonce = bytes(rng.getrandbits(8) for _ in range(NONCE_SIZE))
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = hmac_digest(digest(b"mac|" + key), nonce + ciphertext)
    return nonce + ciphertext + tag


def decrypt(key: bytes, blob: bytes) -> bytes:
    """Invert :func:`encrypt`.

    Raises:
        AuthenticationError: if the blob is too short or the tag does
            not verify (wrong key or tampered ciphertext).
    """
    if len(blob) < NONCE_SIZE + TAG_SIZE:
        raise AuthenticationError("ciphertext too short")
    nonce = blob[:NONCE_SIZE]
    ciphertext = blob[NONCE_SIZE:-TAG_SIZE]
    tag = blob[-TAG_SIZE:]
    expected = hmac_digest(digest(b"mac|" + key), nonce + ciphertext)
    if not constant_time_equal(tag, expected):
        raise AuthenticationError("authentication tag mismatch")
    stream = _keystream(key, nonce, len(ciphertext))
    return bytes(a ^ b for a, b in zip(ciphertext, stream))


@dataclass
class SymmetricChannel:
    """A bidirectional encrypted channel bound to one session key.

    Thin convenience wrapper so protocol code reads naturally::

        channel = SymmetricChannel(session_key, rng)
        wire_bytes = channel.seal(payload)
        payload = channel.open(wire_bytes)
    """

    key: bytes
    rng: random.Random

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt and authenticate ``plaintext``."""
        return encrypt(self.key, plaintext, self.rng)

    def open(self, blob: bytes) -> bytes:
        """Decrypt and verify ``blob``; raises on tampering."""
        return decrypt(self.key, blob)
