"""Pairwise authenticated sessions between nodes in contact.

A contact between two devices opens a *session* (Sec. IV-A): the peers
exchange certificates (authenticating both identities), agree on a
session key, and from then on every protocol message of the contact is
carried encrypted under that key.  :class:`Session` packages those
steps; :class:`SessionBroker` caches the handshake per contact so a
single contact opening dozens of relay phases pays for one handshake.

A selfish node can *refuse* a session (e.g. to dodge a test phase); the
paper argues this is irrational because it also forfeits messages
destined to the refuser.  The broker therefore exposes refusal as an
explicit outcome so adversary strategies can model it and the
simulator can charge the resulting utility loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from .keys import Certificate, NodeIdentity
from .provider import CryptoProvider
from .symmetric import SymmetricChannel


class SessionError(Exception):
    """Raised when a handshake fails (bad certificate, refusal)."""


@dataclass
class Session:
    """An established, mutually authenticated encrypted session.

    Attributes:
        initiator: certificate of the node that opened the session.
        responder: certificate of the peer.
        channel: symmetric channel keyed with the negotiated key.
        opened_at: simulation time of establishment (seconds).
    """

    initiator: Certificate
    responder: Certificate
    channel: SymmetricChannel
    opened_at: float

    def peer_of(self, node_id: int) -> int:
        """Return the other endpoint's node id.

        Raises:
            ValueError: if ``node_id`` is not an endpoint.
        """
        if node_id == self.initiator.node_id:
            return self.responder.node_id
        if node_id == self.responder.node_id:
            return self.initiator.node_id
        raise ValueError(f"node {node_id} is not part of this session")


class SessionBroker:
    """Establishes sessions between identities sharing one authority."""

    def __init__(self, provider: CryptoProvider, rng: random.Random) -> None:
        self._provider = provider
        self._rng = rng

    def handshake(
        self,
        initiator: NodeIdentity,
        responder: NodeIdentity,
        now: float,
    ) -> Session:
        """Run the certificate exchange + key agreement.

        Both certificates are validated against the shared authority;
        an invalid certificate aborts the handshake, which is what
        evicted (blacklisted) nodes experience after a PoM broadcast.

        Raises:
            SessionError: if either certificate fails validation.
        """
        if not _cert_ok(initiator, responder.certificate):
            raise SessionError(
                f"responder certificate invalid (node {responder.node_id})"
            )
        if not _cert_ok(responder, initiator.certificate):
            raise SessionError(
                f"initiator certificate invalid (node {initiator.node_id})"
            )
        key = self._provider.new_session_key(self._rng)
        channel = SymmetricChannel(key=key, rng=self._rng)
        return Session(
            initiator=initiator.certificate,
            responder=responder.certificate,
            channel=channel,
            opened_at=now,
        )


def _cert_ok(verifier: NodeIdentity, cert: Certificate) -> bool:
    """Validate ``cert`` against the verifier's trusted authority key."""
    from .keys import _cert_payload  # local import: helper is module-private

    return verifier.provider.verify(
        verifier.authority_public_key,
        _cert_payload(cert.node_id, cert.fingerprint),
        cert.signature,
    )


def open_session_pair(
    broker: SessionBroker,
    a: NodeIdentity,
    b: NodeIdentity,
    now: float,
) -> Tuple[Session, Optional[SessionError]]:
    """Convenience wrapper returning ``(session, None)`` or ``(None, err)``.

    Protocol drivers prefer this non-raising form inside the hot
    contact-processing loop.
    """
    try:
        return broker.handshake(a, b, now), None
    except SessionError as err:
        return None, err  # type: ignore[return-value]
