"""The accounting-only crypto tier: model the cost, skip the math.

G2G's equilibrium argument (Mei & Stefa, ICDCS 2010) rests on *what*
gets signed and verified — which proofs exist, which checks fail,
what each operation costs in joules — never on the bit patterns of
the signatures themselves.  The simulated provider already exploits
half of that insight (HMAC instead of RSA); this tier takes the rest
of the step: a signature is a deterministic token minted from
``(key id, payload)`` with a sequence number, and verification is a
dictionary lookup plus an equality check.  Zero HMAC/SHA-256 work on
the relay hot path, identical protocol behavior:

* **unforgeability is preserved by construction** — tokens live in a
  registry private to the provider, exactly like the simulated tier's
  secrets, so protocol code can no more mint another node's token
  than it could forge an HMAC.  A signature never issued by ``sign``
  verifies as False.
* **energy and counters still meter the modeled work** — the
  protocols charge signature/verification/heavy-HMAC joules outside
  the provider, and this tier increments the same ``signatures`` /
  ``verifications`` / ``mac_cache_hits`` op counters, so budgets and
  the energy figures are bit-identical to the simulated tier.
* **the RNG stream is untouched** — key generation and encryption are
  inherited from :class:`SimulatedCryptoProvider` (they draw the same
  seeded bytes), so a run under this tier consumes ``ctx.rng``
  identically and every golden digest matches.

When is this faithful?  Whenever the run stays inside the paper's
threat model (selfish-but-not-byzantine nodes that cannot break
crypto): droppers, liars, cheaters, churn, and energy-depletion
scenarios all behave bit-identically.  It is *not* the tier for
wire-level adversary experiments — anything that inspects, truncates,
or splices signature/ciphertext bytes needs the simulated or real
tier, because a token carries no structure to tamper with.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Tuple

from ..perf.counters import COUNTERS
from .hashing import HeavyHmac
from .provider import SimulatedCryptoProvider, VerifyItem, _SimPublicKey


class AccountingCryptoProvider(SimulatedCryptoProvider):
    """Provider that accounts for crypto without performing any.

    ``sign`` mints a token and records it under ``(key_id, payload)``;
    ``verify`` looks the token up and compares.  Everything else —
    key generation, fingerprints, encryption, session keys — is
    inherited from the simulated tier so the seeded RNG stream and
    the artifact plumbing stay byte-for-byte identical.
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        super().__init__(rng)
        # Token registry: (key_id, payload) -> token.  The private
        # analogue of the simulated tier's MAC memo; `sign` is the only
        # writer, so a lookup miss in `verify` is a forgery.
        self._tokens: Dict[Tuple[int, bytes], bytes] = {}
        self._token_seq = 0

    def sign(self, private_key, payload: bytes) -> bytes:
        COUNTERS.signatures += 1
        key = (private_key.key_id, payload)
        token = self._tokens.get(key)
        if token is None:
            self._token_seq += 1
            token = b"acct|%d|%d" % (private_key.key_id, self._token_seq)
            self._tokens[key] = token
        return token

    def verify(
        self, public_key: _SimPublicKey, payload: bytes, signature: bytes
    ) -> bool:
        COUNTERS.verifications += 1
        expected = self._tokens.get((public_key.key_id, payload))
        if expected is None:
            return False
        COUNTERS.mac_cache_hits += 1
        return expected == signature

    def verify_batch(self, items: Sequence[VerifyItem]) -> bool:
        """O(1)-per-item batch verification over the token registry."""
        tokens = self._tokens
        checked = 0
        hits = 0
        ok = True
        for public_key, payload, signature in items:
            checked += 1
            expected = tokens.get((public_key.key_id, payload))
            if expected is None:
                ok = False
                break
            hits += 1
            if expected != signature:
                ok = False
                break
        COUNTERS.verifications += checked
        COUNTERS.mac_cache_hits += hits
        return ok

    def heavy_hmac(self, iterations: int) -> HeavyHmac:
        return _TokenHeavyHmac(iterations)


class _TokenHeavyHmac(HeavyHmac):
    """Heavy MAC that meters the chain without hashing it.

    ``work_performed`` still advances by the full iteration count on
    every compute — the storage challenge's energy charge is part of
    the *model* — but the MAC value is a token memoized on ``(seed,
    message)``, so prover and challenger agree without a single
    SHA-256 round.  Honest provers recompute from the stored bytes in
    the model; droppers never reach this code (they have no bytes to
    prove), so the token's lack of structure is unobservable in the
    paper's threat model.
    """

    def compute(self, message: bytes, seed: bytes) -> bytes:
        self.work_performed += self.iterations
        key = (seed, message)
        token = self._chains.get(key)
        if token is None:
            token = b"acct-heavy|%d" % len(self._chains)
            self._chains[key] = token
        return token

    def verify(self, message: bytes, seed: bytes, mac: bytes) -> bool:
        return self.compute(message, seed) == mac
