"""Cryptographic substrate for the Give2Get protocols.

The paper assumes nodes capable of public-key signatures, sender-to-
destination encryption, session-key negotiation, hashing, and a
deliberately heavy keyed MAC (Sec. III and IV).  This package builds
all of it from scratch:

* :mod:`repro.crypto.numbers` — primes, modular arithmetic.
* :mod:`repro.crypto.rsa` — RSA keygen / sign / encrypt.
* :mod:`repro.crypto.dh` — Diffie-Hellman session keys.
* :mod:`repro.crypto.symmetric` — authenticated stream cipher.
* :mod:`repro.crypto.hashing` — ``H()``, HMAC, heavy HMAC.
* :mod:`repro.crypto.keys` — identities, certificates, authority.
* :mod:`repro.crypto.provider` — real vs fast simulated providers.
* :mod:`repro.crypto.accounting` — the accounting-only provider tier.
* :mod:`repro.crypto.tiers` — the name -> provider tier registry.
* :mod:`repro.crypto.session` — pairwise authenticated sessions.
"""

from .accounting import AccountingCryptoProvider
from .dh import DhGroup, default_group, generate_group
from .hashing import (
    DEFAULT_HEAVY_ITERATIONS,
    HeavyHmac,
    digest,
    hexdigest,
    hmac_digest,
)
from .keys import Authority, Certificate, CertificateError, NodeIdentity
from .provider import (
    CryptoProvider,
    RealCryptoProvider,
    SimulatedCryptoProvider,
)
from .rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from .tiers import PROVIDER_TIERS, TIER_NAMES, make_provider
from .schnorr import (
    SchnorrCryptoProvider,
    SchnorrError,
    SchnorrScheme,
)
from .session import Session, SessionBroker, SessionError
from .symmetric import AuthenticationError, SymmetricChannel

__all__ = [
    "AccountingCryptoProvider",
    "Authority",
    "AuthenticationError",
    "Certificate",
    "CertificateError",
    "CryptoProvider",
    "DEFAULT_HEAVY_ITERATIONS",
    "DhGroup",
    "HeavyHmac",
    "NodeIdentity",
    "PROVIDER_TIERS",
    "RealCryptoProvider",
    "RsaPrivateKey",
    "RsaPublicKey",
    "SchnorrCryptoProvider",
    "SchnorrError",
    "SchnorrScheme",
    "Session",
    "SessionBroker",
    "SessionError",
    "SimulatedCryptoProvider",
    "SymmetricChannel",
    "TIER_NAMES",
    "default_group",
    "digest",
    "generate_group",
    "generate_keypair",
    "hexdigest",
    "hmac_digest",
    "make_provider",
]
