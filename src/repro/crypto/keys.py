"""Node identities, certificates, and the offline trusted authority.

The paper's system model (Sec. III): every node has a keypair whose
public key "is signed by an authority that is trusted by every node in
the system.  Anyhow the authority is never used actively in the
protocols, thus ... it may remain off-line all the time."

This module implements exactly that:

* :class:`Authority` mints :class:`Certificate` objects binding a node
  id to its public key (used once per node, at enrolment);
* :class:`NodeIdentity` bundles a node's id, private key, and
  certificate and offers ``sign`` / ``verify`` helpers matching the
  paper's ``<m>_A`` notation.

Identities are provider-agnostic: they hold opaque key handles produced
by a :class:`repro.crypto.provider.CryptoProvider`, so the same code
runs over real RSA or the fast registry-backed simulation provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Sequence, Set, Tuple

from ..perf.counters import COUNTERS
from .hashing import digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .provider import CryptoProvider

#: Node identifiers are small integers throughout the simulator.
NodeId = int


class CertificateError(Exception):
    """Raised when a certificate fails verification."""


def _cert_payload(node_id: NodeId, public_key_fingerprint: bytes) -> bytes:
    """Canonical byte encoding of a certificate's signed content."""
    return b"g2g-cert|" + str(node_id).encode() + b"|" + public_key_fingerprint


@dataclass(frozen=True)
class Certificate:
    """Binding of a node id to a public key, signed by the authority.

    Attributes:
        node_id: the subject.
        public_key: opaque public key handle (provider-specific).
        fingerprint: stable digest of the public key.
        signature: the authority's signature over the binding.
    """

    node_id: NodeId
    public_key: Any
    fingerprint: bytes
    signature: bytes


class Authority:
    """The offline trusted authority.

    Holds its own keypair and enrols nodes by signing certificates.  It
    takes no part in the forwarding protocols; the simulator calls
    :meth:`enroll` once per node during setup.
    """

    def __init__(self, provider: "CryptoProvider") -> None:
        self._provider = provider
        self._private, self.public_key = provider.generate_keypair()
        self._issued: Dict[NodeId, Certificate] = {}

    def enroll(self, node_id: NodeId) -> "NodeIdentity":
        """Mint a fresh identity (keypair + certificate) for a node.

        Raises:
            ValueError: if the node id was already enrolled — node ids
                must be unique across the network.
        """
        if node_id in self._issued:
            raise ValueError(f"node {node_id} already enrolled")
        private, public = self._provider.generate_keypair()
        fingerprint = self._provider.fingerprint(public)
        signature = self._provider.sign(
            self._private, _cert_payload(node_id, fingerprint)
        )
        cert = Certificate(
            node_id=node_id,
            public_key=public,
            fingerprint=fingerprint,
            signature=signature,
        )
        self._issued[node_id] = cert
        return NodeIdentity(
            node_id=node_id,
            private_key=private,
            certificate=cert,
            provider=self._provider,
            authority_public_key=self.public_key,
        )

    def verify_certificate(self, cert: Certificate) -> bool:
        """Check an arbitrary certificate against this authority's key."""
        return self._provider.verify(
            self.public_key,
            _cert_payload(cert.node_id, cert.fingerprint),
            cert.signature,
        )


@dataclass
class NodeIdentity:
    """A node's cryptographic identity.

    Exposes the paper's primitives: ``sign`` for ``<m>_A``, ``verify``
    against a peer certificate, and asymmetric ``encrypt_for`` /
    ``decrypt`` used by message generation (the body of every message
    is encrypted to the destination's public key so that relays cannot
    learn the sender or the payload).
    """

    node_id: NodeId
    private_key: Any
    certificate: Certificate
    provider: "CryptoProvider"
    authority_public_key: Any
    # Content keys of peer certificates this identity has already
    # chain-validated against the authority.  Certificates are frozen
    # and the authority key never rotates within a run, so a successful
    # validation holds for the certificate's lifetime; failed
    # validations are never cached and re-verify every time.
    _validated_certs: Set[Tuple[NodeId, bytes, bytes]] = field(
        default_factory=set, init=False, repr=False, compare=False
    )

    def sign(self, payload: bytes) -> bytes:
        """Return the node's signature over ``payload``."""
        return self.provider.sign(self.private_key, payload)

    def verify_peer(
        self, cert: Certificate, payload: bytes, signature: bytes
    ) -> bool:
        """Verify ``signature`` over ``payload`` against a peer's cert.

        Also validates the certificate chain back to the authority
        (memoized per certificate content — certificates are immutable
        and a run has no revocation, so one successful validation
        suffices); a forged certificate invalidates everything signed
        under it.
        """
        cert_key = (cert.node_id, cert.fingerprint, cert.signature)
        if cert_key in self._validated_certs:
            COUNTERS.cert_cache_hits += 1
        else:
            COUNTERS.cert_checks += 1
            if not self.provider.verify(
                self.authority_public_key,
                _cert_payload(cert.node_id, cert.fingerprint),
                cert.signature,
            ):
                return False
            self._validated_certs.add(cert_key)
        return self.provider.verify(cert.public_key, payload, signature)

    def verify_peer_batch(
        self, items: Sequence[Tuple[Certificate, bytes, bytes]]
    ) -> bool:
        """Batched :meth:`verify_peer`: all-or-nothing over ``items``.

        Certificate chains validate first (one memoized check per
        certificate, exactly as the per-item path), then every
        signature goes to the provider in a single
        :meth:`~repro.crypto.provider.CryptoProvider.verify_batch`
        call.  Accept/reject behavior and counter totals match a loop
        of ``verify_peer`` calls; only the per-item Python round-trips
        through the identity and provider layers are batched away.
        """
        provider = self.provider
        validated = self._validated_certs
        batch = []
        for cert, payload, signature in items:
            cert_key = (cert.node_id, cert.fingerprint, cert.signature)
            if cert_key in validated:
                COUNTERS.cert_cache_hits += 1
            else:
                COUNTERS.cert_checks += 1
                if not provider.verify(
                    self.authority_public_key,
                    _cert_payload(cert.node_id, cert.fingerprint),
                    cert.signature,
                ):
                    return False
                validated.add(cert_key)
            batch.append((cert.public_key, payload, signature))
        return provider.verify_batch(batch)

    def encrypt_for(self, cert: Certificate, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` so only the certificate subject reads it."""
        return self.provider.encrypt(cert.public_key, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt a blob addressed to this node."""
        return self.provider.decrypt(self.private_key, ciphertext)

    def key_fingerprint(self) -> bytes:
        """Digest identifying this node's public key."""
        return self.certificate.fingerprint


def payload_for_receipt(kind: str, parts: bytes) -> bytes:
    """Canonical encoding helper shared by wire-level receipts.

    Prefixing with a kind tag prevents cross-protocol signature reuse
    (a signed POR can never be replayed as, say, an FQ_RESP).
    """
    return digest(kind.encode() + b"|" + parts)
