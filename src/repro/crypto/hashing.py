"""Hashing primitives used throughout the Give2Get protocols.

The paper (Sec. III) writes ``H()`` for a cryptographic hash function and
uses a keyed *heavy* HMAC during the test phase: the storage challenge
must be expensive to compute so that storing-and-answering is never
cheaper than relaying (Sec. IV-B).  We provide:

* :func:`digest` / :func:`hexdigest` — the plain ``H()`` of the paper.
* :func:`hmac_digest` — standard HMAC-SHA256, with a fast path for
  callers that HMAC many payloads under one key: :func:`prepare_hmac_key`
  precomputes the padded-key state once, and ``hmac_digest`` accepts
  the prepared key anywhere a raw ``bytes`` key is accepted, producing
  bit-identical MACs at roughly half the SHA-256 block work per call.
  The simulated crypto provider and :class:`HeavyHmac` both run on this
  one implementation.
* :class:`HeavyHmac` — an iterated (PBKDF2-style) HMAC whose iteration
  count is the knob mapping to an energy price; the number of
  iterations actually executed is recorded so simulations can charge
  the corresponding energy cost to the node that answered a challenge.

Everything here is deterministic and stateless except for the
iteration counter on :class:`HeavyHmac`.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple, Union

from ..perf.counters import COUNTERS

#: Size in bytes of all digests produced by this module.
DIGEST_SIZE = hashlib.sha256().digest_size

#: Default iteration count for the heavy HMAC.  The paper only requires
#: that answering the storage challenge costs more energy than relaying
#: the message would have; simulations map iterations to joules via
#: :class:`repro.sim.config.EnergyModel`.
DEFAULT_HEAVY_ITERATIONS = 10_000

#: A reusable HMAC state with the key schedule already absorbed
#: (returned by :func:`prepare_hmac_key`, accepted by :func:`hmac_digest`).
#: Concretely an OpenSSL ``_hashlib.HMAC`` when the accelerated
#: backend is available, else a pure-``hmac.HMAC`` — both expose the
#: same ``copy()``/``update()``/``digest()`` surface, which is all the
#: fast path relies on.
PreparedHmacKey = Any

#: Either form of HMAC key the fast path accepts.
HmacKey = Union[bytes, PreparedHmacKey]


def digest(data: bytes) -> bytes:
    """Return ``H(data)`` — the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hexdigest(data: bytes) -> str:
    """Return ``H(data)`` as a hex string (convenient for message ids)."""
    return hashlib.sha256(data).hexdigest()


def prepare_hmac_key(key: bytes) -> PreparedHmacKey:
    """Absorb ``key`` into a reusable HMAC-SHA256 state.

    The returned object is never mutated by :func:`hmac_digest` — each
    call works on a cheap ``copy()`` — so one prepared key can serve
    any number of digests, concurrently and in any order.

    When the interpreter carries the OpenSSL backend, the prepared key
    is the raw ``_hashlib.HMAC`` state rather than the stdlib wrapper:
    the wrapper's ``copy()``/``update()``/``digest()`` are thin Python
    shims around exactly that object, and shedding them roughly halves
    the per-MAC overhead on the relay hot path.  MACs are bit-identical
    either way.
    """
    COUNTERS.hmac_prepares += 1
    mac = _hmac.new(key, None, hashlib.sha256)
    return getattr(mac, "_hmac", None) or mac


def hmac_digest(key: HmacKey, data: bytes) -> bytes:
    """HMAC-SHA256 of ``data`` under ``key``.

    ``key`` may be raw bytes (the classic form) or a prepared key from
    :func:`prepare_hmac_key`; both produce identical MACs.
    """
    if type(key) is bytes:
        COUNTERS.hmac_prepares += 1
        return _hmac.new(key, data, hashlib.sha256).digest()
    COUNTERS.hmac_copies += 1
    mac = key.copy()
    mac.update(data)
    return mac.digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison of two byte strings."""
    return _hmac.compare_digest(a, b)


@dataclass
class HeavyHmac:
    """Deliberately expensive keyed MAC for the storage challenge.

    The test phase of G2G Epidemic Forwarding (Fig. 2 of the paper)
    challenges a relay that cannot show two Proofs of Relay to compute
    ``HMAC(m, s)`` for a fresh random seed ``s``.  The HMAC "should be
    designed in such a way to be heavy to compute" so a selfish node
    prefers relaying over hoarding.  We realize this with an iterated
    HMAC chain: ``h_0 = HMAC(s, m)``, ``h_i = HMAC(s, h_{i-1})``.

    Attributes:
        iterations: chain length; the energy knob.
        work_performed: total iterations executed by this instance,
            across all calls — used by the simulator's energy model.
    """

    iterations: int = DEFAULT_HEAVY_ITERATIONS
    work_performed: int = field(default=0, init=False)
    # Chain memo: (seed, first link) -> final value.  A storage proof
    # is computed by the prover and immediately recomputed by the
    # challenger; the chain past the first link depends only on the
    # seed and on h_0, so the second traversal is pure redundancy.
    # ``work_performed`` still counts every modeled iteration — the
    # cache saves simulator CPU, not the energy the *node* is charged.
    _chains: Dict[Tuple[bytes, bytes], bytes] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {self.iterations}"
            )

    def compute(self, message: bytes, seed: bytes) -> bytes:
        """Compute the heavy MAC of ``message`` under seed ``seed``.

        The whole message participates in the first link of the chain,
        so the prover must hold the message bytes; subsequent links
        only mix the running digest, keeping cost independent of the
        message size (the expense is in the chain length).  Every link
        is keyed by the same seed, so the key schedule is absorbed once
        via :func:`prepare_hmac_key` and each link pays only for its
        own input — the chain values are unchanged.

        The prover must always compute ``h_0`` over the full message
        (that is the storage proof); the remaining chain is memoized on
        ``(seed, h_0)``, so the verifier recomputing the same challenge
        traverses it for free.  ``work_performed`` is charged in full
        either way — it models the node's energy, not simulator CPU.
        """
        prepared = prepare_hmac_key(seed)
        value = hmac_digest(prepared, message)
        self.work_performed += self.iterations
        cached = self._chains.get((seed, value))
        if cached is not None:
            return cached
        head = value
        links = self.iterations - 1
        fork = prepared.copy
        for _ in range(links):
            mac = fork()
            mac.update(value)
            value = mac.digest()
        COUNTERS.hmac_copies += links
        self._chains[(seed, head)] = value
        return value

    def verify(self, message: bytes, seed: bytes, mac: bytes) -> bool:
        """Recompute and compare in constant time."""
        return constant_time_equal(self.compute(message, seed), mac)
