"""Hashing primitives used throughout the Give2Get protocols.

The paper (Sec. III) writes ``H()`` for a cryptographic hash function and
uses a keyed *heavy* HMAC during the test phase: the storage challenge
must be expensive to compute so that storing-and-answering is never
cheaper than relaying (Sec. IV-B).  We provide:

* :func:`digest` / :func:`hexdigest` — the plain ``H()`` of the paper.
* :func:`hmac_digest` — standard HMAC-SHA256.
* :class:`HeavyHmac` — an iterated (PBKDF2-style) HMAC whose iteration
  count is the knob mapping to an energy price; the number of
  iterations actually executed is recorded so simulations can charge
  the corresponding energy cost to the node that answered a challenge.

Everything here is deterministic and stateless except for the
iteration counter on :class:`HeavyHmac`.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass, field

#: Size in bytes of all digests produced by this module.
DIGEST_SIZE = hashlib.sha256().digest_size

#: Default iteration count for the heavy HMAC.  The paper only requires
#: that answering the storage challenge costs more energy than relaying
#: the message would have; simulations map iterations to joules via
#: :class:`repro.sim.config.EnergyModel`.
DEFAULT_HEAVY_ITERATIONS = 10_000


def digest(data: bytes) -> bytes:
    """Return ``H(data)`` — the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hexdigest(data: bytes) -> str:
    """Return ``H(data)`` as a hex string (convenient for message ids)."""
    return hashlib.sha256(data).hexdigest()


def hmac_digest(key: bytes, data: bytes) -> bytes:
    """Standard HMAC-SHA256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison of two byte strings."""
    return _hmac.compare_digest(a, b)


@dataclass
class HeavyHmac:
    """Deliberately expensive keyed MAC for the storage challenge.

    The test phase of G2G Epidemic Forwarding (Fig. 2 of the paper)
    challenges a relay that cannot show two Proofs of Relay to compute
    ``HMAC(m, s)`` for a fresh random seed ``s``.  The HMAC "should be
    designed in such a way to be heavy to compute" so a selfish node
    prefers relaying over hoarding.  We realize this with an iterated
    HMAC chain: ``h_0 = HMAC(s, m)``, ``h_i = HMAC(s, h_{i-1})``.

    Attributes:
        iterations: chain length; the energy knob.
        work_performed: total iterations executed by this instance,
            across all calls — used by the simulator's energy model.
    """

    iterations: int = DEFAULT_HEAVY_ITERATIONS
    work_performed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {self.iterations}"
            )

    def compute(self, message: bytes, seed: bytes) -> bytes:
        """Compute the heavy MAC of ``message`` under seed ``seed``.

        The whole message participates in the first link of the chain,
        so the prover must hold the message bytes; subsequent links
        only mix the running digest, keeping cost independent of the
        message size (the expense is in the chain length).
        """
        value = _hmac.new(seed, message, hashlib.sha256).digest()
        for _ in range(self.iterations - 1):
            value = _hmac.new(seed, value, hashlib.sha256).digest()
        self.work_performed += self.iterations
        return value

    def verify(self, message: bytes, seed: bytes, mac: bytes) -> bool:
        """Recompute and compare in constant time."""
        return constant_time_equal(self.compute(message, seed), mac)
