"""The provider-tier registry: real / simulated / accounting by name.

One canonical mapping from tier name to constructor so every selection
surface — ``Give2GetBase(provider=...)``, ``api.run(provider=...)``,
the CLI's ``--provider``, ``repro perf`` — resolves names identically.
Tiers order by fidelity-versus-speed:

* ``"real"`` — from-scratch RSA/DH; the ground truth, minutes per run.
* ``"simulated"`` — HMAC-backed registry; the default, bit-identical
  results at a small fraction of the cost.
* ``"accounting"`` — token signatures, zero hashing on the hot path;
  bit-identical results again (the conformance suite in
  ``tests/test_provider_tiers.py`` holds it to that) for every run
  inside the paper's threat model.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from .accounting import AccountingCryptoProvider
from .provider import (
    CryptoProvider,
    RealCryptoProvider,
    SimulatedCryptoProvider,
)

#: Tier name -> constructor over the run's seeded RNG.
PROVIDER_TIERS: Dict[
    str, Callable[[Optional[random.Random]], CryptoProvider]
] = {
    "real": lambda rng: RealCryptoProvider(rng=rng),
    "simulated": lambda rng: SimulatedCryptoProvider(rng),
    "accounting": lambda rng: AccountingCryptoProvider(rng),
}

#: Tier names in fidelity order (stable for CLI choices and reports).
TIER_NAMES: Tuple[str, ...] = ("real", "simulated", "accounting")


def make_provider(
    name: str, rng: Optional[random.Random] = None
) -> CryptoProvider:
    """Construct the named provider tier over ``rng``.

    Raises:
        ValueError: for an unknown tier name.
    """
    try:
        factory = PROVIDER_TIERS[name]
    except KeyError:
        raise ValueError(
            f"unknown crypto provider tier {name!r}; "
            f"expected one of {sorted(PROVIDER_TIERS)}"
        ) from None
    return factory(rng)
