"""Schnorr signatures and ElGamal-style hybrid encryption.

The paper motivates elliptic-curve signatures for their size ("a
secure signature based on elliptic curves is just 160 bits long",
Sec. III).  Pure-Python EC arithmetic is out of scope, but Schnorr
signatures over the prime-order subgroup of a safe-prime group are the
same construction EC-Schnorr instantiates — short signatures (two
subgroup scalars), cheap verification — so this module provides the
closest faithful stand-in:

* **keys**: ``x`` random in ``[1, q-1]``, ``y = g^x mod p`` where
  ``p = 2q + 1`` (the group of :mod:`repro.crypto.dh`) and ``g``
  generates the order-``q`` quadratic-residue subgroup;
* **signatures**: classic Schnorr with a deterministic,
  RFC-6979-style nonce (HMAC of key and message), so signing never
  depends on ambient randomness;
* **encryption**: ElGamal KEM — an ephemeral DH share wraps a
  symmetric key for the stream cipher of
  :mod:`repro.crypto.symmetric`.

:class:`SchnorrCryptoProvider` packages it all behind the standard
:class:`repro.crypto.provider.CryptoProvider` interface, so the G2G
protocols run unchanged over Schnorr instead of RSA.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from . import symmetric
from .dh import DhGroup, default_group
from .hashing import digest, hmac_digest
from .numbers import bytes_to_int, int_to_bytes
from .provider import CryptoProvider


class SchnorrError(Exception):
    """Raised on malformed keys or ciphertexts."""


@dataclass(frozen=True)
class SchnorrPublicKey:
    """``y = g^x`` in the prime-order subgroup."""

    y: int

    def fingerprint(self) -> bytes:
        """Stable digest of the public key."""
        return digest(b"schnorr|" + int_to_bytes(self.y))


@dataclass(frozen=True)
class SchnorrPrivateKey:
    """The secret exponent, with its public half."""

    x: int
    public_key: SchnorrPublicKey


class SchnorrScheme:
    """Signature + KEM operations over one group."""

    def __init__(self, group: DhGroup | None = None) -> None:
        self.group = group if group is not None else default_group()
        self.p = self.group.p
        self.q = (self.p - 1) // 2
        # The square of the group generator lands in (and generates)
        # the order-q quadratic-residue subgroup.
        self.g = pow(self.group.g, 2, self.p)

    # -- keys -----------------------------------------------------------

    def generate_keypair(
        self, rng: random.Random
    ) -> Tuple[SchnorrPrivateKey, SchnorrPublicKey]:
        """Sample a fresh keypair."""
        x = rng.randrange(1, self.q)
        public = SchnorrPublicKey(y=pow(self.g, x, self.p))
        return SchnorrPrivateKey(x=x, public_key=public), public

    # -- signatures -------------------------------------------------------

    def _challenge(self, r: int, message: bytes) -> int:
        return bytes_to_int(
            digest(b"schnorr-e|" + int_to_bytes(r) + b"|" + message)
        ) % self.q

    def _nonce(self, private: SchnorrPrivateKey, message: bytes) -> int:
        """Deterministic RFC-6979-style nonce."""
        seed = hmac_digest(
            digest(b"schnorr-k|" + int_to_bytes(private.x)), message
        )
        k = bytes_to_int(seed) % self.q
        return k if k != 0 else 1

    def sign(self, private: SchnorrPrivateKey, message: bytes) -> bytes:
        """Produce the (e, s) Schnorr signature."""
        k = self._nonce(private, message)
        r = pow(self.g, k, self.p)
        e = self._challenge(r, message)
        s = (k + private.x * e) % self.q
        width = (self.q.bit_length() + 7) // 8
        return e.to_bytes(width, "big") + s.to_bytes(width, "big")

    def verify(
        self, public: SchnorrPublicKey, message: bytes, signature: bytes
    ) -> bool:
        """Check an (e, s) signature."""
        width = (self.q.bit_length() + 7) // 8
        if len(signature) != 2 * width:
            return False
        e = int.from_bytes(signature[:width], "big")
        s = int.from_bytes(signature[width:], "big")
        if not (0 <= e < self.q and 0 <= s < self.q):
            return False
        # r' = g^s * y^{-e}
        r = (
            pow(self.g, s, self.p)
            * pow(public.y, self.q - e % self.q, self.p)
        ) % self.p
        return self._challenge(r, message) == e

    # -- ElGamal KEM --------------------------------------------------------

    def encrypt(
        self, public: SchnorrPublicKey, plaintext: bytes, rng: random.Random
    ) -> bytes:
        """Hybrid encryption: ephemeral DH wraps a stream-cipher key."""
        k = rng.randrange(1, self.q)
        c1 = pow(self.g, k, self.p)
        shared = pow(public.y, k, self.p)
        key = digest(b"schnorr-kem|" + int_to_bytes(shared))
        body = symmetric.encrypt(key, plaintext, rng)
        width = (self.p.bit_length() + 7) // 8
        return c1.to_bytes(width, "big") + body

    def decrypt(self, private: SchnorrPrivateKey, blob: bytes) -> bytes:
        """Invert :meth:`encrypt`.

        Raises:
            SchnorrError: on truncated or out-of-range ciphertexts.
            repro.crypto.symmetric.AuthenticationError: on tampering.
        """
        width = (self.p.bit_length() + 7) // 8
        if len(blob) <= width:
            raise SchnorrError("truncated ciphertext")
        c1 = int.from_bytes(blob[:width], "big")
        if not 1 < c1 < self.p - 1:
            raise SchnorrError("ephemeral share out of range")
        shared = pow(c1, private.x, self.p)
        key = digest(b"schnorr-kem|" + int_to_bytes(shared))
        return symmetric.decrypt(key, blob[width:])


class SchnorrCryptoProvider(CryptoProvider):
    """Drop-in :class:`CryptoProvider` backed by Schnorr + ElGamal KEM."""

    def __init__(
        self,
        rng: random.Random | None = None,
        group: DhGroup | None = None,
    ) -> None:
        # A fixed-seed default keeps unseeded construction replayable;
        # the simulation always injects ctx.rng.
        self._rng = rng if rng is not None else random.Random(0)
        self._scheme = SchnorrScheme(group)

    def generate_keypair(self) -> Tuple[SchnorrPrivateKey, SchnorrPublicKey]:
        return self._scheme.generate_keypair(self._rng)

    def fingerprint(self, public_key: SchnorrPublicKey) -> bytes:
        return public_key.fingerprint()

    def sign(self, private_key: SchnorrPrivateKey, payload: bytes) -> bytes:
        return self._scheme.sign(private_key, payload)

    def verify(
        self, public_key: SchnorrPublicKey, payload: bytes, signature: bytes
    ) -> bool:
        return self._scheme.verify(public_key, payload, signature)

    def encrypt(self, public_key: SchnorrPublicKey, plaintext: bytes) -> bytes:
        return self._scheme.encrypt(public_key, plaintext, self._rng)

    def decrypt(self, private_key: SchnorrPrivateKey, ciphertext: bytes) -> bytes:
        return self._scheme.decrypt(private_key, ciphertext)

    def new_session_key(self, rng: random.Random) -> bytes:
        a = self._scheme.group.private_exponent(rng)
        b = self._scheme.group.private_exponent(rng)
        return self._scheme.group.shared_secret(
            a, self._scheme.group.public_value(b)
        )
