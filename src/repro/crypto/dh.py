"""Finite-field Diffie-Hellman key agreement for session keys.

When two nodes meet, the relay phase "starts a session ... by
negotiating a cryptographic session key" (Sec. IV-A of the paper).  We
realize that negotiation with classic Diffie-Hellman over a safe-prime
group; the shared secret is hashed into an AES-strength symmetric key
consumed by :mod:`repro.crypto.symmetric`.

A well-known 512-bit safe-prime group is precomputed so simulations do
not pay safe-prime generation per run; fresh groups can be generated
with :func:`generate_group` when desired.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .hashing import digest
from .numbers import int_to_bytes, random_safe_prime

# A fixed 512-bit safe prime (p = 2q + 1 with q prime), generated once
# with ``generate_group(512, random.Random(2010))`` and inlined so that
# importing this module is instant.  Generator 2 has order q or 2q in a
# safe-prime group; squaring the public values confines us to the
# prime-order subgroup.
_DEFAULT_P = int(
    "10485531366297010274642593257342334576129909037398145772837058"
    "56066063578275249877902563781673582790410359746781091782824486"
    "4740103065242242127935612637363"
)
_DEFAULT_G = 2


class DhError(Exception):
    """Raised on out-of-range public values."""


@dataclass(frozen=True)
class DhGroup:
    """A Diffie-Hellman group ``(p, g)`` with ``p`` a safe prime."""

    p: int
    g: int

    def __post_init__(self) -> None:
        if self.p < 5 or not 1 < self.g < self.p - 1:
            raise DhError(f"invalid group (p={self.p}, g={self.g})")

    def private_exponent(self, rng: random.Random) -> int:
        """Sample a private exponent in ``[2, p - 2]``."""
        return rng.randrange(2, self.p - 1)

    def public_value(self, private: int) -> int:
        """Compute ``g^private mod p``."""
        return pow(self.g, private, self.p)

    def shared_secret(self, private: int, peer_public: int) -> bytes:
        """Derive the shared session key from a peer's public value.

        The raw DH secret is squared into the prime-order subgroup and
        hashed, giving a uniform 32-byte key.

        Raises:
            DhError: if ``peer_public`` is outside ``(1, p - 1)`` —
                rejecting the degenerate values 0, 1 and p - 1 blocks
                trivial small-subgroup confinement.
        """
        if not 1 < peer_public < self.p - 1:
            raise DhError(f"peer public value out of range: {peer_public}")
        secret = pow(peer_public, 2 * private, self.p)
        return digest(b"g2g-session|" + int_to_bytes(secret))


def default_group() -> DhGroup:
    """The library's precomputed 512-bit safe-prime group."""
    return DhGroup(p=_DEFAULT_P, g=_DEFAULT_G)


def generate_group(bits: int, rng: random.Random) -> DhGroup:
    """Generate a fresh safe-prime group of the given size.

    This is expensive (minutes for >= 1024 bits in pure Python); prefer
    :func:`default_group` unless group freshness matters.
    """
    return DhGroup(p=random_safe_prime(bits, rng), g=2)
