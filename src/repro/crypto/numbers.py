"""Number-theoretic primitives for the from-scratch crypto substrate.

The Give2Get protocols assume every node can sign messages and open
encrypted sessions (Sec. III of the paper).  This module provides the
arithmetic needed to build RSA signatures and Diffie-Hellman key
agreement without any third-party cryptography dependency: modular
exponentiation helpers, the extended Euclidean algorithm, modular
inverses, Miller-Rabin primality testing, and random prime generation.

All functions are deterministic given the supplied ``random.Random``
instance, which keeps key generation reproducible in tests and
simulations.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

# Small primes used for fast trial-division screening before the more
# expensive Miller-Rabin rounds.
_SMALL_PRIMES: Tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251,
)

# Number of Miller-Rabin rounds.  40 rounds give an error probability
# below 2^-80 for random candidates, far more than enough for the
# simulated network sizes used here.
_MILLER_RABIN_ROUNDS = 40


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.

    Iterative extended Euclidean algorithm; works for any integers,
    including negatives and zero.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    # Normalize so that the gcd is non-negative.
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``m``.

    Raises:
        ValueError: if ``a`` is not invertible mod ``m`` (gcd != 1) or
            if ``m < 2``.
    """
    if m < 2:
        raise ValueError(f"modulus must be >= 2, got {m}")
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def is_probable_prime(n: int, rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test.

    Args:
        n: candidate integer.
        rng: source of randomness for witness selection.  A fresh
            ``random.Random`` is created when omitted.

    Returns:
        True if ``n`` is prime with overwhelming probability; False if
        ``n`` is certainly composite (or < 2).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if rng is None:
        # Deterministic default: Miller-Rabin witness choice must not
        # make "same seed" runs diverge (fixed witnesses are as strong
        # as random ones for non-adversarial inputs).
        rng = random.Random(0)

    # Write n - 1 = d * 2^s with d odd.
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1

    for _ in range(_MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such
    primes has exactly ``2 * bits`` bits (standard RSA practice), and
    the low bit is forced to 1 so candidates are odd.

    Args:
        bits: bit length, must be >= 8.
        rng: deterministic source of randomness.

    Raises:
        ValueError: if ``bits < 8``.
    """
    if bits < 8:
        raise ValueError(f"prime bit length must be >= 8, got {bits}")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Generate a safe prime ``p`` (i.e. ``(p - 1) / 2`` is also prime).

    Safe primes make Diffie-Hellman groups with a large prime-order
    subgroup easy to construct.  This is noticeably slower than
    :func:`random_prime`; the library ships precomputed groups for the
    common sizes (see :mod:`repro.crypto.dh`) so this function is only
    needed when generating fresh groups.
    """
    if bits < 8:
        raise ValueError(f"prime bit length must be >= 8, got {bits}")
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng):
            return p


def int_to_bytes(n: int) -> bytes:
    """Encode a non-negative integer big-endian with minimal length.

    Zero encodes to a single zero byte so the encoding is never empty.
    """
    if n < 0:
        raise ValueError("cannot encode negative integers")
    length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")
