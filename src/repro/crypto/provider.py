"""Pluggable crypto providers: real RSA/DH or fast simulated crypto.

Large parameter sweeps (e.g. the Fig. 3 dropper sweep runs dozens of
3-hour simulations) cannot afford a 512-bit RSA signature per relayed
message, so the library separates *what* the protocols do from *how*
the primitives are computed:

* :class:`RealCryptoProvider` — from-scratch RSA signatures, hybrid
  RSA + stream-cipher encryption, DH session keys.  Used in the crypto
  test suite and available for small end-to-end runs.
* :class:`SimulatedCryptoProvider` — an HMAC-based provider backed by a
  private key registry.  Signatures remain *unforgeable by protocol
  code* (only the provider can reach the registry; a node object holds
  an opaque handle, not the secret), verification failures are still
  detected, and encryption still round-trips — so every protocol code
  path behaves identically, at a tiny fraction of the cost.  This is
  the substitution documented in DESIGN.md §3.

Both satisfy the :class:`CryptoProvider` interface consumed by
:mod:`repro.crypto.keys` and :mod:`repro.crypto.session`.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

from ..perf.counters import COUNTERS
from . import rsa, symmetric
from .dh import DhGroup, default_group
from .hashing import (
    HeavyHmac,
    PreparedHmacKey,
    constant_time_equal,
    digest,
    hmac_digest,
    prepare_hmac_key,
)

#: One batched verification item: ``(public_key, payload, signature)``.
VerifyItem = Tuple[Any, bytes, bytes]


class CryptoProvider(ABC):
    """Abstract factory for the asymmetric primitives the protocols use."""

    @abstractmethod
    def generate_keypair(self) -> Tuple[Any, Any]:
        """Return an opaque ``(private, public)`` handle pair."""

    @abstractmethod
    def fingerprint(self, public_key: Any) -> bytes:
        """Stable digest identifying a public key."""

    @abstractmethod
    def sign(self, private_key: Any, payload: bytes) -> bytes:
        """Sign ``payload``."""

    @abstractmethod
    def verify(self, public_key: Any, payload: bytes, signature: bytes) -> bool:
        """Check a signature; must return False on any forgery."""

    def verify_batch(self, items: Sequence[VerifyItem]) -> bool:
        """Check a batch of signatures: True iff *every* item verifies.

        The relay hot path collects the signature checks of one
        handshake choke point and submits them together, so providers
        can answer N checks in one call.  The base implementation
        simply loops :meth:`verify` (stopping at the first failure,
        like the per-item ``all(...)`` it replaces); fast providers
        override it with a loop-hoisted variant.
        """
        return all(
            self.verify(public_key, payload, signature)
            for public_key, payload, signature in items
        )

    @abstractmethod
    def encrypt(self, public_key: Any, plaintext: bytes) -> bytes:
        """Public-key (hybrid) encryption of arbitrary-length data."""

    @abstractmethod
    def decrypt(self, private_key: Any, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`; raises on tampering."""

    @abstractmethod
    def new_session_key(self, rng: random.Random) -> bytes:
        """Derive a fresh pairwise session key (the DH handshake)."""

    def heavy_hmac(self, iterations: int) -> HeavyHmac:
        """Build the heavy MAC used by the storage challenge.

        Providers that model crypto instead of computing it (the
        accounting tier) override this with a token-valued variant
        that still meters ``work_performed`` — the energy charge is
        part of the model, the SHA-256 chain is not.
        """
        return HeavyHmac(iterations)


class RealCryptoProvider(CryptoProvider):
    """Provider backed by the from-scratch RSA and DH implementations."""

    def __init__(
        self,
        key_bits: int = rsa.DEFAULT_KEY_BITS,
        rng: random.Random | None = None,
        group: DhGroup | None = None,
    ) -> None:
        self._key_bits = key_bits
        # A fixed-seed default keeps unseeded construction replayable;
        # the simulation always injects ctx.rng.
        self._rng = rng if rng is not None else random.Random(0)
        self._group = group if group is not None else default_group()

    def generate_keypair(self) -> Tuple[rsa.RsaPrivateKey, rsa.RsaPublicKey]:
        private = rsa.generate_keypair(self._key_bits, self._rng)
        return private, private.public_key

    def fingerprint(self, public_key: rsa.RsaPublicKey) -> bytes:
        return public_key.fingerprint()

    def sign(self, private_key: rsa.RsaPrivateKey, payload: bytes) -> bytes:
        return private_key.sign(payload)

    def verify(
        self, public_key: rsa.RsaPublicKey, payload: bytes, signature: bytes
    ) -> bool:
        return public_key.verify(payload, signature)

    def encrypt(self, public_key: rsa.RsaPublicKey, plaintext: bytes) -> bytes:
        """Hybrid encryption: RSA-wrap a random key, stream-encrypt data.

        A 16-byte content key is wrapped so that even the smallest
        supported moduli (384 bits) can carry it.
        """
        key = bytes(self._rng.getrandbits(8) for _ in range(16))
        wrapped = public_key.encrypt(key, self._rng)
        body = symmetric.encrypt(key, plaintext, self._rng)
        header = len(wrapped).to_bytes(2, "big")
        return header + wrapped + body

    def decrypt(self, private_key: rsa.RsaPrivateKey, ciphertext: bytes) -> bytes:
        if len(ciphertext) < 2:
            raise rsa.RsaError("truncated hybrid ciphertext")
        wrapped_len = int.from_bytes(ciphertext[:2], "big")
        wrapped = ciphertext[2 : 2 + wrapped_len]
        body = ciphertext[2 + wrapped_len :]
        key = private_key.decrypt(wrapped)
        return symmetric.decrypt(key, body)

    def new_session_key(self, rng: random.Random) -> bytes:
        """Run an (unauthenticated-channel) DH exchange for both sides.

        The simulator models both endpoints of the handshake at once —
        contacts are bilateral — so the provider simply executes the
        two half-exchanges and returns the agreed key.
        """
        a = self._group.private_exponent(rng)
        b = self._group.private_exponent(rng)
        key_a = self._group.shared_secret(a, self._group.public_value(b))
        key_b = self._group.shared_secret(b, self._group.public_value(a))
        assert key_a == key_b
        return key_a


@dataclass(frozen=True)
class _SimPublicKey:
    """Opaque public handle of the simulated provider."""

    key_id: int


@dataclass(frozen=True)
class _SimPrivateKey:
    """Opaque private handle; the secret stays inside the provider."""

    key_id: int


class SimulatedCryptoProvider(CryptoProvider):
    """Fast provider preserving verification semantics.

    Each keypair is a random 32-byte secret held in a registry private
    to the provider.  ``sign`` = HMAC(secret, payload); ``verify``
    recomputes via the registry.  Protocol code only ever holds the
    opaque handles, so within the simulation's threat model (selfish,
    non-byzantine nodes that cannot break crypto) forging another
    node's signature is impossible, exactly as with real RSA.

    Encryption is the same stream cipher as the real provider keyed by
    a per-key derived secret, so confidentiality-dependent logic (e.g.
    relays not learning a message's destination) behaves identically.
    """

    def __init__(self, rng: random.Random | None = None) -> None:
        # A fixed-seed default keeps unseeded construction replayable;
        # the simulation always injects ctx.rng.
        self._rng = rng if rng is not None else random.Random(0)
        self._secrets: Dict[int, bytes] = {}
        # Prepared signing keys: HMAC(digest(b"sign|" + secret)) with
        # the key schedule pre-absorbed, built once per key_id.  Each
        # sign/verify works on a copy, so MACs are bit-identical to
        # the rebuild-per-call form at roughly half the block work.
        self._signing_keys: Dict[int, PreparedHmacKey] = {}
        # Signature memo: (key_id, payload) -> MAC.  HMACs are
        # deterministic, so a verification of bytes this provider
        # itself signed (the overwhelmingly common case: a Proof of
        # Relay is checked by the giver the moment the taker signs it)
        # is a lookup + constant-time compare instead of a recompute.
        # A miss falls through to the full computation, so forgeries
        # are rejected exactly as before.
        self._macs: Dict[Tuple[int, bytes], bytes] = {}
        # digest(b"enc|" + secret), derived once per key_id.
        self._enc_keys: Dict[int, bytes] = {}
        self._ids = itertools.count(1)

    def generate_keypair(self) -> Tuple[_SimPrivateKey, _SimPublicKey]:
        key_id = next(self._ids)
        self._secrets[key_id] = bytes(
            self._rng.getrandbits(8) for _ in range(32)
        )
        return _SimPrivateKey(key_id), _SimPublicKey(key_id)

    def fingerprint(self, public_key: _SimPublicKey) -> bytes:
        return digest(b"sim-key|" + str(public_key.key_id).encode())

    def _signing_key(self, key_id: int) -> PreparedHmacKey:
        prepared = self._signing_keys.get(key_id)
        if prepared is None:
            prepared = prepare_hmac_key(
                digest(b"sign|" + self._secrets[key_id])
            )
            self._signing_keys[key_id] = prepared
        return prepared

    def _enc_key(self, key_id: int) -> bytes:
        derived = self._enc_keys.get(key_id)
        if derived is None:
            derived = self._enc_keys[key_id] = digest(
                b"enc|" + self._secrets[key_id]
            )
        return derived

    def sign(self, private_key: _SimPrivateKey, payload: bytes) -> bytes:
        COUNTERS.signatures += 1
        COUNTERS.hmac_copies += 1
        key_id = private_key.key_id
        # Inlined hmac_digest fast path: one sign per relay hand-off.
        # The prepared-key lookup is inlined too — after the first
        # sign per key it is a single dict hit.
        prepared = self._signing_keys.get(key_id)
        if prepared is None:
            prepared = self._signing_key(key_id)
        state = prepared.copy()
        state.update(payload)
        mac = state.digest()
        self._macs[(key_id, payload)] = mac
        return mac

    def verify(
        self, public_key: _SimPublicKey, payload: bytes, signature: bytes
    ) -> bool:
        COUNTERS.verifications += 1
        key_id = public_key.key_id
        expected = self._macs.get((key_id, payload))
        if expected is None:
            if key_id not in self._secrets:
                return False
            expected = hmac_digest(self._signing_key(key_id), payload)
            self._macs[(key_id, payload)] = expected
        else:
            COUNTERS.mac_cache_hits += 1
        return constant_time_equal(expected, signature)

    def verify_batch(self, items: Sequence[VerifyItem]) -> bool:
        """Loop-hoisted batch verification over the MAC memo.

        Behaves exactly like a loop of :meth:`verify` — same memo
        reads/writes, same short-circuit on the first failure, same
        counter totals — but resolves the memo and counters once per
        batch instead of once per signature.
        """
        macs = self._macs
        equal = constant_time_equal
        checked = 0
        hits = 0
        ok = True
        for public_key, payload, signature in items:
            checked += 1
            key_id = public_key.key_id
            expected = macs.get((key_id, payload))
            if expected is None:
                if key_id not in self._secrets:
                    ok = False
                    break
                expected = hmac_digest(self._signing_key(key_id), payload)
                macs[(key_id, payload)] = expected
            else:
                hits += 1
            if not equal(expected, signature):
                ok = False
                break
        COUNTERS.verifications += checked
        COUNTERS.mac_cache_hits += hits
        return ok

    def encrypt(self, public_key: _SimPublicKey, plaintext: bytes) -> bytes:
        return symmetric.encrypt(
            self._enc_key(public_key.key_id), plaintext, self._rng
        )

    def decrypt(self, private_key: _SimPrivateKey, ciphertext: bytes) -> bytes:
        return symmetric.decrypt(self._enc_key(private_key.key_id), ciphertext)

    def new_session_key(self, rng: random.Random) -> bytes:
        return symmetric.random_key(rng)
