"""From-scratch RSA key generation, signatures, and encryption.

The paper assumes "every node has a public key and the corresponding
private key" signed by an offline trusted authority (Sec. III).  This
module provides the asymmetric primitive: textbook RSA hardened with a
full-domain-hash style padding for signatures and OAEP-like masking for
encryption (both built on SHA-256, see :mod:`repro.crypto.hashing`).

Keys default to 512-bit moduli — generation is fast enough to mint a
keypair per simulated node while remaining far beyond what honest-but-
selfish simulation code could forge.  The key size is a parameter, so
tests exercise both smaller (faster) and larger keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .hashing import digest
from .numbers import (
    bytes_to_int,
    int_to_bytes,
    modinv,
    random_prime,
)

#: Default modulus size in bits.
DEFAULT_KEY_BITS = 512

#: The usual public exponent.
PUBLIC_EXPONENT = 65537

#: Seed width for randomized encryption padding; 16 bytes keeps the
#: padding overhead small enough for 384-bit test keys while providing
#: 128 bits of randomization.
SEED_SIZE = 16


class RsaError(Exception):
    """Raised on malformed ciphertexts or invalid key material."""


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``.

    Hashable and immutable so it can be used as a node identity token
    and embedded in certificates.
    """

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        """Size of the modulus in bytes."""
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> bytes:
        """Stable short identifier of the key (hash of its encoding)."""
        return digest(int_to_bytes(self.n) + b"|" + int_to_bytes(self.e))

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a signature produced by :meth:`RsaPrivateKey.sign`."""
        try:
            sig_int = bytes_to_int(signature)
        except (TypeError, ValueError):
            return False
        if not 0 <= sig_int < self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        expected = bytes_to_int(_fdh_pad(message, self.n))
        return recovered == expected

    def encrypt(self, plaintext: bytes, rng: random.Random) -> bytes:
        """Encrypt a short plaintext (must fit in the modulus).

        A random mask is prepended and the payload is whitened with a
        hash of the mask so that equal plaintexts encrypt differently.
        Use :class:`repro.crypto.provider.RealCryptoProvider` for
        arbitrary-length hybrid encryption.
        """
        padded = _mask_pad(plaintext, self.n, rng)
        c = pow(bytes_to_int(padded), self.e, self.n)
        return int_to_bytes(c).rjust(self.modulus_bytes, b"\x00")


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key; carries its public half for convenience."""

    n: int
    e: int
    d: int

    @property
    def public_key(self) -> RsaPublicKey:
        """The corresponding public key."""
        return RsaPublicKey(n=self.n, e=self.e)

    def sign(self, message: bytes) -> bytes:
        """Sign ``message`` with full-domain-hash RSA.

        The signature is the RSA inverse of a hash expanded to the full
        modulus width, making forgery require inverting RSA on a random
        target.
        """
        m = bytes_to_int(_fdh_pad(message, self.n))
        s = pow(m, self.d, self.n)
        return int_to_bytes(s).rjust((self.n.bit_length() + 7) // 8, b"\x00")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`RsaPublicKey.encrypt`.

        Raises:
            RsaError: if the ciphertext is out of range or the padding
                does not check out.
        """
        c = bytes_to_int(ciphertext)
        if not 0 <= c < self.n:
            raise RsaError("ciphertext out of range")
        padded = int_to_bytes(pow(c, self.d, self.n))
        width = (self.n.bit_length() + 7) // 8
        return _mask_unpad(padded.rjust(width, b"\x00"))


def generate_keypair(
    bits: int = DEFAULT_KEY_BITS, rng: random.Random | None = None
) -> RsaPrivateKey:
    """Generate a fresh RSA keypair.

    Args:
        bits: modulus size in bits (>= 64; production-grade use would
            pick >= 2048, simulations default to 512 for speed).
        rng: deterministic randomness source; a fixed-seed
            ``random.Random(0)`` is used when omitted.

    Returns:
        The private key (which exposes ``.public_key``).
    """
    if bits < 64:
        raise ValueError(f"modulus must be >= 64 bits, got {bits}")
    if rng is None:
        # Deterministic default so an omitted rng can never make two
        # "identical" simulation runs generate different keys.
        rng = random.Random(0)
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        d = modinv(PUBLIC_EXPONENT, phi)
        return RsaPrivateKey(n=n, e=PUBLIC_EXPONENT, d=d)


def _expand(seed: bytes, length: int) -> bytes:
    """MGF1-style mask generation: expand ``seed`` to ``length`` bytes."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += digest(seed + counter.to_bytes(4, "big"))
        counter += 1
    return bytes(out[:length])


def _fdh_pad(message: bytes, n: int) -> bytes:
    """Full-domain hash: expand H(message) to just under the modulus.

    The top byte is zeroed so the padded integer is always < n.
    """
    width = (n.bit_length() + 7) // 8
    expanded = _expand(digest(message), width)
    return b"\x00" + expanded[1:]


def _mask_pad(plaintext: bytes, n: int, rng: random.Random) -> bytes:
    """Randomized padding for encryption.

    Layout: ``0x00 || seed(SEED_SIZE) || masked-plaintext`` where the
    mask is derived from the seed.  The plaintext must leave room for
    the seed, the leading zero byte, and a 2-byte length prefix.
    """
    width = (n.bit_length() + 7) // 8
    capacity = width - 1 - SEED_SIZE - 2
    if capacity < 1:
        raise RsaError("modulus too small for masked encryption")
    if len(plaintext) > capacity:
        raise RsaError(
            f"plaintext too long: {len(plaintext)} > capacity {capacity}"
        )
    seed = bytes(rng.getrandbits(8) for _ in range(SEED_SIZE))
    body = len(plaintext).to_bytes(2, "big") + plaintext
    body = body.ljust(capacity + 2, b"\x00")
    mask = _expand(seed, len(body))
    masked = bytes(a ^ b for a, b in zip(body, mask))
    return b"\x00" + seed + masked


def _mask_unpad(padded: bytes) -> bytes:
    """Invert :func:`_mask_pad`.

    Raises:
        RsaError: on any structural violation.
    """
    if len(padded) < 1 + SEED_SIZE + 2 or padded[0] != 0:
        raise RsaError("malformed padding")
    seed = padded[1 : 1 + SEED_SIZE]
    masked = padded[1 + SEED_SIZE :]
    mask = _expand(seed, len(masked))
    body = bytes(a ^ b for a, b in zip(masked, mask))
    length = int.from_bytes(body[:2], "big")
    if length > len(body) - 2:
        raise RsaError("corrupt length prefix")
    return body[2 : 2 + length]
