"""Distributional analysis of contact traces.

The PSN measurement literature (the paper's references [1], [2], [25])
characterizes traces by their inter-contact time and contact duration
distributions — famously debating power-law vs exponential tails.
This module provides the analysis used to sanity-check the synthetic
stand-ins against those stylized facts:

* empirical CCDFs;
* maximum-likelihood exponential fits;
* Pareto (power-law) tail fits above a cut-off (Hill-style MLE);
* a Kolmogorov-Smirnov distance to compare a sample against a fitted
  model, so tests can assert which family describes a trace better.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .stats import contact_durations, inter_contact_times
from .trace import ContactTrace


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit: rate = 1 / mean."""

    rate: float
    n: int

    def ccdf(self, x: float) -> float:
        """P(X > x) under the fitted model."""
        return math.exp(-self.rate * max(0.0, x))

    @property
    def mean(self) -> float:
        """Fitted mean."""
        return 1.0 / self.rate


@dataclass(frozen=True)
class ParetoTailFit:
    """Pareto tail above ``xmin``: P(X > x) = (x / xmin) ^ -alpha."""

    alpha: float
    xmin: float
    n_tail: int

    def ccdf(self, x: float) -> float:
        """Tail CCDF (1.0 below the cut-off)."""
        if x <= self.xmin:
            return 1.0
        return (x / self.xmin) ** (-self.alpha)


def fit_exponential(sample: Sequence[float]) -> ExponentialFit:
    """MLE exponential fit of a positive sample.

    Raises:
        ValueError: on empty or non-positive-mean samples.
    """
    arr = np.asarray([x for x in sample if x > 0], dtype=float)
    if arr.size == 0:
        raise ValueError("cannot fit an empty/non-positive sample")
    return ExponentialFit(rate=1.0 / float(arr.mean()), n=int(arr.size))


def fit_pareto_tail(
    sample: Sequence[float], xmin: float
) -> ParetoTailFit:
    """Hill MLE for the Pareto tail exponent above ``xmin``.

    Raises:
        ValueError: when fewer than 5 observations exceed ``xmin``.
    """
    tail = np.asarray([x for x in sample if x > xmin], dtype=float)
    if tail.size < 5:
        raise ValueError(
            f"only {tail.size} observations above xmin={xmin}; need >= 5"
        )
    alpha = tail.size / float(np.sum(np.log(tail / xmin)))
    return ParetoTailFit(alpha=alpha, xmin=xmin, n_tail=int(tail.size))


def empirical_ccdf(sample: Sequence[float]) -> List[Tuple[float, float]]:
    """Sorted ``(x, P(X > x))`` pairs of the empirical distribution."""
    arr = np.sort(np.asarray(sample, dtype=float))
    n = arr.size
    return [
        (float(x), float(1.0 - (i + 1) / n)) for i, x in enumerate(arr)
    ]


def ks_distance(sample: Sequence[float], model_ccdf) -> float:
    """Kolmogorov-Smirnov distance between a sample and a model.

    Args:
        sample: observations.
        model_ccdf: callable ``x -> P(X > x)`` of the candidate model.

    Returns:
        ``sup_x |F_emp(x) - F_model(x)|`` evaluated at the sample
        points (both one-sided steps checked).
    """
    arr = np.sort(np.asarray(sample, dtype=float))
    n = arr.size
    if n == 0:
        raise ValueError("empty sample")
    worst = 0.0
    for i, x in enumerate(arr):
        model_cdf = 1.0 - model_ccdf(float(x))
        lo = i / n
        hi = (i + 1) / n
        worst = max(worst, abs(model_cdf - lo), abs(model_cdf - hi))
    return worst


@dataclass(frozen=True)
class TraceDistributionReport:
    """Fit summary of one trace's characteristic distributions."""

    trace: str
    inter_contact_exp: ExponentialFit
    inter_contact_ks_exp: float
    duration_exp: ExponentialFit
    duration_ks_exp: float

    def describe(self) -> str:
        """Human-readable summary."""
        return "\n".join(
            [
                f"distribution fits for {self.trace}:",
                f"  inter-contact: exp(mean {self.inter_contact_exp.mean / 60:.1f} min), "
                f"KS {self.inter_contact_ks_exp:.3f} (n={self.inter_contact_exp.n})",
                f"  contact duration: exp(mean {self.duration_exp.mean:.0f} s), "
                f"KS {self.duration_ks_exp:.3f} (n={self.duration_exp.n})",
            ]
        )


def analyze_trace(trace: ContactTrace) -> TraceDistributionReport:
    """Fit the characteristic distributions of ``trace``."""
    gaps = [g for g in inter_contact_times(trace) if g > 0]
    durations = contact_durations(trace)
    gap_fit = fit_exponential(gaps)
    duration_fit = fit_exponential(durations)
    return TraceDistributionReport(
        trace=trace.name,
        inter_contact_exp=gap_fit,
        inter_contact_ks_exp=ks_distance(gaps, gap_fit.ccdf),
        duration_exp=duration_fit,
        duration_ks_exp=ks_distance(durations, duration_fit.ccdf),
    )
