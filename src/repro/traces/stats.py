"""Descriptive statistics of contact traces.

The literature characterizes PSN traces by their *contact duration*
and *inter-contact time* distributions and by how strongly contacts
cluster into communities (the paper cites [1], [2], [25] for these
properties).  These statistics serve two purposes here:

1. validating that the synthetic Infocom 05 / Cambridge 06 stand-ins
   exhibit the qualitative properties the protocols rely on
   (heterogeneous rates, frequent re-encounters within clusters);
2. informing timeout choices (Δ2 must leave a non-negligible chance of
   re-meeting, Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from .trace import Contact, ContactTrace, NodeId


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "SummaryStats":
        """Summarize ``values`` (empty samples give all-zero stats)."""
        if not values:
            return cls(count=0, mean=0.0, median=0.0, p90=0.0, maximum=0.0)
        arr = np.asarray(values, dtype=float)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            p90=float(np.percentile(arr, 90)),
            maximum=float(arr.max()),
        )


def contact_durations(trace: ContactTrace) -> List[float]:
    """Durations of every contact, in seconds."""
    return [c.duration for c in trace.contacts]


def pairwise_contacts(trace: ContactTrace) -> Dict[FrozenSet[NodeId], List[Contact]]:
    """Group contacts by unordered node pair, each list start-sorted."""
    pairs: Dict[FrozenSet[NodeId], List[Contact]] = {}
    for contact in trace.contacts:
        pairs.setdefault(contact.pair, []).append(contact)
    return pairs


def inter_contact_times(trace: ContactTrace) -> List[float]:
    """Gaps between consecutive contacts of each pair that met >= twice.

    The inter-contact time of a pair is measured from the end of one
    contact to the start of the next, per the standard definition.
    """
    gaps: List[float] = []
    for contacts in pairwise_contacts(trace).values():
        for prev, nxt in zip(contacts, contacts[1:]):
            gaps.append(max(0.0, nxt.start - prev.end))
    return gaps


def contacts_per_pair(trace: ContactTrace) -> Dict[FrozenSet[NodeId], int]:
    """Number of contacts for each pair that met at least once."""
    return {pair: len(cs) for pair, cs in pairwise_contacts(trace).items()}


def reencounter_probability(
    trace: ContactTrace, within: float
) -> float:
    """Fraction of contacts followed by another contact of the same pair
    within ``within`` seconds.

    This is the empirical counterpart of the paper's claim that "if S
    and B meet, then it is likely that they will meet again in the near
    future (within Δ2 in our case)"; the Δ2 = 2Δ1 choice is justified
    exactly by this probability being high.

    Returns 0.0 for traces with no contacts.
    """
    total = 0
    reencountered = 0
    for contacts in pairwise_contacts(trace).values():
        for i, contact in enumerate(contacts):
            # Only count contacts that leave room for a re-encounter
            # inside the trace; otherwise the tail biases the estimate.
            if contact.end + within > trace.end_time:
                continue
            total += 1
            for nxt in contacts[i + 1 :]:
                if nxt.start - contact.end <= within:
                    reencountered += 1
                    break
                if nxt.start - contact.end > within:
                    break
    return reencountered / total if total else 0.0


@dataclass(frozen=True)
class TraceProfile:
    """Compact qualitative profile of a trace."""

    name: str
    num_nodes: int
    num_contacts: int
    duration: float
    contact_duration: SummaryStats
    inter_contact: SummaryStats
    distinct_pairs: int
    pair_coverage: float  # distinct meeting pairs / all possible pairs
    mean_contacts_per_hour_per_node: float

    @classmethod
    def of(cls, trace: ContactTrace) -> "TraceProfile":
        """Profile ``trace``."""
        per_pair = contacts_per_pair(trace)
        n = trace.num_nodes
        possible = n * (n - 1) / 2 if n > 1 else 1
        hours = trace.duration / 3600.0 if trace.duration else 1.0
        return cls(
            name=trace.name,
            num_nodes=n,
            num_contacts=len(trace),
            duration=trace.duration,
            contact_duration=SummaryStats.of(contact_durations(trace)),
            inter_contact=SummaryStats.of(inter_contact_times(trace)),
            distinct_pairs=len(per_pair),
            pair_coverage=len(per_pair) / possible,
            mean_contacts_per_hour_per_node=(
                2 * len(trace) / (n * hours) if n else 0.0
            ),
        )

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [
            f"trace {self.name}: {self.num_nodes} nodes, "
            f"{self.num_contacts} contacts over {self.duration / 3600:.1f} h",
            f"  contact duration: mean {self.contact_duration.mean:.0f} s, "
            f"median {self.contact_duration.median:.0f} s",
            f"  inter-contact:    mean {self.inter_contact.mean / 60:.1f} min, "
            f"median {self.inter_contact.median / 60:.1f} min",
            f"  pair coverage:    {self.pair_coverage:.0%} "
            f"({self.distinct_pairs} distinct pairs)",
            f"  contact rate:     "
            f"{self.mean_contacts_per_hour_per_node:.1f} contacts/node/hour",
        ]
        return "\n".join(lines)


def contact_rate_matrix(trace: ContactTrace) -> Tuple[np.ndarray, Dict[NodeId, int]]:
    """Per-pair contact counts as a dense symmetric matrix.

    Returns:
        ``(matrix, index)`` where ``index`` maps node id to row/column.
    """
    index = {node: i for i, node in enumerate(trace.nodes)}
    matrix = np.zeros((len(index), len(index)), dtype=float)
    for contact in trace.contacts:
        i, j = index[contact.a], index[contact.b]
        matrix[i, j] += 1
        matrix[j, i] += 1
    return matrix, index
