"""Synthetic community-structured contact traces.

The paper evaluates on two CRAWDAD iMote deployments that are not
redistributable here, so we generate synthetic stand-ins that preserve
the properties the Give2Get mechanisms depend on (DESIGN.md §3):

* **community structure** — nodes cluster into groups whose members
  meet each other far more often than outsiders; needed both for the
  "selfish with outsiders" notion and for the paper's Δ2 argument
  ("if S and B meet, they will likely meet again within Δ2");
* **heterogeneous contact rates** — per-node sociability varies, so
  some pairs meet constantly and many pairs rarely or never;
* **re-encounter clustering in time** — realized through daily
  activity periods plus bursty pairwise renewal processes.

The generative model: each node gets a community and a lognormal
sociability factor.  Every unordered pair has a Poisson-like renewal
contact process whose rate is ``base * soc_i * soc_j`` multiplied by an
intra- or inter-community factor; "traveler" nodes additionally boost
their inter-community rates, acting as social bridges.  Contact starts
are confined to daily activity windows; durations are exponential with
a floor.  Everything is driven by one seeded ``random.Random``, so
traces are fully reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .trace import Contact, ContactTrace, NodeId, make_contact

#: Seconds per day, used by the activity schedule.
DAY = 86_400.0


@dataclass(frozen=True)
class ActivityWindow:
    """A daily window (in hours) during which contacts may start."""

    start_hour: float
    end_hour: float

    def __post_init__(self) -> None:
        if not 0 <= self.start_hour < self.end_hour <= 24:
            raise ValueError(
                f"invalid window [{self.start_hour}, {self.end_hour}]"
            )

    @property
    def start_s(self) -> float:
        """Window start as seconds-of-day."""
        return self.start_hour * 3600.0

    @property
    def end_s(self) -> float:
        """Window end as seconds-of-day."""
        return self.end_hour * 3600.0


@dataclass(frozen=True)
class CommunityModelConfig:
    """Parameters of the synthetic trace generator.

    Attributes:
        name: label of the generated trace.
        community_sizes: one entry per community; their sum is the
            number of nodes.
        duration: total trace length in seconds.
        base_rate: baseline pairwise contact rate (contacts/second)
            before sociability and community scaling.
        intra_factor: multiplier for same-community pairs.
        inter_factor: multiplier for cross-community pairs.
        traveler_fraction: fraction of nodes whose *inter*-community
            rates are boosted by ``traveler_boost`` — the social
            bridges that let messages escape their home community.
        traveler_boost: rate multiplier for traveler inter pairs.
        sociability_sigma: sigma of the lognormal per-node sociability
            (0 disables heterogeneity).
        mean_contact_duration: mean of the exponential contact length.
        min_contact_duration: hard floor on contact length (seconds).
        activity_windows: daily windows when contacts can start; an
            empty sequence means always-on.
        burstiness: probability that a contact is followed by a quick
            follow-up contact of the same pair (models the observed
            clustering of re-encounters).
        burst_gap_mean: mean gap of those follow-up contacts.
    """

    name: str
    community_sizes: Tuple[int, ...]
    duration: float
    base_rate: float
    intra_factor: float = 1.0
    inter_factor: float = 0.05
    traveler_fraction: float = 0.15
    traveler_boost: float = 6.0
    sociability_sigma: float = 0.45
    mean_contact_duration: float = 150.0
    min_contact_duration: float = 20.0
    activity_windows: Tuple[ActivityWindow, ...] = ()
    burstiness: float = 0.35
    burst_gap_mean: float = 900.0

    def __post_init__(self) -> None:
        if not self.community_sizes or any(
            s <= 0 for s in self.community_sizes
        ):
            raise ValueError("community sizes must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0 <= self.traveler_fraction <= 1:
            raise ValueError("traveler_fraction must be in [0, 1]")

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return sum(self.community_sizes)


@dataclass
class CommunityAssignment:
    """Ground-truth social structure of a generated trace.

    Kept alongside the trace so experiments can compare detected
    communities against the generative truth and implement the
    *selfish with outsiders* adversaries against either.
    """

    community_of: Dict[NodeId, int]
    travelers: Tuple[NodeId, ...]
    sociability: Dict[NodeId, float]

    def members(self, community: int) -> Tuple[NodeId, ...]:
        """Node ids belonging to ``community``."""
        return tuple(
            sorted(n for n, c in self.community_of.items() if c == community)
        )

    @property
    def num_communities(self) -> int:
        """Number of distinct communities."""
        return len(set(self.community_of.values()))

    def same_community(self, a: NodeId, b: NodeId) -> bool:
        """True if both nodes share a community."""
        return self.community_of[a] == self.community_of[b]


@dataclass
class SyntheticTrace:
    """A generated trace bundled with its ground-truth social structure."""

    trace: ContactTrace
    assignment: CommunityAssignment
    config: CommunityModelConfig


def generate(config: CommunityModelConfig, seed: int) -> SyntheticTrace:
    """Generate a synthetic trace from ``config``.

    Deterministic in ``(config, seed)``.
    """
    rng = random.Random(seed)
    community_of: Dict[NodeId, int] = {}
    node = 0
    for community, size in enumerate(config.community_sizes):
        for _ in range(size):
            community_of[node] = community
            node += 1
    nodes = tuple(range(config.num_nodes))

    sociability = {
        n: (
            math.exp(rng.gauss(0.0, config.sociability_sigma))
            if config.sociability_sigma > 0
            else 1.0
        )
        for n in nodes
    }

    num_travelers = round(config.traveler_fraction * config.num_nodes)
    travelers = tuple(sorted(rng.sample(list(nodes), num_travelers)))
    traveler_set = set(travelers)

    contacts: List[Contact] = []
    for i in nodes:
        for j in nodes:
            if j <= i:
                continue
            rate = _pair_rate(
                i, j, config, community_of, sociability, traveler_set
            )
            if rate <= 0:
                continue
            contacts.extend(_pair_process(i, j, rate, config, rng))

    trace = ContactTrace(name=config.name, nodes=nodes, contacts=tuple(contacts))
    assignment = CommunityAssignment(
        community_of=community_of,
        travelers=travelers,
        sociability=sociability,
    )
    return SyntheticTrace(trace=trace, assignment=assignment, config=config)


def _pair_rate(
    i: NodeId,
    j: NodeId,
    config: CommunityModelConfig,
    community_of: Dict[NodeId, int],
    sociability: Dict[NodeId, float],
    travelers: set,
) -> float:
    """Contact rate of the unordered pair ``(i, j)``."""
    rate = config.base_rate * sociability[i] * sociability[j]
    if community_of[i] == community_of[j]:
        rate *= config.intra_factor
    else:
        rate *= config.inter_factor
        if i in travelers or j in travelers:
            rate *= config.traveler_boost
    return rate


def _pair_process(
    i: NodeId,
    j: NodeId,
    rate: float,
    config: CommunityModelConfig,
    rng: random.Random,
) -> List[Contact]:
    """Sample the renewal contact process of one pair."""
    contacts: List[Contact] = []
    t = rng.expovariate(rate)
    while True:
        t = _align_to_activity(t, config, rng)
        if t >= config.duration:
            break
        duration = max(
            config.min_contact_duration,
            rng.expovariate(1.0 / config.mean_contact_duration),
        )
        end = min(t + duration, config.duration)
        if end > t:
            contacts.append(make_contact(i, j, t, end))
        # Bursty re-encounter or a fresh exponential gap.
        if rng.random() < config.burstiness:
            gap = rng.expovariate(1.0 / config.burst_gap_mean)
        else:
            gap = rng.expovariate(rate)
        t = end + gap
    return contacts


def _align_to_activity(
    t: float, config: CommunityModelConfig, rng: random.Random
) -> float:
    """Push a tentative contact start into the next activity window.

    With no configured windows, times pass through unchanged.  A small
    jitter spreads the contacts that pile up at a window's opening.
    """
    if not config.activity_windows:
        return t
    windows = sorted(config.activity_windows, key=lambda w: w.start_s)
    while t < config.duration:
        seconds_of_day = t % DAY
        for window in windows:
            if window.start_s <= seconds_of_day < window.end_s:
                return t
        # Find the next window opening at or after this time of day.
        day_start = t - seconds_of_day
        upcoming = [w.start_s for w in windows if w.start_s > seconds_of_day]
        if upcoming:
            t = day_start + min(upcoming) + rng.uniform(0, 600)
        else:
            t = day_start + DAY + windows[0].start_s + rng.uniform(0, 600)
    return t


def expected_pair_rates(
    config: CommunityModelConfig, assignment: CommunityAssignment
) -> Dict[Tuple[NodeId, NodeId], float]:
    """Analytic pair rates for a generated assignment (for tests)."""
    travelers = set(assignment.travelers)
    rates: Dict[Tuple[NodeId, NodeId], float] = {}
    nodes = sorted(assignment.community_of)
    for i in nodes:
        for j in nodes:
            if j <= i:
                continue
            rates[(i, j)] = _pair_rate(
                i,
                j,
                config,
                assignment.community_of,
                assignment.sociability,
                travelers,
            )
    return rates
