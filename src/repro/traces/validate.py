"""Trace sanity validation.

Raw contact logs — real CRAWDAD exports in particular — contain
artifacts: duplicated sightings, overlapping intervals for one pair,
zero-length blips, wild clock jumps.  :func:`validate_trace` audits a
trace and returns a structured issue list so loaders can warn or
repair before simulation; :func:`repair_trace` applies the standard
fixes (merge overlaps, drop blips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from .stats import pairwise_contacts
from .trace import Contact, ContactTrace, ensure_contact_trace, make_contact


@dataclass(frozen=True)
class TraceIssue:
    """One detected anomaly.

    Attributes:
        kind: "overlap" / "blip" / "gap_outlier".
        pair: the node pair involved.
        detail: human-readable description.
    """

    kind: str
    pair: FrozenSet[int]
    detail: str


def validate_trace(
    trace: ContactTrace,
    min_duration: float = 1.0,
    gap_outlier_factor: float = 1000.0,
) -> List[TraceIssue]:
    """Audit a trace for common artifacts.

    Args:
        trace: the trace to audit.
        min_duration: contacts shorter than this are flagged as blips.
        gap_outlier_factor: a pair's inter-contact gap exceeding this
            multiple of the pair's median gap is flagged (clock jumps,
            deployment restarts).

    Returns:
        Issues in detection order (empty = clean).

    Raises:
        TypeError: if handed something other than a
            :class:`ContactTrace` (e.g. a SyntheticTrace bundle).
    """
    trace = ensure_contact_trace(trace, "validate_trace")
    issues: List[TraceIssue] = []
    for pair, contacts in pairwise_contacts(trace).items():
        previous = None
        gaps: List[float] = []
        for contact in contacts:
            if contact.duration < min_duration:
                issues.append(
                    TraceIssue(
                        kind="blip",
                        pair=pair,
                        detail=(
                            f"{contact.duration:.3f}s contact at "
                            f"t={contact.start:.1f}"
                        ),
                    )
                )
            if previous is not None:
                if contact.start < previous.end:
                    issues.append(
                        TraceIssue(
                            kind="overlap",
                            pair=pair,
                            detail=(
                                f"contact at t={contact.start:.1f} starts "
                                f"before previous ends at "
                                f"t={previous.end:.1f}"
                            ),
                        )
                    )
                else:
                    gaps.append(contact.start - previous.end)
            previous = contact
        if len(gaps) >= 4:
            ordered = sorted(gaps)
            median = ordered[len(ordered) // 2]
            if median > 0:
                for gap in gaps:
                    if gap > gap_outlier_factor * median:
                        issues.append(
                            TraceIssue(
                                kind="gap_outlier",
                                pair=pair,
                                detail=(
                                    f"gap {gap:.0f}s vs median "
                                    f"{median:.0f}s"
                                ),
                            )
                        )
    return issues


def repair_trace(
    trace: ContactTrace, min_duration: float = 1.0
) -> ContactTrace:
    """Apply the standard repairs: merge overlaps, drop blips.

    Overlapping or touching contacts of the same pair are merged into
    one interval; contacts still shorter than ``min_duration`` after
    merging are dropped.  The node universe is preserved.

    Raises:
        TypeError: if handed something other than a
            :class:`ContactTrace` (e.g. a SyntheticTrace bundle).
    """
    trace = ensure_contact_trace(trace, "repair_trace")
    repaired: List[Contact] = []
    for pair, contacts in pairwise_contacts(trace).items():
        a, b = tuple(sorted(pair))
        merged: List[List[float]] = []
        for contact in contacts:
            if merged and contact.start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], contact.end)
            else:
                merged.append([contact.start, contact.end])
        for start, end in merged:
            if end - start >= min_duration:
                repaired.append(make_contact(a, b, start, end))
    return ContactTrace(
        name=trace.name, nodes=trace.nodes, contacts=tuple(repaired)
    )
