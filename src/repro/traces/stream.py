"""Streaming contact sources: the engine's single ingestion choke point.

The paper's traces (36–41 nodes) fit comfortably in memory as a
:class:`~repro.traces.trace.ContactTrace`, but the ROADMAP's scale axis
— 10k to 1M nodes — does not: a million-node day of contacts is tens of
gigabytes of `Contact` objects.  This module abstracts *where contacts
come from* behind :class:`ContactSource`, a time-ordered chunked
iterator with a declared node universe:

* :class:`InMemorySource` wraps an existing ``ContactTrace`` — the
  bit-identical compatibility path every golden and determinism digest
  runs through.
* :class:`SyntheticStreamSource` extends the community-structured
  generator to mega-scale: hierarchical communities (leaf groups nested
  in parent districts by plain id arithmetic) and power-law per-node
  contact rates, generated lazily chunk by chunk from per-chunk seeded
  RNG streams.  Memory is O(chunk), never O(trace).
* :class:`ChunkedFileSource` replays the packed binary spill format
  written by :func:`repro.traces.io.write_chunked_contacts`.

The engine (``sim.engine``) pulls contacts through
:meth:`ContactSource.iter_contacts` into the event heap via the
feeder attached with ``EventQueue.attach_contacts`` — no caller
outside ``repro.traces`` materializes ``.contacts`` anymore (lint
rule G2G013 fences this).
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..perf.counters import COUNTERS
from .trace import Contact, ContactTrace, NodeId

#: A cache-key-friendly description of a source: sorted (field, value)
#: pairs, hashable and JSON-serializable.  ``None`` marks a source that
#: cannot be reconstructed from a spec (ad-hoc traces, open files).
SourceSpec = Tuple[Tuple[str, Union[int, float, str]], ...]


class ContactSource:
    """Abstract time-ordered contact stream with a declared universe.

    Contract:

    * :attr:`universe` enumerates every node id that may appear, as a
      cheap sequence (``range`` for synthetic universes — membership
      and ``len`` are O(1) without materializing a million-entry set).
    * :meth:`iter_chunks` yields lists of contacts; concatenated they
      are non-decreasing in ``start`` time.
    * :attr:`trace` is the backing :class:`ContactTrace` when the
      source is materialized (``materialized`` True), else ``None`` —
      the engine uses this to keep the eager, bit-identical node-table
      path for paper-scale runs.
    """

    name: str = "source"
    materialized: bool = False

    @property
    def trace(self) -> Optional[ContactTrace]:
        """Backing in-memory trace, when one exists."""
        return None

    @property
    def universe(self) -> Sequence[NodeId]:
        """Every node id that may appear in the stream."""
        raise NotImplementedError

    @property
    def num_nodes(self) -> int:
        """Size of the node universe."""
        return len(self.universe)

    def iter_chunks(self) -> Iterator[List[Contact]]:
        """Yield chunks of contacts, time-ordered across chunks."""
        raise NotImplementedError

    def iter_contacts(self) -> Iterator[Contact]:
        """Flatten :meth:`iter_chunks` into one contact stream."""
        for chunk in self.iter_chunks():
            COUNTERS.stream_chunks += 1
            COUNTERS.stream_contacts += len(chunk)
            yield from chunk

    def spec(self) -> Optional[SourceSpec]:
        """Cache-key spec reconstructing this source, or ``None``."""
        return None


class InMemorySource(ContactSource):
    """A :class:`ContactTrace` exposed through the source interface.

    The compatibility path: the engine consumes the same sorted
    contact tuple in the same order as the old bulk load, so every
    golden, digest, and perf budget is bit-identical.
    """

    materialized = True

    def __init__(self, trace: ContactTrace) -> None:
        self._trace = trace
        self.name = trace.name

    @property
    def trace(self) -> ContactTrace:
        return self._trace

    @property
    def universe(self) -> Sequence[NodeId]:
        return self._trace.nodes

    @property
    def num_nodes(self) -> int:
        return self._trace.num_nodes

    def iter_chunks(self) -> Iterator[List[Contact]]:
        yield list(self._trace.contacts)


@dataclass(frozen=True)
class StreamModelConfig:
    """Parameters of the mega-scale synthetic contact stream.

    The model scales the community-structured generator
    (:mod:`repro.traces.synthetic`) along the node axis:

    * **Hierarchical communities** by id arithmetic: node ``i`` belongs
      to leaf community ``i // leaf_size``; ``branching`` leaves form a
      parent district.  A contact initiator picks its partner from its
      leaf with probability ``p_leaf``, from its district with
      ``p_parent``, else uniformly from the whole universe.
    * **Power-law contact rates**: initiators are drawn with density
      ∝ 1/(rank+1) (Zipf-like), so a small core of hubs originates a
      disproportionate share of contacts — matching the heavy-tailed
      degree distributions of the CRAWDAD traces (DESIGN.md §3).
    * **Lazy seeded chunks**: chunk *i* covering
      ``[i*chunk_seconds, (i+1)*chunk_seconds)`` is generated entirely
      from ``Random(f"{seed}|g2g-stream|{i}")`` — any chunk can be
      regenerated independently, and memory stays O(chunk).

    ``contacts_per_node`` is the expected number of contacts each node
    *participates in* over the full duration (each contact counts for
    both endpoints), so total contacts ≈ ``nodes*contacts_per_node/2``.
    """

    nodes: int = 10_000
    duration: float = 43_200.0  # half a day of trace time
    seed: int = 0
    contacts_per_node: float = 4.0
    mean_contact_duration: float = 120.0
    leaf_size: int = 50
    branching: int = 10
    p_leaf: float = 0.6
    p_parent: float = 0.25
    chunk_seconds: float = 3_600.0

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("stream model needs at least 2 nodes")
        if self.duration <= 0 or self.chunk_seconds <= 0:
            raise ValueError("duration and chunk_seconds must be positive")
        if self.leaf_size < 2 or self.branching < 1:
            raise ValueError("leaf_size must be >= 2 and branching >= 1")
        if not 0.0 <= self.p_leaf + self.p_parent <= 1.0:
            raise ValueError("p_leaf + p_parent must lie in [0, 1]")


def _poisson(rng: random.Random, lam: float) -> int:
    """Seeded Poisson draw: Knuth for small λ, normal approx above."""
    if lam <= 0.0:
        return 0
    if lam > 64.0:
        draw = rng.normalvariate(lam, math.sqrt(lam))
        return max(0, int(round(draw)))
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class SyntheticStreamSource(ContactSource):
    """Lazily generated mega-scale community contact stream."""

    def __init__(self, config: StreamModelConfig) -> None:
        self.config = config
        self.name = f"stream-{config.nodes}n-s{config.seed}"

    @property
    def universe(self) -> Sequence[NodeId]:
        return range(self.config.nodes)

    @property
    def num_nodes(self) -> int:
        return self.config.nodes

    def spec(self) -> SourceSpec:
        fields = asdict(self.config)
        return tuple(sorted(fields.items()))

    def _initiator(self, rng: random.Random) -> NodeId:
        # Inverse-CDF of density ∝ 1/(rank+1): rank = n**u - 1 for
        # uniform u, clipped into [0, n).  Node ids double as ranks, so
        # low ids are the hubs.
        n = self.config.nodes
        rank = int(n ** rng.random()) - 1
        if rank < 0:
            rank = 0
        elif rank >= n:
            rank = n - 1
        return rank

    def _partner(self, rng: random.Random, a: NodeId) -> NodeId:
        cfg = self.config
        n = cfg.nodes
        roll = rng.random()
        lo, hi = 0, n
        if roll < cfg.p_leaf:
            lo = (a // cfg.leaf_size) * cfg.leaf_size
            hi = min(n, lo + cfg.leaf_size)
        elif roll < cfg.p_leaf + cfg.p_parent:
            span = cfg.leaf_size * cfg.branching
            lo = (a // span) * span
            hi = min(n, lo + span)
        if hi - lo < 2:  # degenerate tail community: fall back to global
            lo, hi = 0, n
        partner = rng.randrange(lo, hi)
        while partner == a:
            partner = rng.randrange(lo, hi)
        return partner

    def _chunk(self, index: int) -> List[Contact]:
        cfg = self.config
        rng = random.Random(f"{cfg.seed}|g2g-stream|{index}")
        t0 = index * cfg.chunk_seconds
        t1 = min(cfg.duration, t0 + cfg.chunk_seconds)
        if t1 <= t0:
            return []
        total_contacts = cfg.nodes * cfg.contacts_per_node / 2.0
        lam = total_contacts * (t1 - t0) / cfg.duration
        count = _poisson(rng, lam)
        starts = sorted(rng.random() for _ in range(count))
        rate = 1.0 / cfg.mean_contact_duration
        contacts: List[Contact] = []
        span = t1 - t0
        for u in starts:
            start = t0 + u * span
            a = self._initiator(rng)
            b = self._partner(rng, a)
            duration = rng.expovariate(rate) + 1.0  # strictly positive
            if a > b:
                a, b = b, a
            contacts.append(Contact(start=start, end=start + duration, a=a, b=b))
        return contacts

    def iter_chunks(self) -> Iterator[List[Contact]]:
        cfg = self.config
        num_chunks = max(1, math.ceil(cfg.duration / cfg.chunk_seconds))
        for index in range(num_chunks):
            yield self._chunk(index)

    def materialize(self) -> ContactTrace:
        """Collect the full stream into a trace (small configs only)."""
        contacts: List[Contact] = []
        for chunk in self.iter_chunks():
            contacts.extend(chunk)
        return ContactTrace(
            name=self.name,
            nodes=tuple(range(self.config.nodes)),
            contacts=tuple(contacts),
        )


class ChunkedFileSource(ContactSource):
    """Replay of the packed chunked format under ``traces/io``."""

    def __init__(self, path: str, name: Optional[str] = None) -> None:
        from .io import read_chunked_universe

        self.path = path
        self.name = name if name is not None else _stem(path)
        self._universe = read_chunked_universe(path)

    @property
    def universe(self) -> Sequence[NodeId]:
        return self._universe

    def spec(self) -> None:
        # File contents are not captured by a (path, mtime) pair in any
        # way the run cache could trust, so file-backed runs are
        # uncached — same policy as ad-hoc in-memory traces.
        return None

    def iter_chunks(self) -> Iterator[List[Contact]]:
        from .io import iter_chunked_contacts

        return iter_chunked_contacts(self.path)


def _stem(path: str) -> str:
    base = path.replace("\\", "/").rsplit("/", 1)[-1]
    return base.rsplit(".", 1)[0] if "." in base else base


def source_from_spec(spec: SourceSpec) -> ContactSource:
    """Rebuild a source from its :meth:`ContactSource.spec` pairs."""
    fields = dict(spec)
    config = StreamModelConfig(**fields)  # type: ignore[arg-type]
    return SyntheticStreamSource(config)


def ensure_contact_source(source: object, caller: str) -> ContactSource:
    """Coerce ``source`` into a :class:`ContactSource`.

    Accepts a source, a :class:`ContactTrace` (wrapped in
    :class:`InMemorySource`), or a synthetic-trace bundle exposing
    ``.trace``.  Mirrors :func:`repro.traces.trace.ensure_contact_trace`
    so call sites fail with actionable messages instead of duck-typing
    surprises deep in the run loop.
    """
    if isinstance(source, ContactSource):
        return source
    if isinstance(source, ContactTrace):
        return InMemorySource(source)
    bundled = getattr(source, "trace", None)
    if isinstance(bundled, ContactTrace):
        return InMemorySource(bundled)
    raise TypeError(
        f"{caller} expected a ContactSource or ContactTrace, "
        f"got {type(source).__name__}"
    )
