"""Community-driven geometric mobility (HCMM-style) trace generation.

The synthetic generator in :mod:`repro.traces.synthetic` samples
contact *processes* directly.  This module generates contacts the way
the real iMote traces arose: devices moving through space, with a
contact whenever two devices come within radio range.  The movement
model follows the Home-cell Community Mobility family (community-based
variants of random waypoint, cf. the SUMO/RWP models referenced by the
paper's related work):

* the playground is a square split into a grid of cells;
* each community has a *home cell*; each node picks its next waypoint
  inside its home cell with probability ``home_bias`` and in a random
  other cell otherwise (travelers get a lower bias — they roam);
* nodes move to the waypoint at a uniform random speed, pause, repeat;
* positions are sampled every ``time_step`` seconds, and maximal
  intervals with pairwise distance <= ``radio_range`` become contacts.

The output bundles the trace with the ground-truth community
assignment, mirroring :class:`repro.traces.synthetic.SyntheticTrace`,
so the adversary and community machinery works on either generator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .synthetic import CommunityAssignment, SyntheticTrace
from .trace import Contact, ContactTrace, NodeId, make_contact


@dataclass(frozen=True)
class MobilityConfig:
    """Parameters of the geometric mobility model.

    Attributes:
        name: trace label.
        community_sizes: nodes per community (home cells are assigned
            round-robin over distinct grid cells).
        duration: simulated seconds.
        area_side: playground side length in meters.
        grid: cells per side (grid x grid cells total).
        radio_range: contact distance threshold in meters (Bluetooth
            class 2 is ~10 m).
        speed_min / speed_max: waypoint speeds in m/s (pedestrian).
        pause_min / pause_max: dwell time at each waypoint in seconds.
        home_bias: probability a regular node's next waypoint lies in
            its community's home cell.
        traveler_fraction: share of nodes with ``traveler_bias``.
        traveler_bias: home bias of travelers (lower = more roaming).
        time_step: position sampling period in seconds; contacts
            shorter than one step are not observable, matching the
            periodic Bluetooth scans of the real iMote deployments.
    """

    name: str
    community_sizes: Tuple[int, ...]
    duration: float
    area_side: float = 1000.0
    grid: int = 4
    radio_range: float = 30.0
    speed_min: float = 0.8
    speed_max: float = 1.8
    pause_min: float = 30.0
    pause_max: float = 300.0
    home_bias: float = 0.8
    traveler_fraction: float = 0.15
    traveler_bias: float = 0.4
    time_step: float = 10.0

    def __post_init__(self) -> None:
        if not self.community_sizes or any(
            s <= 0 for s in self.community_sizes
        ):
            raise ValueError("community sizes must be positive")
        if len(self.community_sizes) > self.grid * self.grid:
            raise ValueError(
                f"{len(self.community_sizes)} communities need more cells "
                f"than a {self.grid}x{self.grid} grid offers"
            )
        if self.duration <= 0 or self.time_step <= 0:
            raise ValueError("duration and time_step must be positive")
        if not 0 < self.radio_range < self.area_side:
            raise ValueError("radio_range must be in (0, area_side)")
        if not 0 < self.speed_min <= self.speed_max:
            raise ValueError("need 0 < speed_min <= speed_max")
        if not 0 <= self.home_bias <= 1 or not 0 <= self.traveler_bias <= 1:
            raise ValueError("biases must be probabilities")

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return sum(self.community_sizes)

    @property
    def cell_side(self) -> float:
        """Side length of one grid cell."""
        return self.area_side / self.grid


@dataclass
class _NodeMotion:
    """Waypoint state of one moving node."""

    x: float
    y: float
    goal_x: float = 0.0
    goal_y: float = 0.0
    speed: float = 1.0
    pause_until: float = 0.0
    moving: bool = False


class MobilitySimulator:
    """Simulates movement and extracts the contact trace."""

    def __init__(self, config: MobilityConfig, seed: int) -> None:
        self.config = config
        self.rng = random.Random(seed)
        self.community_of: Dict[NodeId, int] = {}
        node = 0
        for community, size in enumerate(config.community_sizes):
            for _ in range(size):
                self.community_of[node] = community
                node += 1
        nodes = list(range(config.num_nodes))
        num_travelers = round(config.traveler_fraction * config.num_nodes)
        self.travelers = tuple(sorted(self.rng.sample(nodes, num_travelers)))
        # Home cells: distinct cells, spread over the grid.
        cells = [
            (cx, cy)
            for cx in range(config.grid)
            for cy in range(config.grid)
        ]
        self.rng.shuffle(cells)
        self.home_cell = {
            community: cells[community]
            for community in range(len(config.community_sizes))
        }
        self._motions = {
            n: self._spawn(self.community_of[n]) for n in nodes
        }

    # -- movement -------------------------------------------------------

    def _cell_point(self, cell: Tuple[int, int]) -> Tuple[float, float]:
        side = self.config.cell_side
        cx, cy = cell
        return (
            cx * side + self.rng.uniform(0, side),
            cy * side + self.rng.uniform(0, side),
        )

    def _spawn(self, community: int) -> _NodeMotion:
        x, y = self._cell_point(self.home_cell[community])
        return _NodeMotion(x=x, y=y)

    def _bias_of(self, node: NodeId) -> float:
        if node in set(self.travelers):
            return self.config.traveler_bias
        return self.config.home_bias

    def _pick_goal(self, node: NodeId) -> Tuple[float, float]:
        config = self.config
        home = self.home_cell[self.community_of[node]]
        if self.rng.random() < self._bias_of(node):
            return self._cell_point(home)
        other_cells = [
            (cx, cy)
            for cx in range(config.grid)
            for cy in range(config.grid)
            if (cx, cy) != home
        ]
        return self._cell_point(self.rng.choice(other_cells))

    def _advance(self, node: NodeId, now: float, dt: float) -> None:
        motion = self._motions[node]
        config = self.config
        if not motion.moving:
            if now < motion.pause_until:
                return
            motion.goal_x, motion.goal_y = self._pick_goal(node)
            motion.speed = self.rng.uniform(
                config.speed_min, config.speed_max
            )
            motion.moving = True
        dx = motion.goal_x - motion.x
        dy = motion.goal_y - motion.y
        distance = math.hypot(dx, dy)
        step = motion.speed * dt
        if distance <= step:
            motion.x, motion.y = motion.goal_x, motion.goal_y
            motion.moving = False
            motion.pause_until = now + self.rng.uniform(
                config.pause_min, config.pause_max
            )
        else:
            motion.x += dx / distance * step
            motion.y += dy / distance * step

    # -- contact extraction ----------------------------------------------

    def run(self) -> SyntheticTrace:
        """Simulate the motion and return the contact trace bundle."""
        config = self.config
        nodes = list(range(config.num_nodes))
        open_since: Dict[frozenset, float] = {}
        contacts: List[Contact] = []
        range_sq = config.radio_range ** 2

        t = 0.0
        while t <= config.duration:
            for node in nodes:
                self._advance(node, t, config.time_step)
            positions = [
                (self._motions[n].x, self._motions[n].y) for n in nodes
            ]
            for i in nodes:
                xi, yi = positions[i]
                for j in nodes:
                    if j <= i:
                        continue
                    xj, yj = positions[j]
                    dx = xi - xj
                    dy = yi - yj
                    pair = frozenset((i, j))
                    in_range = dx * dx + dy * dy <= range_sq
                    if in_range and pair not in open_since:
                        open_since[pair] = t
                    elif not in_range and pair in open_since:
                        start = open_since.pop(pair)
                        if t > start:
                            contacts.append(make_contact(i, j, start, t))
            t += config.time_step
        # Close contacts still open at the end of the simulation.
        for pair, start in open_since.items():
            i, j = sorted(pair)
            end = min(config.duration, t)
            if end > start:
                contacts.append(make_contact(i, j, start, end))

        trace = ContactTrace(
            name=config.name, nodes=tuple(nodes), contacts=tuple(contacts)
        )
        assignment = CommunityAssignment(
            community_of=dict(self.community_of),
            travelers=self.travelers,
            sociability={n: 1.0 for n in nodes},
        )
        return SyntheticTrace(trace=trace, assignment=assignment,
                              config=config)  # type: ignore[arg-type]


def simulate_mobility(config: MobilityConfig, seed: int = 0) -> SyntheticTrace:
    """Generate a contact trace from geometric mobility.

    Deterministic in ``(config, seed)``.
    """
    return MobilitySimulator(config, seed).run()


def lab_config(
    name: str = "mobility-lab",
    num_communities: int = 3,
    nodes_per_community: int = 8,
    hours: float = 6.0,
) -> MobilityConfig:
    """A convenient mid-size configuration for examples and tests."""
    return MobilityConfig(
        name=name,
        community_sizes=tuple([nodes_per_community] * num_communities),
        duration=hours * 3600.0,
        area_side=800.0,
        grid=3,
        radio_range=40.0,
    )
