"""Contact traces: data model, I/O, statistics, and synthetic generators.

See DESIGN.md §3 for why the shipped experiments run on synthetic
community-structured stand-ins of the CRAWDAD Infocom 05 and
Cambridge 06 traces, and how the real traces drop in via
:func:`repro.traces.io.load_trace`.
"""

from .mobility import (
    MobilityConfig,
    MobilitySimulator,
    lab_config,
    simulate_mobility,
)
from .fitting import (
    ExponentialFit,
    ParetoTailFit,
    TraceDistributionReport,
    analyze_trace,
    empirical_ccdf,
    fit_exponential,
    fit_pareto_tail,
    ks_distance,
)
from .io import (
    TraceFormatError,
    dump_trace,
    iter_chunked_contacts,
    load_trace,
    load_trace_with_universe,
    parse_trace,
    read_chunked_universe,
    save_trace,
    write_chunked_contacts,
)
from .presets import (
    DELEGATION_TTL,
    EPIDEMIC_TTL,
    QUALITY_TIMEFRAME,
    cambridge06,
    infocom05,
    standard_window,
    trace_by_name,
)
from .stats import (
    SummaryStats,
    TraceProfile,
    contact_durations,
    contact_rate_matrix,
    contacts_per_pair,
    inter_contact_times,
    pairwise_contacts,
    reencounter_probability,
)
from .synthetic import (
    ActivityWindow,
    CommunityAssignment,
    CommunityModelConfig,
    SyntheticTrace,
    generate,
)
from .stream import (
    ChunkedFileSource,
    ContactSource,
    InMemorySource,
    StreamModelConfig,
    SyntheticStreamSource,
    ensure_contact_source,
    source_from_spec,
)
from .trace import (
    Contact,
    ContactTrace,
    NodeId,
    ensure_contact_trace,
    make_contact,
    merge_traces,
)
from .windows import (
    SILENT_TAIL,
    STANDARD_WINDOW,
    EvaluationWindow,
    active_windows,
    busiest_window,
)

__all__ = [
    "ActivityWindow",
    "ChunkedFileSource",
    "CommunityAssignment",
    "CommunityModelConfig",
    "Contact",
    "ContactSource",
    "ContactTrace",
    "DELEGATION_TTL",
    "EPIDEMIC_TTL",
    "EvaluationWindow",
    "InMemorySource",
    "NodeId",
    "QUALITY_TIMEFRAME",
    "SILENT_TAIL",
    "STANDARD_WINDOW",
    "StreamModelConfig",
    "SummaryStats",
    "SyntheticStreamSource",
    "SyntheticTrace",
    "TraceFormatError",
    "TraceProfile",
    "active_windows",
    "busiest_window",
    "analyze_trace",
    "cambridge06",
    "contact_durations",
    "contact_rate_matrix",
    "contacts_per_pair",
    "dump_trace",
    "empirical_ccdf",
    "ensure_contact_source",
    "ensure_contact_trace",
    "ExponentialFit",
    "fit_exponential",
    "fit_pareto_tail",
    "generate",
    "infocom05",
    "inter_contact_times",
    "iter_chunked_contacts",
    "ks_distance",
    "lab_config",
    "load_trace",
    "load_trace_with_universe",
    "make_contact",
    "merge_traces",
    "MobilityConfig",
    "MobilitySimulator",
    "pairwise_contacts",
    "ParetoTailFit",
    "parse_trace",
    "read_chunked_universe",
    "reencounter_probability",
    "save_trace",
    "simulate_mobility",
    "source_from_spec",
    "standard_window",
    "trace_by_name",
    "TraceDistributionReport",
    "write_chunked_contacts",
]
