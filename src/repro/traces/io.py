"""Reading and writing contact traces in a CRAWDAD-like text format.

The real evaluation traces (CRAWDAD ``cambridge/haggle/imote/infocom``
and ``upmc/content/imote/cambridge``) are distributed as whitespace-
separated contact tables.  We read the common layout::

    <node_a> <node_b> <start_seconds> <end_seconds> [ignored columns...]

Lines starting with ``#`` (or blank) are skipped.  Writing emits the
same four columns, so traces round-trip exactly.  When the genuine
CRAWDAD files are available they load through :func:`load_trace`
unchanged; the shipped experiments use the synthetic stand-ins from
:mod:`repro.traces.synthetic` (see DESIGN.md §3).
"""

from __future__ import annotations

import io as _io
import struct
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

from .trace import Contact, ContactTrace, make_contact

PathLike = Union[str, Path]


class TraceFormatError(Exception):
    """Raised when a trace file cannot be parsed."""


def parse_trace(
    text: str, name: str = "trace", min_duration: float = 0.0
) -> ContactTrace:
    """Parse a contact table from a string.

    Args:
        text: the file contents.
        name: label for the resulting trace.
        min_duration: drop contacts shorter than this many seconds
            (some raw traces contain zero-length artifacts).

    Raises:
        TraceFormatError: on malformed rows.
    """
    contacts: List[Contact] = []
    nodes: set = set()
    for lineno, raw in enumerate(_io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 4:
            raise TraceFormatError(
                f"line {lineno}: expected >= 4 columns, got {len(fields)}"
            )
        try:
            a, b = int(fields[0]), int(fields[1])
            start, end = float(fields[2]), float(fields[3])
        except ValueError as err:
            raise TraceFormatError(f"line {lineno}: {err}") from err
        nodes.add(a)
        nodes.add(b)
        if a == b:
            # Some raw logs contain self-sightings; skip but keep node.
            continue
        if end - start <= min_duration:
            continue
        contacts.append(make_contact(a, b, start, end))
    return ContactTrace(name=name, nodes=tuple(nodes), contacts=tuple(contacts))


def load_trace(
    path: PathLike, name: str | None = None, min_duration: float = 0.0
) -> ContactTrace:
    """Load a trace from a file; the name defaults to the file stem."""
    path = Path(path)
    label = name if name is not None else path.stem
    return parse_trace(
        path.read_text(), name=label, min_duration=min_duration
    )


def dump_trace(trace: ContactTrace) -> str:
    """Serialize a trace to the four-column text format.

    Nodes without contacts are recorded in a header comment so the node
    universe survives a round-trip.
    """
    lines = [
        f"# trace: {trace.name}",
        f"# nodes: {' '.join(str(n) for n in trace.nodes)}",
        "# a b start end",
    ]
    for contact in trace.contacts:
        # repr() round-trips floats exactly, so load(dump(trace))
        # reproduces the contacts bit-for-bit.
        lines.append(
            f"{contact.a} {contact.b} {contact.start!r} {contact.end!r}"
        )
    return "\n".join(lines) + "\n"


def save_trace(trace: ContactTrace, path: PathLike) -> None:
    """Write a trace to disk in the text format."""
    Path(path).write_text(dump_trace(trace))


def parse_node_header(text: str) -> Iterable[int]:
    """Extract the ``# nodes:`` header written by :func:`dump_trace`."""
    for raw in _io.StringIO(text):
        line = raw.strip()
        if line.startswith("# nodes:"):
            return [int(tok) for tok in line[len("# nodes:") :].split()]
    return []


def load_trace_with_universe(path: PathLike, name: str | None = None) -> ContactTrace:
    """Load a trace, restoring contact-less nodes from the header."""
    path = Path(path)
    text = path.read_text()
    trace = parse_trace(text, name=name if name is not None else path.stem)
    header_nodes = set(parse_node_header(text))
    if header_nodes:
        return ContactTrace(
            name=trace.name,
            nodes=tuple(header_nodes | set(trace.nodes)),
            contacts=trace.contacts,
        )
    return trace


# ---------------------------------------------------------------------------
# Chunked binary spill format (streaming sources)
# ---------------------------------------------------------------------------
#
# The text format above is fine for 41-node traces; a 100k-node stream
# needs something a file-backed source can replay chunk by chunk
# without parsing floats.  Layout (all little-endian):
#
#   header:  magic b"G2GC" | u16 version | u8 universe_kind
#            kind 0 (dense range):  i64 start | i64 stop
#            kind 1 (explicit ids): u32 count | count * i64
#   chunks:  u32 record_count | record_count * <ddqq>  (start, end, a, b)
#            ... repeated until EOF
#
# Chunks preserve the writer's chunking, so a replayed stream has the
# same chunk boundaries (and stream_chunks counter values) it was
# written with.

CHUNK_MAGIC = b"G2GC"
CHUNK_VERSION = 1
_RECORD = struct.Struct("<ddqq")
_HEADER = struct.Struct("<4sHB")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")


def _read_exact(handle: _io.BufferedReader, size: int, what: str) -> bytes:
    data = handle.read(size)
    if len(data) != size:
        raise TraceFormatError(f"truncated chunked trace: short {what}")
    return data


def _write_universe(handle: _io.BufferedWriter, universe: Sequence[int]) -> None:
    if isinstance(universe, range) and universe.step == 1:
        handle.write(_HEADER.pack(CHUNK_MAGIC, CHUNK_VERSION, 0))
        handle.write(_I64.pack(universe.start))
        handle.write(_I64.pack(universe.stop))
        return
    nodes = list(universe)
    handle.write(_HEADER.pack(CHUNK_MAGIC, CHUNK_VERSION, 1))
    handle.write(_U32.pack(len(nodes)))
    for node in nodes:
        handle.write(_I64.pack(node))


def _read_universe(handle: _io.BufferedReader) -> Sequence[int]:
    magic, version, kind = _HEADER.unpack(
        _read_exact(handle, _HEADER.size, "header")
    )
    if magic != CHUNK_MAGIC:
        raise TraceFormatError("not a chunked trace (bad magic)")
    if version != CHUNK_VERSION:
        raise TraceFormatError(f"unsupported chunked trace version {version}")
    if kind == 0:
        (start,) = _I64.unpack(_read_exact(handle, _I64.size, "universe"))
        (stop,) = _I64.unpack(_read_exact(handle, _I64.size, "universe"))
        return range(start, stop)
    if kind == 1:
        (count,) = _U32.unpack(_read_exact(handle, _U32.size, "universe"))
        return [
            _I64.unpack(_read_exact(handle, _I64.size, "universe"))[0]
            for _ in range(count)
        ]
    raise TraceFormatError(f"unknown universe kind {kind}")


def write_chunked_contacts(
    path: PathLike,
    universe: Sequence[int],
    chunks: Iterable[Sequence[Contact]],
) -> int:
    """Write a chunked stream to disk; returns total contacts written."""
    total = 0
    with open(Path(path), "wb") as handle:
        _write_universe(handle, universe)
        for chunk in chunks:
            if not chunk:
                continue
            handle.write(_U32.pack(len(chunk)))
            for contact in chunk:
                handle.write(
                    _RECORD.pack(contact.start, contact.end, contact.a, contact.b)
                )
            total += len(chunk)
    return total


def read_chunked_universe(path: PathLike) -> Sequence[int]:
    """Read only the node universe from a chunked trace file."""
    with open(Path(path), "rb") as handle:
        return _read_universe(handle)


def iter_chunked_contacts(path: PathLike) -> Iterator[List[Contact]]:
    """Replay the chunks of a chunked trace file, one list at a time."""
    with open(Path(path), "rb") as handle:
        _read_universe(handle)
        while True:
            header = handle.read(_U32.size)
            if not header:
                return
            if len(header) != _U32.size:
                raise TraceFormatError("truncated chunked trace: short count")
            (count,) = _U32.unpack(header)
            payload = _read_exact(
                handle, count * _RECORD.size, f"chunk of {count} records"
            )
            chunk: List[Contact] = []
            for offset in range(0, len(payload), _RECORD.size):
                start, end, a, b = _RECORD.unpack_from(payload, offset)
                chunk.append(Contact(start=start, end=end, a=a, b=b))
            yield chunk
