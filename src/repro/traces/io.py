"""Reading and writing contact traces in a CRAWDAD-like text format.

The real evaluation traces (CRAWDAD ``cambridge/haggle/imote/infocom``
and ``upmc/content/imote/cambridge``) are distributed as whitespace-
separated contact tables.  We read the common layout::

    <node_a> <node_b> <start_seconds> <end_seconds> [ignored columns...]

Lines starting with ``#`` (or blank) are skipped.  Writing emits the
same four columns, so traces round-trip exactly.  When the genuine
CRAWDAD files are available they load through :func:`load_trace`
unchanged; the shipped experiments use the synthetic stand-ins from
:mod:`repro.traces.synthetic` (see DESIGN.md §3).
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Iterable, List, Union

from .trace import Contact, ContactTrace, make_contact

PathLike = Union[str, Path]


class TraceFormatError(Exception):
    """Raised when a trace file cannot be parsed."""


def parse_trace(
    text: str, name: str = "trace", min_duration: float = 0.0
) -> ContactTrace:
    """Parse a contact table from a string.

    Args:
        text: the file contents.
        name: label for the resulting trace.
        min_duration: drop contacts shorter than this many seconds
            (some raw traces contain zero-length artifacts).

    Raises:
        TraceFormatError: on malformed rows.
    """
    contacts: List[Contact] = []
    nodes: set = set()
    for lineno, raw in enumerate(_io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 4:
            raise TraceFormatError(
                f"line {lineno}: expected >= 4 columns, got {len(fields)}"
            )
        try:
            a, b = int(fields[0]), int(fields[1])
            start, end = float(fields[2]), float(fields[3])
        except ValueError as err:
            raise TraceFormatError(f"line {lineno}: {err}") from err
        nodes.add(a)
        nodes.add(b)
        if a == b:
            # Some raw logs contain self-sightings; skip but keep node.
            continue
        if end - start <= min_duration:
            continue
        contacts.append(make_contact(a, b, start, end))
    return ContactTrace(name=name, nodes=tuple(nodes), contacts=tuple(contacts))


def load_trace(
    path: PathLike, name: str | None = None, min_duration: float = 0.0
) -> ContactTrace:
    """Load a trace from a file; the name defaults to the file stem."""
    path = Path(path)
    label = name if name is not None else path.stem
    return parse_trace(
        path.read_text(), name=label, min_duration=min_duration
    )


def dump_trace(trace: ContactTrace) -> str:
    """Serialize a trace to the four-column text format.

    Nodes without contacts are recorded in a header comment so the node
    universe survives a round-trip.
    """
    lines = [
        f"# trace: {trace.name}",
        f"# nodes: {' '.join(str(n) for n in trace.nodes)}",
        "# a b start end",
    ]
    for contact in trace.contacts:
        # repr() round-trips floats exactly, so load(dump(trace))
        # reproduces the contacts bit-for-bit.
        lines.append(
            f"{contact.a} {contact.b} {contact.start!r} {contact.end!r}"
        )
    return "\n".join(lines) + "\n"


def save_trace(trace: ContactTrace, path: PathLike) -> None:
    """Write a trace to disk in the text format."""
    Path(path).write_text(dump_trace(trace))


def parse_node_header(text: str) -> Iterable[int]:
    """Extract the ``# nodes:`` header written by :func:`dump_trace`."""
    for raw in _io.StringIO(text):
        line = raw.strip()
        if line.startswith("# nodes:"):
            return [int(tok) for tok in line[len("# nodes:") :].split()]
    return []


def load_trace_with_universe(path: PathLike, name: str | None = None) -> ContactTrace:
    """Load a trace, restoring contact-less nodes from the header."""
    path = Path(path)
    text = path.read_text()
    trace = parse_trace(text, name=name if name is not None else path.stem)
    header_nodes = set(parse_node_header(text))
    if header_nodes:
        return ContactTrace(
            name=trace.name,
            nodes=tuple(header_nodes | set(trace.nodes)),
            contacts=trace.contacts,
        )
    return trace
