"""Evaluation-window helpers.

The paper's experimental setting (Sec. V-C) isolates **3-hour periods**
of each data trace; each simulation runs over one such period and no
traffic is generated in the final hour to avoid end effects.  This
module centralizes window selection so every experiment slices traces
the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .trace import ContactTrace, ensure_contact_trace

#: The paper's standard evaluation window length.
STANDARD_WINDOW = 3 * 3600.0

#: Length of the trailing silent period (no message generation).
SILENT_TAIL = 3600.0


@dataclass(frozen=True)
class EvaluationWindow:
    """A [start, start + length) slice of a trace used for one run."""

    start: float
    length: float = STANDARD_WINDOW

    @property
    def end(self) -> float:
        """Exclusive end of the window."""
        return self.start + self.length

    @property
    def generation_deadline(self) -> float:
        """Last instant (relative to the window) when traffic may start."""
        return self.length - SILENT_TAIL

    def slice(self, trace: ContactTrace) -> ContactTrace:
        """Clip ``trace`` to this window (times shifted to 0).

        Raises:
            TypeError: if handed a :class:`~repro.traces.synthetic.SyntheticTrace`
                bundle instead of the :class:`ContactTrace` it wraps — a
                recurring slip, since ``trace_by_name`` returns the
                bundle.  Pass its ``.trace`` attribute.
        """
        trace = ensure_contact_trace(trace, "EvaluationWindow.slice")
        return trace.window(self.start, self.end)


def busiest_window(
    trace: ContactTrace,
    length: float = STANDARD_WINDOW,
    step: float = 1800.0,
) -> EvaluationWindow:
    """Find the window of ``length`` seconds with the most contacts.

    Experiments should run during an active period (an overnight window
    would measure nothing); scanning at ``step`` granularity is plenty
    because activity varies on the hour scale.
    """
    if trace.duration < length:
        return EvaluationWindow(start=trace.start_time, length=length)
    best_start = trace.start_time
    best_count = -1
    start = trace.start_time
    while start + length <= trace.end_time + step:
        count = sum(1 for c in trace.contacts if c.overlaps(start, start + length))
        if count > best_count:
            best_count = count
            best_start = start
        start += step
    return EvaluationWindow(start=best_start, length=length)


def active_windows(
    trace: ContactTrace,
    length: float = STANDARD_WINDOW,
    step: float = 3600.0,
    min_contacts: int = 50,
) -> List[EvaluationWindow]:
    """All windows with at least ``min_contacts`` contacts.

    Useful for multi-window replication: the paper reports averages
    over runs; replicating over several active windows (rather than
    re-seeding one window) matches trace-driven practice.
    """
    windows: List[EvaluationWindow] = []
    start = trace.start_time
    while start + length <= trace.end_time:
        count = sum(1 for c in trace.contacts if c.overlaps(start, start + length))
        if count >= min_contacts:
            windows.append(EvaluationWindow(start=start, length=length))
        start += step
    return windows
