"""Contact trace data model.

A Pocket Switched Network evaluation is driven by a *contact trace*: a
list of intervals during which two devices were within radio range.
The paper evaluates on two CRAWDAD iMote traces (Infocom 05 and
Cambridge 06, Sec. V-B); this module provides the neutral in-memory
representation shared by the trace loaders, the synthetic generators,
the social-graph layer, and the simulator.

Times are seconds from the start of the experiment (floats).  Contacts
are undirected: ``Contact(a, b, ...)`` and ``Contact(b, a, ...)``
describe the same physical encounter, and the constructor normalizes
the endpoint order so deduplication and hashing behave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

NodeId = int


@dataclass(frozen=True, order=True)
class Contact:
    """One radio contact between two nodes.

    Attributes:
        start: time the devices came into range (seconds).
        end: time the devices left range; must be > start.
        a: lower-numbered endpoint (normalized by :func:`make_contact`).
        b: higher-numbered endpoint.
    """

    start: float
    end: float
    a: NodeId
    b: NodeId

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-contact for node {self.a}")
        if self.end <= self.start:
            raise ValueError(
                f"contact must have positive duration "
                f"(start={self.start}, end={self.end})"
            )

    @property
    def duration(self) -> float:
        """Length of the contact in seconds."""
        return self.end - self.start

    @property
    def pair(self) -> FrozenSet[NodeId]:
        """The unordered endpoint pair."""
        return frozenset((self.a, self.b))

    def involves(self, node: NodeId) -> bool:
        """True if ``node`` is one of the endpoints."""
        return node == self.a or node == self.b

    def other(self, node: NodeId) -> NodeId:
        """The endpoint that is not ``node``.

        Raises:
            ValueError: if ``node`` is not an endpoint.
        """
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node} not in contact {self}")

    def overlaps(self, start: float, end: float) -> bool:
        """True if the contact intersects the half-open window [start, end)."""
        return self.start < end and self.end > start


def make_contact(a: NodeId, b: NodeId, start: float, end: float) -> Contact:
    """Build a normalized contact (endpoints sorted ascending)."""
    if a > b:
        a, b = b, a
    return Contact(start=start, end=end, a=a, b=b)


@dataclass
class ContactTrace:
    """An ordered collection of contacts plus the node universe.

    The node set is explicit rather than inferred because real traces
    contain devices that never logged a contact in the studied window
    but still exist (and can source/sink traffic).

    Attributes:
        name: human-readable label ("infocom05", ...).
        nodes: sorted tuple of node ids.
        contacts: contacts sorted by start time.
    """

    name: str
    nodes: Tuple[NodeId, ...]
    contacts: Tuple[Contact, ...]
    _by_node: Dict[NodeId, List[Contact]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.nodes = tuple(sorted(set(self.nodes)))
        node_set = set(self.nodes)
        ordered = tuple(sorted(self.contacts))
        for contact in ordered:
            if contact.a not in node_set or contact.b not in node_set:
                raise ValueError(
                    f"contact {contact} references unknown node "
                    f"(universe has {len(node_set)} nodes)"
                )
        self.contacts = ordered

    def __len__(self) -> int:
        return len(self.contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self.contacts)

    @property
    def num_nodes(self) -> int:
        """Size of the node universe."""
        return len(self.nodes)

    @property
    def start_time(self) -> float:
        """Start of the earliest contact (0.0 for an empty trace)."""
        return self.contacts[0].start if self.contacts else 0.0

    @property
    def end_time(self) -> float:
        """End of the latest-ending contact (0.0 for an empty trace)."""
        return max((c.end for c in self.contacts), default=0.0)

    @property
    def duration(self) -> float:
        """Span covered by the trace."""
        return max(0.0, self.end_time - self.start_time)

    def contacts_of(self, node: NodeId) -> Sequence[Contact]:
        """All contacts involving ``node``, sorted by start time.

        The per-node index is built lazily and cached.
        """
        if not self._by_node:
            index: Dict[NodeId, List[Contact]] = {n: [] for n in self.nodes}
            for contact in self.contacts:
                index[contact.a].append(contact)
                index[contact.b].append(contact)
            self._by_node.update(index)
        return self._by_node[node]

    def window(self, start: float, end: float, name: str | None = None) -> "ContactTrace":
        """Clip the trace to [start, end), shifting times to 0.

        Contacts straddling the boundary are truncated to the window;
        contacts entirely outside are dropped.  The node universe is
        preserved even for nodes with no contact in the window.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        length = end - start
        clipped = []
        for contact in self.contacts:
            if not contact.overlaps(start, end):
                continue
            # Clamp against float drift: shifting by `start` must never
            # push a truncated contact past the window length.
            rel_start = max(0.0, max(contact.start, start) - start)
            rel_end = min(length, min(contact.end, end) - start)
            if rel_end <= rel_start:
                continue
            clipped.append(
                Contact(start=rel_start, end=rel_end, a=contact.a, b=contact.b)
            )
        return ContactTrace(
            name=name if name is not None else f"{self.name}[{start}:{end}]",
            nodes=self.nodes,
            contacts=tuple(clipped),
        )

    def restricted_to(self, nodes: Iterable[NodeId]) -> "ContactTrace":
        """Keep only contacts whose both endpoints are in ``nodes``.

        Used e.g. to discard the stationary iMotes of Cambridge 06,
        which the paper explicitly excludes.
        """
        keep = set(nodes)
        return ContactTrace(
            name=self.name,
            nodes=tuple(sorted(keep)),
            contacts=tuple(
                c for c in self.contacts if c.a in keep and c.b in keep
            ),
        )


def ensure_contact_trace(trace: object, caller: str) -> ContactTrace:
    """Validate that ``trace`` is a :class:`ContactTrace`, actionably.

    Every public entry point that takes a trace funnels through this
    guard, because the same slip recurs at all of them:
    ``trace_by_name`` returns a :class:`~repro.traces.synthetic.SyntheticTrace`
    *bundle*, and handing the bundle (instead of its ``.trace``
    attribute) to an API that duck-types would either crash deep in the
    call stack or, worse, silently compute nonsense.

    Args:
        trace: the candidate value.
        caller: entry-point name quoted in the error message.

    Raises:
        TypeError: naming the caller, the received type, and — when the
            value looks like a SyntheticTrace bundle — the exact fix.
    """
    if isinstance(trace, ContactTrace):
        return trace
    detail = ""
    if isinstance(getattr(trace, "trace", None), ContactTrace):
        detail = (
            " — this looks like a SyntheticTrace bundle; pass its"
            " .trace attribute instead"
        )
    raise TypeError(
        f"{caller} expects a ContactTrace, got"
        f" {type(trace).__name__}{detail}"
    )


def merge_traces(name: str, traces: Sequence[ContactTrace]) -> ContactTrace:
    """Union several traces over a shared node universe."""
    nodes: set = set()
    contacts: List[Contact] = []
    for trace in traces:
        nodes.update(trace.nodes)
        contacts.extend(trace.contacts)
    return ContactTrace(name=name, nodes=tuple(nodes), contacts=tuple(contacts))
