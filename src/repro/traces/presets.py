"""Calibrated stand-ins for the paper's two evaluation traces.

* **Infocom 05** — 41 iMotes carried by attendees of the INFOCOM 2005
  student workshop, ~3 days.  A conference is socially dense: several
  research groups (communities) mixing heavily during session hours.
  The paper's Epidemic TTL for this trace is 30 minutes.
* **Cambridge 06** — 36 mobile iMotes carried by University of
  Cambridge students, 11 days.  Sparser contact rate than Infocom
  (the paper notes detection is slower here) but socially tight:
  students of a college meet reliably every day.  Epidemic TTL is
  35 minutes.

The parameter values below were calibrated against the qualitative
targets recorded in EXPERIMENTS.md: vanilla Epidemic success rate in a
3-hour window ≈ 72% (Infocom) / ≈ 90% (Cambridge) at the paper's TTLs,
with Cambridge showing a lower contact frequency (longer detection
times).  ``seed`` selects the replica; experiments average over seeds.
"""

from __future__ import annotations

from .synthetic import (
    ActivityWindow,
    CommunityModelConfig,
    SyntheticTrace,
    generate,
)
from .windows import EvaluationWindow, active_windows, busiest_window

#: Paper TTL (Δ1) values per trace and protocol family, in seconds
#: (Sec. V-C and Sec. VII).
EPIDEMIC_TTL = {"infocom05": 30 * 60.0, "cambridge06": 35 * 60.0}
DELEGATION_TTL = {"infocom05": 45 * 60.0, "cambridge06": 75 * 60.0}

#: Timeframe for delegation forwarding-quality versioning (Sec. VII).
QUALITY_TIMEFRAME = 34 * 60.0


def infocom05_config() -> CommunityModelConfig:
    """Generator parameters of the Infocom 05 stand-in."""
    return CommunityModelConfig(
        name="infocom05",
        # 41 attendees in four research clusters of varying size.
        community_sizes=(12, 11, 10, 8),
        duration=3 * 86_400.0,
        # Conference-floor density calibrated so vanilla Epidemic with
        # the paper's 30-minute TTL delivers ~72% in a 3-hour window.
        base_rate=1.0 / (250 * 60.0),
        intra_factor=1.0,
        inter_factor=0.09,
        traveler_fraction=0.20,
        traveler_boost=4.0,
        sociability_sigma=0.45,
        mean_contact_duration=240.0,
        min_contact_duration=30.0,
        activity_windows=(
            ActivityWindow(8.5, 12.5),
            ActivityWindow(13.5, 18.5),
            ActivityWindow(20.0, 23.0),
        ),
        burstiness=0.35,
        burst_gap_mean=600.0,
    )


def cambridge06_config() -> CommunityModelConfig:
    """Generator parameters of the Cambridge 06 stand-in."""
    return CommunityModelConfig(
        name="cambridge06",
        # 36 students across three cohorts.
        community_sizes=(13, 12, 11),
        duration=11 * 86_400.0,
        # Campus life: fewer encounters per hour than the conference
        # (the paper observes slower misbehavior detection here) but
        # better mixing, giving the higher ~90% Epidemic success.
        base_rate=1.0 / (380 * 60.0),
        intra_factor=1.0,
        inter_factor=0.30,
        traveler_fraction=0.15,
        traveler_boost=5.0,
        sociability_sigma=0.40,
        mean_contact_duration=300.0,
        min_contact_duration=30.0,
        activity_windows=(
            ActivityWindow(9.0, 13.0),
            ActivityWindow(14.0, 19.0),
        ),
        burstiness=0.30,
        burst_gap_mean=900.0,
    )


def infocom05(seed: int = 0) -> SyntheticTrace:
    """Generate an Infocom 05 stand-in replica."""
    return generate(infocom05_config(), seed=1_000 + seed)


def cambridge06(seed: int = 0) -> SyntheticTrace:
    """Generate a Cambridge 06 stand-in replica.

    The seed offset selects a realization family whose default member
    (seed 0) matches the calibration targets; like the paper's single
    real trace, one canonical realization anchors all experiments.
    """
    return generate(cambridge06_config(), seed=3_000 + seed)


def trace_by_name(name: str, seed: int = 0) -> SyntheticTrace:
    """Dispatch on the paper's trace names.

    Raises:
        KeyError: for unknown names.
    """
    factories = {"infocom05": infocom05, "cambridge06": cambridge06}
    if name not in factories:
        raise KeyError(
            f"unknown trace {name!r}; expected one of {sorted(factories)}"
        )
    return factories[name](seed)


def standard_window(synthetic: SyntheticTrace) -> EvaluationWindow:
    """The 3-hour evaluation window used by all experiments.

    For the conference trace the evaluation period is its peak (the
    busiest 3-hour slice — conference floors are evaluated during
    sessions); for the 11-day campus trace it is a *typical* active
    window (the 75th-percentile slice by contact count), so that the
    paper's observation that Cambridge has a lower contact frequency
    than Infocom carries over to the evaluated windows.
    """
    trace = synthetic.trace
    if trace.name == "cambridge06":
        windows = active_windows(trace, min_contacts=100)
        if windows:
            ranked = sorted(
                windows,
                key=lambda w: sum(
                    1 for c in trace.contacts if c.overlaps(w.start, w.end)
                ),
            )
            return ranked[int(len(ranked) * 0.75)]
    return busiest_window(trace)
