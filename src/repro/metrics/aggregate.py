"""Cross-run aggregation of simulation metrics.

One simulation run yields a :class:`~repro.sim.results.SimulationResults`;
experiments average several re-seeded runs per grid point and want
uncertainty estimates alongside the means.  This module provides the
small statistics toolkit used by the experiment harness, the
benchmarks, and EXPERIMENTS.md generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from ..sim.results import SimulationResults


@dataclass(frozen=True)
class Estimate:
    """A sample mean with dispersion.

    Attributes:
        mean: sample mean.
        std: sample standard deviation (ddof=1; 0 for n < 2).
        n: sample size.
    """

    mean: float
    std: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Estimate":
        """Estimate from a sample (empty → all-zero)."""
        if not values:
            return cls(mean=0.0, std=0.0, n=0)
        arr = np.asarray(values, dtype=float)
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(mean=float(arr.mean()), std=std, n=int(arr.size))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n else 0.0

    def ci95(self) -> float:
        """Half-width of a normal-approximation 95% interval."""
        return 1.96 * self.stderr

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.ci95():.3f} (n={self.n})"


def aggregate(
    runs: Iterable[SimulationResults],
    metric: Callable[[SimulationResults], float],
) -> Estimate:
    """Apply ``metric`` to each run and estimate its mean."""
    return Estimate.of([metric(run) for run in runs])


def success_rates(runs: Iterable[SimulationResults]) -> Estimate:
    """Mean success rate across runs."""
    return aggregate(runs, lambda r: r.success_rate)


def mean_delays(runs: Iterable[SimulationResults]) -> Estimate:
    """Mean delivery delay across runs (seconds)."""
    return aggregate(runs, lambda r: r.mean_delay)


def costs(runs: Iterable[SimulationResults]) -> Estimate:
    """Mean replica cost across runs."""
    return aggregate(runs, lambda r: r.cost)


def detection_rates(
    runs: Iterable[SimulationResults], misbehaving: Sequence[int]
) -> Estimate:
    """Mean detection rate across runs, for a fixed adversary set."""
    return aggregate(runs, lambda r: r.detection_rate(misbehaving))


def summary_table(
    grouped: Dict[str, List[SimulationResults]]
) -> Dict[str, Dict[str, Estimate]]:
    """Aggregate the headline metrics per named group of runs."""
    out: Dict[str, Dict[str, Estimate]] = {}
    for label, runs in grouped.items():
        out[label] = {
            "success_rate": success_rates(runs),
            "mean_delay": mean_delays(runs),
            "cost": costs(runs),
        }
    return out
