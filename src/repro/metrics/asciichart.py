"""Terminal line charts for reproduced figures.

The benchmark harness prints each reproduced figure as a table; this
module adds a dependency-free ASCII chart so the *shape* of a figure
(the thing this reproduction is accountable for) is visible at a
glance in CI logs and terminals::

    100 |
        | A
     75 |    A  B
        |       A   B
     50 |            A    B
        |                  A
     25 |______________________________________ x -->

Each series gets a one-character marker; collisions print ``*``.
"""

from __future__ import annotations

from typing import List, Sequence

#: Marker characters assigned to series in order.
MARKERS = "ABCDEFGHIJ"


def ascii_chart(
    series: Sequence,
    width: int = 60,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render :class:`repro.experiments.runner.Series` objects.

    Args:
        series: objects with ``label``, ``xs``, ``ys`` attributes.
        width: plot area width in characters.
        height: plot area height in rows.
        y_label / x_label: axis captions.

    Returns:
        The chart as a multi-line string (legend included).  Empty or
        degenerate input yields a short placeholder.
    """
    points = [
        (s, x, y)
        for s in series
        for x, y in zip(s.xs, s.ys)
    ]
    if not points:
        return "(no data to chart)"

    xs = [x for _, x, _ in points]
    ys = [y for _, _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        # row 0 is the top of the plot.
        return (height - 1) - round(
            (y - y_min) / (y_max - y_min) * (height - 1)
        )

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in zip(s.xs, s.ys):
            r, c = row(y), col(x)
            grid[r][c] = "*" if grid[r][c] not in (" ", marker) else marker

    gutter = max(len(f"{y_max:g}"), len(f"{y_min:g}"))
    lines: List[str] = []
    for r, cells in enumerate(grid):
        if r == 0:
            label = f"{y_max:g}".rjust(gutter)
        elif r == height - 1:
            label = f"{y_min:g}".rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |" + "".join(cells))
    axis = " " * gutter + " +" + "-" * width
    lines.append(axis)
    footer = (
        " " * gutter
        + f"  x: {x_min:g} .. {x_max:g}"
        + (f"  ({x_label})" if x_label else "")
    )
    lines.append(footer)
    if y_label:
        lines.append(" " * gutter + f"  y: {y_label}")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def chart_figure(figure, width: int = 60, height: int = 16) -> str:
    """Chart a :class:`repro.experiments.runner.FigureData`."""
    header = f"== {figure.figure_id}: {figure.title} =="
    body = ascii_chart(
        figure.series,
        width=width,
        height=height,
        y_label=figure.y_label,
        x_label=figure.x_label,
    )
    return header + "\n" + body
