"""Paper-vs-measured comparison records.

The reproduction promise (DESIGN.md §4) is about *shape*: who wins, by
roughly what factor, which orderings hold.  :class:`ShapeClaim` encodes
one such claim with a machine-checkable predicate, so EXPERIMENTS.md is
generated from the same code the tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class ShapeClaim:
    """One qualitative claim from the paper and its measured verdict.

    Attributes:
        claim_id: short handle ("fig3-monotone-infocom05", ...).
        paper: what the paper states.
        measured: what this reproduction measured (filled by evaluate).
        predicate: callable deciding whether the claim holds; wired by
            the experiment that owns the claim.
        holds: verdict (None until evaluated).
        note: optional divergence commentary.
    """

    claim_id: str
    paper: str
    predicate: Callable[[], bool]
    measured: str = ""
    holds: Optional[bool] = None
    note: str = ""

    def evaluate(self, measured: str, note: str = "") -> bool:
        """Run the predicate and record the verdict."""
        self.measured = measured
        self.note = note
        self.holds = bool(self.predicate())
        return self.holds

    def render(self) -> str:
        """One markdown bullet for EXPERIMENTS.md."""
        status = {True: "HOLDS", False: "DIVERGES", None: "UNEVALUATED"}[
            self.holds
        ]
        parts = [
            f"- **{self.claim_id}** [{status}]",
            f"  - paper: {self.paper}",
            f"  - measured: {self.measured or '(not evaluated)'}",
        ]
        if self.note:
            parts.append(f"  - note: {self.note}")
        return "\n".join(parts)


@dataclass
class ComparisonReport:
    """A batch of shape claims for one experiment."""

    experiment: str
    claims: List[ShapeClaim] = field(default_factory=list)

    def add(self, claim: ShapeClaim) -> ShapeClaim:
        """Register a claim."""
        self.claims.append(claim)
        return claim

    @property
    def holding(self) -> int:
        """Number of claims that held."""
        return sum(1 for c in self.claims if c.holds)

    @property
    def evaluated(self) -> int:
        """Number of evaluated claims."""
        return sum(1 for c in self.claims if c.holds is not None)

    def render(self) -> str:
        """Markdown section for EXPERIMENTS.md."""
        lines = [
            f"### {self.experiment} — {self.holding}/{self.evaluated} "
            "shape claims hold",
            "",
        ]
        lines.extend(claim.render() for claim in self.claims)
        return "\n".join(lines)


def monotone_decreasing(values: List[float], slack: float = 0.0) -> bool:
    """True when the series trends downward (each step may backslide by
    at most ``slack`` — replication noise tolerance)."""
    return all(b <= a + slack for a, b in zip(values, values[1:]))


def roughly_flat(values: List[float], ratio: float = 3.0) -> bool:
    """True when max/min stays within ``ratio`` (ignoring zeros)."""
    positive = [v for v in values if v > 0]
    if len(positive) < 2:
        return True
    return max(positive) / min(positive) <= ratio


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when ``measured`` is within ``factor``× of ``reference``."""
    if reference == 0:
        return measured == 0
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor
