"""Metric aggregation, paper-comparison records, and table rendering."""

from .asciichart import ascii_chart, chart_figure
from .aggregate import (
    Estimate,
    aggregate,
    costs,
    detection_rates,
    mean_delays,
    success_rates,
    summary_table,
)
from .compare import (
    ComparisonReport,
    ShapeClaim,
    monotone_decreasing,
    roughly_flat,
    within_factor,
)
from .report import markdown_table, minutes, percent, text_table

__all__ = [
    "ComparisonReport",
    "ascii_chart",
    "chart_figure",
    "Estimate",
    "ShapeClaim",
    "aggregate",
    "costs",
    "detection_rates",
    "markdown_table",
    "mean_delays",
    "minutes",
    "monotone_decreasing",
    "percent",
    "roughly_flat",
    "success_rates",
    "summary_table",
    "text_table",
    "within_factor",
]
