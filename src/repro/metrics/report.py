"""Plain-text and markdown table rendering helpers.

Small, dependency-free formatting used by the benchmark harness when
printing paper-shaped tables and by the examples.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def text_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    min_width: int = 10,
) -> str:
    """Render an aligned monospace table."""
    materialized: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [max(min_width, len(h)) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-markdown table."""
    out = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        out.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(out)


def minutes(seconds: float) -> str:
    """Format a duration in minutes with one decimal."""
    return f"{seconds / 60.0:.1f}m"


def percent(fraction: float) -> str:
    """Format a fraction as a percentage."""
    return f"{100.0 * fraction:.1f}%"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
