"""Traffic generation.

"A set of messages is generated with sources and destinations chosen
uniformly at random, and generation times from a Poisson process
averaging one message per 4 seconds. ... To avoid end-effects no
messages were generated in the last hour of each trace." (Sec. V-C)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..traces.trace import NodeId
from .config import SimulationConfig
from .messages import Message


@dataclass(frozen=True)
class TrafficDemand:
    """One planned message: when and between whom."""

    time: float
    source: NodeId
    destination: NodeId


class PoissonTraffic:
    """Poisson arrivals with uniform random endpoint pairs.

    Deterministic given ``(nodes, config.seed)``; the generator owns a
    dedicated RNG stream so protocol-side randomness never perturbs
    the workload.
    """

    def __init__(self, nodes: Sequence[NodeId], config: SimulationConfig) -> None:
        if len(nodes) < 2:
            raise ValueError("traffic needs at least two nodes")
        # A ``range`` universe (streaming sources) stays a range:
        # ``Random.choice`` indexes it identically to an equal-valued
        # tuple, and a 1M-node tuple would defeat the O(1) universe.
        self._nodes: Sequence[NodeId] = (
            nodes if isinstance(nodes, range) else tuple(nodes)
        )
        self._config = config
        self._rng = random.Random(f"{config.seed}|traffic")

    def demands(self) -> Iterator[TrafficDemand]:
        """Yield demands in time order until the generation deadline."""
        t = self._rng.expovariate(1.0 / self._config.mean_interarrival)
        while t < self._config.generation_deadline:
            source = self._rng.choice(self._nodes)
            destination = self._rng.choice(self._nodes)
            while destination == source:
                destination = self._rng.choice(self._nodes)
            yield TrafficDemand(time=t, source=source, destination=destination)
            t += self._rng.expovariate(1.0 / self._config.mean_interarrival)

    def plan(self) -> List[TrafficDemand]:
        """Materialize the full demand list."""
        return list(self.demands())


def demands_to_messages(
    demands: Sequence[TrafficDemand], config: SimulationConfig
) -> List[Message]:
    """Instantiate :class:`Message` objects for a demand plan."""
    return [
        Message(
            msg_id=i,
            source=d.source,
            destination=d.destination,
            created_at=d.time,
            ttl=config.ttl,
            size_bytes=config.message_size,
        )
        for i, d in enumerate(demands)
    ]
