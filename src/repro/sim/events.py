"""Discrete-event machinery for the contact-trace simulator.

The simulator advances through four kinds of events in global time
order: contact starts, contact ends, message generations, and timers.
Events are totally ordered by ``(time, priority, sequence)`` — ends
sort before starts at the same instant (so back-to-back contacts of
one pair do not overlap), generations sort after starts so a message
created at the very moment a contact opens can use that contact, and
timers sort last so everything a timer observes at time *t* includes
the effects of every contact and generation at *t*.

Timers are the run's one sanctioned deferred-work mechanism: protocols
and services register ``(owner, tag, payload)`` triples through
:class:`Scheduler` (usually via ``SimulationContext.schedule``)
instead of maintaining private heaps, and the engine dispatches them
through :meth:`TimerOwner.on_timer` in the same deterministic order as
every other event.  This module is the only place in ``sim/``,
``core/``, or ``protocols/`` allowed to touch ``heapq`` directly
(lint rule G2G007).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Iterator, List, Optional, Protocol, Tuple

from ..perf.counters import COUNTERS
from ..traces.trace import Contact, NodeId
from .eventlog import EventLog, EventType


class EventKind(IntEnum):
    """Event ordering priority at equal timestamps."""

    CONTACT_END = 0
    CONTACT_START = 1
    MESSAGE_GENERATION = 2
    TIMER = 3


class TimerOwner(Protocol):
    """Anything that can receive a timer dispatch.

    Protocols, node states, and run services implement this
    structurally; no registration beyond scheduling a timer with
    ``owner=self`` (or relying on the scheduler's default owner) is
    needed.
    """

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        """A timer registered by (or for) this owner fired."""
        ...  # pragma: no cover - protocol declaration


class TimerHandle:
    """One scheduled timer; returned by :meth:`Scheduler.schedule`.

    The handle doubles as the queue entry's payload: cancellation
    flips ``cancelled`` and the dispatch loop skips the entry when it
    surfaces (lazy deletion — no heap surgery, no reordering).
    """

    __slots__ = ("time", "tag", "payload", "owner", "cancelled")

    def __init__(
        self,
        time: float,
        tag: str,
        payload: Any = None,
        owner: Optional[TimerOwner] = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.tag = tag
        self.payload = payload
        self.owner = owner
        self.cancelled = cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"TimerHandle(t={self.time}, tag={self.tag!r}, {state})"


@dataclass(frozen=True)
class Event:
    """One scheduled simulator event.

    Exactly one of ``contact`` / ``traffic`` / ``timer`` is set,
    matching ``kind``.
    """

    time: float
    kind: EventKind
    contact: Optional[Contact] = None
    traffic: Optional[Tuple[NodeId, NodeId]] = None  # (source, destination)
    timer: Optional[TimerHandle] = None


class EventQueue:
    """A time-ordered event queue.

    Thin wrapper over ``heapq`` keeping a deterministic tiebreak
    sequence; supports bulk-loading a contact trace or feeding one
    incrementally from a streaming contact source
    (:meth:`attach_contacts`), so the heap never holds more than the
    events at or before the stream's current frontier.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._contacts: Optional[Iterator[Contact]] = None
        self._pending: Optional[Contact] = None
        self._contact_horizon: Optional[float] = None

    def push(self, event: Event) -> None:
        """Schedule ``event``."""
        heapq.heappush(
            self._heap, (event.time, int(event.kind), self._sequence, event)
        )
        self._sequence += 1

    def push_contact(
        self, contact: Contact, horizon: Optional[float] = None
    ) -> None:
        """Schedule the start and end events of a contact.

        With a ``horizon``, an end past it is clamped to the horizon:
        a contact still open at run end closes *at* run end instead of
        leaking an event past it (or, worse, never closing at all).
        """
        end = contact.end if horizon is None else min(contact.end, horizon)
        self.push(
            Event(time=contact.start, kind=EventKind.CONTACT_START, contact=contact)
        )
        self.push(Event(time=end, kind=EventKind.CONTACT_END, contact=contact))

    def attach_contacts(
        self, contacts: Iterator[Contact], horizon: Optional[float] = None
    ) -> None:
        """Feed contacts lazily from a time-ordered stream.

        Instead of bulk-pushing every contact up front (O(trace) heap
        memory), the queue holds one *pending* contact from the stream
        and pushes it — via the same :meth:`push_contact` path — only
        once the heap head reaches its start time.  Because the stream
        is non-decreasing in start time and a fed contact's events
        never precede the current head, the drain order is identical
        to the bulk load: cross-kind ties still resolve by
        :class:`EventKind` priority, and same-kind ties keep the
        stream's own order.  Contacts starting at or past the horizon
        end the feed (nothing later in a sorted stream can start
        inside the run).
        """
        self._contacts = iter(contacts)
        self._contact_horizon = horizon
        self._pending = self._next_contact()

    def _next_contact(self) -> Optional[Contact]:
        if self._contacts is None:
            return None
        horizon = self._contact_horizon
        for contact in self._contacts:
            if horizon is not None and contact.start >= horizon:
                break
            return contact
        self._contacts = None
        return None

    def _feed(self) -> None:
        """Push pending stream contacts due at or before the head."""
        pending = self._pending
        if pending is None:
            return
        heap = self._heap
        while pending is not None and (
            not heap or pending.start <= heap[0][0]
        ):
            self.push_contact(pending, horizon=self._contact_horizon)
            pending = self._next_contact()
        self._pending = pending

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it (None when empty)."""
        self._feed()
        return self._heap[0][3] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            IndexError: if the queue is empty.
        """
        self._feed()
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        """Events currently on the heap (stream feed not counted)."""
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap) or self._pending is not None

    def drain(self) -> Iterator[Event]:
        """Yield events in time order until the queue is empty."""
        while self._heap or self._pending is not None:
            yield self.pop()


class Scheduler:
    """The run scheduler: deferred work as first-class events.

    Owns an :class:`EventQueue` and turns ``schedule``/``cancel``
    requests into :data:`EventKind.TIMER` entries that the engine
    dispatches in the global ``(time, priority, sequence)`` order.
    Determinism contract:

    * timers at equal timestamps dispatch in scheduling order (the
      queue's sequence tiebreak);
    * a timer at time *t* fires after every contact and generation at
      *t* (``TIMER`` is the highest priority value), so "strictly
      before now" semantics fall out of event ordering alone;
    * timers past the run horizon are dropped at scheduling time —
      they could never fire inside the run.

    Args:
        queue: the event queue shared with the engine loop.
        horizon: run length; timers scheduled past it are stillborn.
        default_owner: receiver for timers scheduled without an
            explicit owner (the engine passes the bound protocol).
        events: the run's :class:`EventLog`; dispatches are logged
            as :data:`EventType.TIMER` entries when tracking is on.
    """

    def __init__(
        self,
        queue: EventQueue,
        horizon: Optional[float] = None,
        default_owner: Optional[TimerOwner] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.queue = queue
        self.horizon = horizon
        self.default_owner = default_owner
        self.events = events

    def schedule(
        self,
        time: float,
        tag: str,
        payload: Any = None,
        owner: Optional[TimerOwner] = None,
    ) -> TimerHandle:
        """Register a timer; returns its (cancellable) handle.

        A timer past the horizon is returned already cancelled and
        never enqueued — the old private-heap mechanisms likewise
        never acted on deadlines beyond run end.
        """
        handle = TimerHandle(time=time, tag=tag, payload=payload, owner=owner)
        if self.horizon is not None and time > self.horizon:
            handle.cancelled = True
            return handle
        COUNTERS.timers_scheduled += 1
        self.queue.push(Event(time=time, kind=EventKind.TIMER, timer=handle))
        return handle

    def cancel(self, handle: TimerHandle) -> None:
        """Cancel a pending timer (idempotent; lazy queue deletion)."""
        if not handle.cancelled:
            handle.cancelled = True
            COUNTERS.timers_cancelled += 1

    def fire(self, handle: TimerHandle, now: float) -> None:
        """Dispatch one surfaced timer entry (engine loop hook)."""
        if handle.cancelled:
            return
        COUNTERS.timer_dispatches += 1
        if self.events is not None and self.events.enabled:
            self.events.log(now, EventType.TIMER, detail=handle.tag)
        owner = handle.owner if handle.owner is not None else self.default_owner
        if owner is not None:
            owner.on_timer(handle.tag, handle.payload, now)

    def dispatch_until(self, now: float) -> None:
        """Fire every queued timer strictly before ``now``.

        The standalone-driver counterpart of the engine loop: tests
        and harnesses that call protocol hooks directly (no
        ``Simulation.run()``) advance the scheduler through this.
        Under the engine it is a guaranteed no-op — every event
        strictly before the one being dispatched has already been
        popped, and same-instant events are excluded by the strict
        inequality — so protocols may call it unconditionally.  Only
        head ``TIMER`` events are consumed; contacts and generations
        are left for whoever loaded them.
        """
        queue = self.queue
        while True:
            event = queue.peek()
            if (
                event is None
                or event.kind is not EventKind.TIMER
                or event.time >= now
            ):
                return
            queue.pop()
            assert event.timer is not None
            self.fire(event.timer, event.time)
