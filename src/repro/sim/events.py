"""Discrete-event machinery for the contact-trace simulator.

The simulator advances through three kinds of events in global time
order: contact starts, contact ends, and message generations.  Events
are totally ordered by ``(time, priority, sequence)`` — ends sort
before starts at the same instant (so back-to-back contacts of one
pair do not overlap), and generations sort after starts so a message
created at the very moment a contact opens can use that contact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, List, Optional, Tuple

from ..traces.trace import Contact, NodeId


class EventKind(IntEnum):
    """Event ordering priority at equal timestamps."""

    CONTACT_END = 0
    CONTACT_START = 1
    MESSAGE_GENERATION = 2


@dataclass(frozen=True)
class Event:
    """One scheduled simulator event.

    Exactly one of ``contact`` / ``traffic`` is set, matching ``kind``.
    """

    time: float
    kind: EventKind
    contact: Optional[Contact] = None
    traffic: Optional[Tuple[NodeId, NodeId]] = None  # (source, destination)


class EventQueue:
    """A time-ordered event queue.

    Thin wrapper over ``heapq`` keeping a deterministic tiebreak
    sequence; supports bulk-loading a contact trace.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0

    def push(self, event: Event) -> None:
        """Schedule ``event``."""
        heapq.heappush(
            self._heap, (event.time, int(event.kind), self._sequence, event)
        )
        self._sequence += 1

    def push_contact(self, contact: Contact) -> None:
        """Schedule the start and end events of a contact."""
        self.push(
            Event(time=contact.start, kind=EventKind.CONTACT_START, contact=contact)
        )
        self.push(
            Event(time=contact.end, kind=EventKind.CONTACT_END, contact=contact)
        )

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            IndexError: if the queue is empty.
        """
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Yield events in time order until the queue is empty."""
        while self._heap:
            yield self.pop()
