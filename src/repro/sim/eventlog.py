"""Structured protocol event log.

Simulations answer "what were the metrics"; debugging and auditing ask
"what exactly happened".  When enabled (``config.track_events``), the
protocols append one :class:`ProtocolEvent` per notable action —
hand-offs, deliveries, test phases, proofs of misbehavior, buffer
evictions — and the log supports filtered queries and a compact text
timeline (used by the selfishness-audit example).

The log is bounded-memory by construction: one fixed-size record per
event, no message payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Iterator, List, Optional

from ..traces.trace import NodeId


class EventType(Enum):
    """Kinds of logged protocol events."""

    GENERATED = "generated"
    RELAYED = "relayed"
    DELIVERED = "delivered"
    DROPPED = "dropped"          # a strategy discarded a relayed copy
    TEST_PASSED = "test_passed"
    TEST_FAILED = "test_failed"
    POM = "pom"
    EVICTED = "evicted"
    BUFFER_EVICTED = "buffer_evicted"
    TIMER = "timer"             # a scheduler timer dispatched
    DEPARTED = "departed"       # churn: a node left the network
    REJOINED = "rejoined"       # churn: a departed node came back
    DEPLETED = "depleted"       # a node's energy budget ran out


@dataclass(frozen=True)
class ProtocolEvent:
    """One logged event.

    Attributes:
        time: simulation time.
        event_type: what happened.
        msg_id: message involved (-1 when not applicable).
        actor: the node acting (giver / tester / detector).
        subject: the other party (taker / testee / offender), if any.
        detail: short free-form annotation ("storage_challenge",
            "dropper", ...).
    """

    time: float
    event_type: EventType
    msg_id: int = -1
    actor: Optional[NodeId] = None
    subject: Optional[NodeId] = None
    detail: str = ""


class EventLog:
    """Append-only event log with filtered views."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[ProtocolEvent] = []

    def log(
        self,
        time: float,
        event_type: EventType,
        msg_id: int = -1,
        actor: Optional[NodeId] = None,
        subject: Optional[NodeId] = None,
        detail: str = "",
    ) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        self._events.append(
            ProtocolEvent(
                time=time,
                event_type=event_type,
                msg_id=msg_id,
                actor=actor,
                subject=subject,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ProtocolEvent]:
        return iter(self._events)

    def filter(
        self,
        event_type: Optional[EventType] = None,
        msg_id: Optional[int] = None,
        node: Optional[NodeId] = None,
        predicate: Optional[Callable[[ProtocolEvent], bool]] = None,
    ) -> List[ProtocolEvent]:
        """Events matching every given criterion.

        ``node`` matches either role (actor or subject).
        """
        out = []
        for event in self._events:
            if event_type is not None and event.event_type != event_type:
                continue
            if msg_id is not None and event.msg_id != msg_id:
                continue
            if node is not None and node not in (event.actor, event.subject):
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def type_counts(self) -> Dict[str, int]:
        """Entry count per event-type value, key-sorted (for telemetry)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            name = event.event_type.value
            counts[name] = counts.get(name, 0) + 1
        return {name: counts[name] for name in sorted(counts)}

    def message_timeline(self, msg_id: int) -> List[ProtocolEvent]:
        """Every event touching one message, in time order."""
        return sorted(self.filter(msg_id=msg_id), key=lambda e: e.time)

    def node_timeline(self, node: NodeId) -> List[ProtocolEvent]:
        """Every event involving one node, in time order."""
        return sorted(self.filter(node=node), key=lambda e: e.time)

    def render(self, events: Optional[List[ProtocolEvent]] = None) -> str:
        """Compact text timeline."""
        rows = events if events is not None else list(self._events)
        lines = []
        for e in sorted(rows, key=lambda ev: ev.time):
            actors = ""
            if e.actor is not None and e.subject is not None:
                actors = f" {e.actor}->{e.subject}"
            elif e.actor is not None:
                actors = f" {e.actor}"
            msg = f" msg={e.msg_id}" if e.msg_id >= 0 else ""
            detail = f" ({e.detail})" if e.detail else ""
            lines.append(
                f"[{e.time:9.1f}s] {e.event_type.value:<14}{actors}{msg}{detail}"
            )
        return "\n".join(lines)
