"""Simulation configuration and the energy/memory cost model.

The defaults encode the paper's standard experimental setting
(Sec. V-C): a 3-hour run, Poisson traffic averaging one message per
4 seconds with uniformly random endpoints, a silent final hour,
infinite buffers, and Δ2 = 2·Δ1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

#: Paper defaults.
DEFAULT_RUN_LENGTH = 3 * 3600.0
DEFAULT_SILENT_TAIL = 3600.0
DEFAULT_MEAN_INTERARRIVAL = 4.0
DEFAULT_DELTA2_FACTOR = 2.0


@dataclass(frozen=True)
class EnergyModel:
    """Energy prices (joules) for the payoff accounting.

    The Nash argument needs the heavy HMAC to cost more than relaying
    a message would have; the defaults respect that ordering.  These
    numbers parameterize *relative* costs — the simulator reports
    joules, but only comparisons matter.
    """

    transmit_per_kb: float = 0.02
    receive_per_kb: float = 0.015
    signature: float = 0.005
    verification: float = 0.002
    heavy_hmac: float = 0.5
    storage_per_kb_hour: float = 0.001

    def transfer_cost(self, size_bytes: int) -> float:
        """Sender-side energy to transmit ``size_bytes``."""
        return self.transmit_per_kb * size_bytes / 1024.0

    def receive_cost(self, size_bytes: int) -> float:
        """Receiver-side energy to take ``size_bytes``."""
        return self.receive_per_kb * size_bytes / 1024.0


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run.

    Attributes:
        run_length: simulated seconds (paper: 3 hours).
        silent_tail: trailing period with no new traffic (paper: 1 h).
        mean_interarrival: mean seconds between message generations
            (paper: 4 s).
        ttl: message TTL Δ1 in seconds (per trace and protocol family;
            see :mod:`repro.traces.presets`).
        delta2_factor: Δ2 = factor · Δ1 (paper: 2).
        quality_timeframe: delegation forwarding-quality timeframe
            (paper: 34 minutes).
        relay_fanout: G2G relay cap (paper: 2 — the "give 2" rule).
        source_fanout: relay cap for a message's own source; the paper
            has the sender relay "to the first two (at least) nodes it
            meets", so the source may seed more copies than a relay —
            None (default) means unbounded.
        buffer_capacity: maximum message bodies a node buffers at once.
            None (default) reproduces the paper's infinite-buffer
            assumption.  A finite capacity forces evictions
            (earliest-expiring body first), which in G2G runs can make
            an honest node fail a storage challenge — the memory
            pressure vs false-conviction trade-off the Δ2 discussion
            alludes to; see benchmarks/test_ablations.py.
        seed: master RNG seed; traffic, crypto, and adversary draws all
            derive from it.
        message_size: payload bytes, for memory/energy accounting.
        instant_blacklist: True = a PoM reaches everyone immediately
            (the paper's broadcast assumption); False = PoMs gossip
            from node to node during contacts.
        blacklist_round_interval: with gossip (``instant_blacklist=
            False``), an optional period of scheduler-driven
            propagation rounds that push every published PoM to every
            node — out-of-band broadcast with bounded staleness.  None
            (default) keeps dissemination purely contact-driven.
        energy: the cost model.
        heavy_hmac_iterations: chain length of the storage challenge.
        track_memory: record per-node memory usage over time (slight
            overhead; on by default).
        track_events: record a structured protocol event log
            (:mod:`repro.sim.eventlog`) on the results; off by default
            — intended for debugging and audits, not sweeps.
    """

    run_length: float = DEFAULT_RUN_LENGTH
    silent_tail: float = DEFAULT_SILENT_TAIL
    mean_interarrival: float = DEFAULT_MEAN_INTERARRIVAL
    ttl: float = 30 * 60.0
    delta2_factor: float = DEFAULT_DELTA2_FACTOR
    quality_timeframe: float = 34 * 60.0
    relay_fanout: int = 2
    source_fanout: Optional[int] = None
    buffer_capacity: Optional[int] = None
    seed: int = 0
    message_size: int = 1024
    instant_blacklist: bool = True
    blacklist_round_interval: Optional[float] = None
    energy: EnergyModel = field(default_factory=EnergyModel)
    heavy_hmac_iterations: int = 64
    track_memory: bool = True
    track_events: bool = False

    def __post_init__(self) -> None:
        if self.run_length <= 0:
            raise ValueError("run_length must be positive")
        if not 0 <= self.silent_tail < self.run_length:
            raise ValueError("silent_tail must lie within the run")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.ttl <= 0:
            raise ValueError("ttl must be positive")
        if self.delta2_factor <= 1:
            raise ValueError("delta2_factor must exceed 1 (Δ2 > Δ1)")
        if self.relay_fanout < 1:
            raise ValueError("relay_fanout must be >= 1")
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1 (or None)")
        if self.quality_timeframe <= 0:
            raise ValueError("quality_timeframe must be positive")
        if (
            self.blacklist_round_interval is not None
            and self.blacklist_round_interval <= 0
        ):
            raise ValueError(
                "blacklist_round_interval must be positive (or None)"
            )

    @property
    def delta1(self) -> float:
        """Alias: the TTL is Δ1."""
        return self.ttl

    @property
    def delta2(self) -> float:
        """The test-phase horizon Δ2."""
        return self.delta2_factor * self.ttl

    @property
    def generation_deadline(self) -> float:
        """Last instant at which traffic may be generated."""
        return self.run_length - self.silent_tail

    def with_ttl(self, ttl: float) -> "SimulationConfig":
        """Copy with a different TTL."""
        return replace(self, ttl=ttl)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Copy with a different master seed."""
        return replace(self, seed=seed)


def config_for(
    trace_name: str,
    family: str,
    seed: int = 0,
    **overrides: object,
) -> SimulationConfig:
    """Build the paper's configuration for a trace/protocol family.

    Args:
        trace_name: "infocom05" or "cambridge06".
        family: "epidemic" or "delegation" — selects the paper TTL.
        seed: master seed.
        **overrides: any :class:`SimulationConfig` field.

    Raises:
        KeyError: on unknown trace or family names.
    """
    from ..traces.presets import DELEGATION_TTL, EPIDEMIC_TTL, QUALITY_TIMEFRAME

    ttl_table = {"epidemic": EPIDEMIC_TTL, "delegation": DELEGATION_TTL}
    if family not in ttl_table:
        raise KeyError(f"unknown protocol family {family!r}")
    ttl = ttl_table[family][trace_name]
    base = SimulationConfig(
        ttl=ttl, quality_timeframe=QUALITY_TIMEFRAME, seed=seed
    )
    return replace(base, **overrides) if overrides else base
