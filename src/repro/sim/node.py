"""Per-node runtime state.

A :class:`NodeState` is the simulator-side embodiment of one device:
its message buffer, the set of message ids it has handled ("have you
already handled a message with hash H(m)?" — step 1 of the relay
phase), its strategy, optional cryptographic identity, and running
energy/memory accounting.

Buffer mutations go through the ``store`` / ``drop`` helpers so that
memory byte-seconds are integrated correctly: every mutation first
settles the buffer-size integral up to ``now``, then applies.

Relay-eligible copies (body present, TTL not yet expired) are kept in
a side index maintained by the same mutation helpers: an
insertion-ordered dict of candidates plus a sorted expiry array (a
stdlib ``array('d')`` of ``expires_at`` values with a parallel id
list, maintained by ``bisect``).  ``live_copies`` /
``relay_candidates`` compare ``now`` against the *earliest* expiry
once and, in the common all-alive case, sweep the index without
touching a single ``Message`` object; expired entries are compacted
lazily at the first query that can observe them.  This replaces the
per-copy TTL timers of the earlier design — the timers were pure
compaction (results were identical with or without them firing), so
dropping them removes one scheduler event per stored copy from the
run without changing any observable output.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..adversaries.base import HONEST, Strategy
from ..crypto.keys import NodeIdentity
from ..perf.counters import COUNTERS
from ..traces.trace import NodeId
from .events import Scheduler
from .messages import StoredCopy
from .results import SimulationResults


@dataclass
class NodeState:
    """Mutable runtime state of one node.

    Attributes:
        node_id: the node's identifier (matches the trace).
        strategy: behavioral strategy (honest or a deviation).
        identity: cryptographic identity (G2G protocols only).
        buffer: live message copies by message id.
        seen: message ids this node has handled at some point —
            the honest answer to a RELAY_RQST.
        evicted: True once removed from the network by a PoM.
        departed: True while the node has churned out of the network
            (a device switched off); unlike eviction it is reversible
            via :meth:`rejoin`.
        depleted: True once the node's energy budget ran out (scenario
            runs with heterogeneous budgets); participation stops but
            the buffer stays — storage outlives the radio.
        extra: protocol-private state (quality trackers, held proofs,
            pending test obligations...).
    """

    node_id: NodeId
    strategy: Strategy = HONEST
    identity: Optional[NodeIdentity] = None
    buffer: Dict[int, StoredCopy] = field(default_factory=dict)
    seen: Set[int] = field(default_factory=set)
    evicted: bool = False
    departed: bool = False
    depleted: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)
    _buffer_bytes: int = 0
    _memory_clock: float = 0.0
    # Relay-candidate index: insertion-ordered copies whose body is
    # present and whose TTL has not yet been found expired.  The
    # sorted expiry sidecar (`_expiry_times` ascending, `_expiry_ids`
    # parallel) lets queries detect "nothing here is expired" in O(1)
    # and compact the stale tail in O(expired).  Maintained by
    # store/drop/drop_body/flush; excluded from equality so two nodes
    # with identical buffers compare equal regardless of scan history.
    _relayable: Dict[int, StoredCopy] = field(
        default_factory=dict, repr=False, compare=False
    )
    _expiry_times: array = field(
        default_factory=lambda: array("d"), repr=False, compare=False
    )
    _expiry_ids: List[int] = field(
        default_factory=list, repr=False, compare=False
    )

    def attach_scheduler(self, scheduler: Scheduler) -> None:
        """Engine-setup hook, kept for call-site compatibility.

        The TTL index is self-contained (a sorted expiry array swept
        at query time), so nodes no longer register per-copy timers on
        the run scheduler — this is now a no-op for every caller,
        engine-driven or hand-built.
        """

    @property
    def participating(self) -> bool:
        """True while the node can open sessions (on, present, alive)."""
        return not (self.evicted or self.departed or self.depleted)

    def depart(self, now: float, results: SimulationResults) -> None:
        """Churn out of the network: drop the buffer, go dark.

        The buffered relays are lost (their memory integral settles up
        to ``now`` and the TTL-expiry index is cleared through
        :meth:`flush`).  ``seen`` survives — the node still remembers
        what it handled, exactly as a real device would across a
        power cycle — and so do the Δ2 purge deadlines the protocol
        registered, which simply find nothing left to purge.
        """
        if self.departed:
            return
        self.flush(now, results)
        self.departed = True

    def rejoin(self, now: float) -> None:
        """Churn back in with a fresh (empty) buffer."""
        self.departed = False

    def has_copy(self, msg_id: int) -> bool:
        """True while a live copy is buffered."""
        return msg_id in self.buffer

    def has_seen(self, msg_id: int) -> bool:
        """True if the node ever handled the message."""
        return msg_id in self.seen

    # -- memory-accounted buffer mutations -----------------------------

    def _settle_memory(self, now: float, results: SimulationResults) -> None:
        """Integrate buffer occupancy up to ``now``."""
        clock = self._memory_clock
        if now > clock:
            if self._buffer_bytes:
                results.add_memory(
                    self.node_id, self._buffer_bytes * (now - clock)
                )
            self._memory_clock = now

    def store(
        self, copy: StoredCopy, now: float, results: SimulationResults
    ) -> StoredCopy:
        """Buffer a new copy (marks the message as seen).

        Raises:
            ValueError: if a copy of the same message is already held.
        """
        msg_id = copy.message.msg_id
        if msg_id in self.buffer:
            raise ValueError(
                f"node {self.node_id} already holds message {msg_id}"
            )
        self._settle_memory(now, results)
        self.buffer[msg_id] = copy
        self.seen.add(msg_id)
        self._buffer_bytes += copy.message.size_bytes
        if not copy.body_dropped:
            self._relayable[msg_id] = copy
            expires_at = copy.message.expires_at
            index = bisect_right(self._expiry_times, expires_at)
            self._expiry_times.insert(index, expires_at)
            self._expiry_ids.insert(index, msg_id)
        return copy

    def drop(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> Optional[StoredCopy]:
        """Remove a copy entirely (body and bookkeeping)."""
        copy = self.buffer.pop(msg_id, None)
        if copy is not None:
            self._settle_memory(now, results)
            self._buffer_bytes -= (
                0 if copy.body_dropped else copy.message.size_bytes
            )
            if self._relayable.pop(msg_id, None) is not None:
                self._index_discard(msg_id, copy.message.expires_at)
        return copy

    def drop_body(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> None:
        """Discard the payload bytes but keep the copy record.

        Models the G2G rule that a relay may free the message once two
        proofs of relay are collected (the proofs stay until Δ2).
        """
        copy = self.buffer.get(msg_id)
        if copy is None or copy.body_dropped:
            return
        self._settle_memory(now, results)
        copy.body_dropped = True
        self._buffer_bytes -= copy.message.size_bytes
        if self._relayable.pop(msg_id, None) is not None:
            self._index_discard(msg_id, copy.message.expires_at)

    def flush(self, now: float, results: SimulationResults) -> None:
        """Settle accounting and clear the buffer (eviction/run end)."""
        self._settle_memory(now, results)
        self.buffer.clear()
        self._buffer_bytes = 0
        self._relayable.clear()
        del self._expiry_times[:]
        self._expiry_ids.clear()

    # -- relay-candidate index -----------------------------------------

    def _index_discard(self, msg_id: int, expires_at: float) -> None:
        """Remove one entry from the sorted expiry sidecar."""
        times = self._expiry_times
        ids = self._expiry_ids
        index = bisect_left(times, expires_at)
        end = len(times)
        while index < end:
            if ids[index] == msg_id:
                del times[index]
                del ids[index]
                return
            index += 1

    def _compact_expired(self, now: float) -> None:
        """Drop every index entry whose TTL has passed (``<= now``).

        Query-time compaction: callers invoke this only after the O(1)
        earliest-expiry check says something actually expired, so the
        sweep is O(expired) amortized, never O(buffer) per scan.
        """
        times = self._expiry_times
        count = bisect_right(times, now)
        relayable = self._relayable
        ids = self._expiry_ids
        for msg_id in ids[:count]:
            relayable.pop(msg_id, None)
        del times[:count]
        del ids[:count]

    def live_copies(self, now: float) -> List[StoredCopy]:
        """Copies of messages still within their TTL, as a list.

        A list (not a view) so protocols may mutate the buffer while
        iterating.  Order matches buffer insertion order, exactly as
        the pre-index full-buffer filter produced.
        """
        COUNTERS.buffer_scans += 1
        times = self._expiry_times
        if times and times[0] <= now:
            self._compact_expired(now)
        live = list(self._relayable.values())
        COUNTERS.buffer_scanned += len(live)
        return live

    def relay_candidates(
        self, now: float, exclude: Set[int]
    ) -> List[StoredCopy]:
        """Live copies whose message id is not in ``exclude``.

        The per-pair offer scan: ``exclude`` is the taker's ``seen``
        set, so the relay phase is only entered for messages the taker
        would actually accept (step 1's "have you handled H(m)?"
        answered in bulk, before any signing work).  The expired tail
        is compacted first, so the sweep itself is a pure dict
        iteration — no per-entry ``expires_at`` reads.
        """
        COUNTERS.buffer_scans += 1
        times = self._expiry_times
        if times and times[0] <= now:
            self._compact_expired(now)
        relayable = self._relayable
        COUNTERS.buffer_scanned += len(relayable)
        return [
            copy
            for msg_id, copy in relayable.items()
            if msg_id not in exclude
        ]
