"""Per-node runtime state.

A :class:`NodeState` is the simulator-side embodiment of one device:
its message buffer, the set of message ids it has handled ("have you
already handled a message with hash H(m)?" — step 1 of the relay
phase), its strategy, optional cryptographic identity, and running
energy/memory accounting.

Buffer mutations go through the ``store`` / ``drop`` helpers so that
memory byte-seconds are integrated correctly: every mutation first
settles the buffer-size integral up to ``now``, then applies.

Relay-eligible copies (body present, TTL not yet expired) are kept in
a side index maintained by the same mutation helpers: an
insertion-ordered dict of candidates plus a sorted expiry array (a
stdlib ``array('d')`` of ``expires_at`` values with a parallel id
list, maintained by ``bisect``).  ``live_copies`` /
``relay_candidates`` compare ``now`` against the *earliest* expiry
once and, in the common all-alive case, sweep the index without
touching a single ``Message`` object; expired entries are compacted
lazily at the first query that can observe them.  This replaces the
per-copy TTL timers of the earlier design — the timers were pure
compaction (results were identical with or without them firing), so
dropping them removes one scheduler event per stored copy from the
run without changing any observable output.
"""

from __future__ import annotations

import os
import struct
import tempfile
from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    ItemsView,
    List,
    Optional,
    Set,
    ValuesView,
    cast,
)

from .._mypyc import mypyc_attr
from ..adversaries.base import HONEST, Strategy
from ..crypto.keys import NodeIdentity
from ..perf.counters import COUNTERS
from ..traces.trace import NodeId
from .events import Scheduler
from .messages import Message, StoredCopy
from .results import SimulationResults

# -- spill-to-disk relay index ----------------------------------------------

#: Fixed part of one spilled copy: msg_id, source, destination,
#: created_at, ttl, size_bytes, received_at, received_from (-1 = None),
#: quality.  Followed by a u32 relay count and that many i64 node ids.
_SPILL_RECORD = struct.Struct("<qqqddqdqd")
_SPILL_U32 = struct.Struct("<I")
_SPILL_I64 = struct.Struct("<q")


class RelaySpill:
    """Append-only on-disk store of demoted :class:`StoredCopy` records.

    One spill file is shared by every node of a run: records are
    addressed by byte offset, written once, and read back whenever the
    owning buffer promotes the copy.  Only *inert* copies are spilled
    (body present, no proofs or attachments pending), so a record
    round-trips bit-exactly through the fixed-layout encoding — the
    promoted copy is indistinguishable from one that never left memory.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        if path is None:
            fd, path = tempfile.mkstemp(
                prefix="g2g-relay-spill-", suffix=".bin"
            )
            self._handle = os.fdopen(fd, "w+b")
            self._owns_path = True
        else:
            self._handle = open(path, "w+b")
            self._owns_path = False
        self.path = path
        self._end = 0
        self.records = 0

    def append(self, copy: StoredCopy) -> int:
        """Write one copy; returns its record offset."""
        message = copy.message
        received_from = (
            -1 if copy.received_from is None else copy.received_from
        )
        handle = self._handle
        offset = self._end
        handle.seek(offset)
        handle.write(
            _SPILL_RECORD.pack(
                message.msg_id,
                message.source,
                message.destination,
                message.created_at,
                message.ttl,
                message.size_bytes,
                copy.received_at,
                received_from,
                copy.quality,
            )
        )
        relays = copy.relays
        handle.write(_SPILL_U32.pack(len(relays)))
        for relay in relays:
            handle.write(_SPILL_I64.pack(relay))
        self._end = offset + (
            _SPILL_RECORD.size + _SPILL_U32.size
            + len(relays) * _SPILL_I64.size
        )
        self.records += 1
        return offset

    def read(self, offset: int) -> StoredCopy:
        """Reconstruct the copy written at ``offset``."""
        handle = self._handle
        handle.seek(offset)
        (
            msg_id, source, destination, created_at, ttl, size_bytes,
            received_at, received_from, quality,
        ) = _SPILL_RECORD.unpack(handle.read(_SPILL_RECORD.size))
        (count,) = _SPILL_U32.unpack(handle.read(_SPILL_U32.size))
        payload = handle.read(count * _SPILL_I64.size)
        relays = [
            _SPILL_I64.unpack_from(payload, i * _SPILL_I64.size)[0]
            for i in range(count)
        ]
        return StoredCopy(
            message=Message(
                msg_id=msg_id,
                source=source,
                destination=destination,
                created_at=created_at,
                ttl=ttl,
                size_bytes=size_bytes,
            ),
            received_at=received_at,
            received_from=None if received_from < 0 else received_from,
            quality=quality,
            relays=relays,
        )

    def close(self) -> None:
        """Close the file; unlink it when this spill created it."""
        if self._handle.closed:
            return
        self._handle.close()
        if self._owns_path:
            try:
                os.unlink(self.path)
            except OSError:  # already gone: nothing to reclaim
                pass


@dataclass(frozen=True)
class SpillPolicy:
    """Run-level spill configuration (``Simulation(spill=...)``).

    Attributes:
        keep: resident copies per node before demotion kicks in.
        path: spill file location; ``None`` uses a run-lifetime
            temporary file that is unlinked when the run closes it.
    """

    keep: int = 64
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.keep < 1:
            raise ValueError("spill policy must keep at least one copy")


@mypyc_attr(native_class=False)
class SpillableBuffer(Dict[int, StoredCopy]):
    """A node buffer that demotes cold relay copies to a shared spill.

    The crucial invariant is *iteration-order transparency*: protocols
    iterate ``node.buffer.items()`` directly and their offer/purge
    order is part of the determinism contract.  A demoted key is
    therefore never removed from the dict — its value is overwritten
    *in place* with ``None`` (which preserves dict insertion order
    exactly) and the real record is parked in the spill file.  Every
    read path (``[]``, ``get``, ``items``, ``values``, ``pop``)
    promotes ``None`` entries transparently, so callers observe the
    same objects in the same order as an ordinary dict buffer.
    """

    def __init__(self, owner: "NodeState", spill: RelaySpill, keep: int) -> None:
        super().__init__()
        self._owner = owner
        self._spill = spill
        self._keep = max(1, keep)
        self._spilled: Dict[int, int] = {}  # msg_id -> record offset

    @property
    def resident(self) -> int:
        """Copies currently held in memory."""
        return len(self) - len(self._spilled)

    @property
    def spilled(self) -> int:
        """Copies currently parked on disk."""
        return len(self._spilled)

    def _promote(self, msg_id: int) -> StoredCopy:
        offset = self._spilled.pop(msg_id)
        copy = self._spill.read(offset)
        dict.__setitem__(self, msg_id, copy)
        relayable = self._owner._relayable
        if msg_id in relayable:
            relayable[msg_id] = copy
        COUNTERS.relay_spill_reads += 1
        return copy

    def _promote_all(self) -> None:
        if self._spilled:
            for msg_id in list(self._spilled):
                self._promote(msg_id)

    def demote_excess(self) -> None:
        """Spill the oldest inert copies until ``resident <= keep``.

        Copies with pending proofs/attachments or a dropped body stay
        resident: they are either about to mutate or already cheap.
        """
        if self.resident <= self._keep:
            return
        relayable = self._owner._relayable
        for msg_id in list(dict.keys(self)):
            if self.resident <= self._keep:
                break
            if msg_id in self._spilled:
                continue
            copy = dict.__getitem__(self, msg_id)
            if (
                copy is None
                or copy.body_dropped
                or copy.proofs
                or copy.attachments
            ):
                continue
            offset = self._spill.append(copy)
            self._spilled[msg_id] = offset
            dict.__setitem__(self, msg_id, cast(StoredCopy, None))
            if msg_id in relayable:
                relayable[msg_id] = cast(StoredCopy, None)
            COUNTERS.relay_spill_writes += 1

    def __getitem__(self, msg_id: int) -> StoredCopy:
        copy = dict.__getitem__(self, msg_id)
        if copy is None:
            copy = self._promote(msg_id)
        return copy

    def get(  # type: ignore[override]
        self, msg_id: int, default: Optional[StoredCopy] = None
    ) -> Optional[StoredCopy]:
        if msg_id not in self:
            return default
        return self[msg_id]

    def pop(self, msg_id: int, *default: Any) -> Any:  # type: ignore[override]
        if msg_id in self and dict.__getitem__(self, msg_id) is None:
            self._promote(msg_id)
        self._spilled.pop(msg_id, None)
        return dict.pop(self, msg_id, *default)

    def items(self) -> ItemsView[int, StoredCopy]:
        self._promote_all()
        return dict.items(self)

    def values(self) -> ValuesView[StoredCopy]:
        self._promote_all()
        return dict.values(self)

    def clear(self) -> None:
        dict.clear(self)
        self._spilled.clear()


@dataclass
class NodeState:
    """Mutable runtime state of one node.

    Attributes:
        node_id: the node's identifier (matches the trace).
        strategy: behavioral strategy (honest or a deviation).
        identity: cryptographic identity (G2G protocols only).
        buffer: live message copies by message id.
        seen: message ids this node has handled at some point —
            the honest answer to a RELAY_RQST.
        evicted: True once removed from the network by a PoM.
        departed: True while the node has churned out of the network
            (a device switched off); unlike eviction it is reversible
            via :meth:`rejoin`.
        depleted: True once the node's energy budget ran out (scenario
            runs with heterogeneous budgets); participation stops but
            the buffer stays — storage outlives the radio.
        extra: protocol-private state (quality trackers, held proofs,
            pending test obligations...).
    """

    node_id: NodeId
    strategy: Strategy = HONEST
    identity: Optional[NodeIdentity] = None
    buffer: Dict[int, StoredCopy] = field(default_factory=dict)
    seen: Set[int] = field(default_factory=set)
    evicted: bool = False
    departed: bool = False
    depleted: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)
    _buffer_bytes: int = 0
    _memory_clock: float = 0.0
    # Relay-candidate index: insertion-ordered copies whose body is
    # present and whose TTL has not yet been found expired.  The
    # sorted expiry sidecar (`_expiry_times` ascending, `_expiry_ids`
    # parallel) lets queries detect "nothing here is expired" in O(1)
    # and compact the stale tail in O(expired).  Maintained by
    # store/drop/drop_body/flush; excluded from equality so two nodes
    # with identical buffers compare equal regardless of scan history.
    _relayable: Dict[int, StoredCopy] = field(
        default_factory=dict, repr=False, compare=False
    )
    _expiry_times: array = field(
        default_factory=lambda: array("d"), repr=False, compare=False
    )
    _expiry_ids: List[int] = field(
        default_factory=list, repr=False, compare=False
    )
    # True once the buffer is a SpillableBuffer: the scan paths take a
    # (slightly slower) promotion-aware branch; the default path stays
    # exactly the plain-dict code it always was.
    _spill_enabled: bool = field(default=False, repr=False, compare=False)

    def enable_spill(self, spill: RelaySpill, keep: int) -> None:
        """Swap the buffer for a spill-backed one (scale runs).

        Must be called while the buffer is empty (the engine enables
        spill at node creation); existing copies would otherwise skip
        the demotion bookkeeping.
        """
        if self.buffer:
            raise ValueError(
                f"node {self.node_id}: enable_spill on a non-empty buffer"
            )
        self.buffer = SpillableBuffer(self, spill, keep)
        self._spill_enabled = True

    def attach_scheduler(self, scheduler: Scheduler) -> None:
        """Engine-setup hook, kept for call-site compatibility.

        The TTL index is self-contained (a sorted expiry array swept
        at query time), so nodes no longer register per-copy timers on
        the run scheduler — this is now a no-op for every caller,
        engine-driven or hand-built.
        """

    @property
    def participating(self) -> bool:
        """True while the node can open sessions (on, present, alive)."""
        return not (self.evicted or self.departed or self.depleted)

    def depart(self, now: float, results: SimulationResults) -> None:
        """Churn out of the network: drop the buffer, go dark.

        The buffered relays are lost (their memory integral settles up
        to ``now`` and the TTL-expiry index is cleared through
        :meth:`flush`).  ``seen`` survives — the node still remembers
        what it handled, exactly as a real device would across a
        power cycle — and so do the Δ2 purge deadlines the protocol
        registered, which simply find nothing left to purge.
        """
        if self.departed:
            return
        self.flush(now, results)
        self.departed = True

    def rejoin(self, now: float) -> None:
        """Churn back in with a fresh (empty) buffer."""
        self.departed = False

    def has_copy(self, msg_id: int) -> bool:
        """True while a live copy is buffered."""
        return msg_id in self.buffer

    def has_seen(self, msg_id: int) -> bool:
        """True if the node ever handled the message."""
        return msg_id in self.seen

    # -- memory-accounted buffer mutations -----------------------------

    def _settle_memory(self, now: float, results: SimulationResults) -> None:
        """Integrate buffer occupancy up to ``now``."""
        clock = self._memory_clock
        if now > clock:
            if self._buffer_bytes:
                results.add_memory(
                    self.node_id, self._buffer_bytes * (now - clock)
                )
            self._memory_clock = now

    def store(
        self, copy: StoredCopy, now: float, results: SimulationResults
    ) -> StoredCopy:
        """Buffer a new copy (marks the message as seen).

        Raises:
            ValueError: if a copy of the same message is already held.
        """
        msg_id = copy.message.msg_id
        if msg_id in self.buffer:
            raise ValueError(
                f"node {self.node_id} already holds message {msg_id}"
            )
        self._settle_memory(now, results)
        self.buffer[msg_id] = copy
        self.seen.add(msg_id)
        self._buffer_bytes += copy.message.size_bytes
        if not copy.body_dropped:
            self._relayable[msg_id] = copy
            expires_at = copy.message.expires_at
            index = bisect_right(self._expiry_times, expires_at)
            self._expiry_times.insert(index, expires_at)
            self._expiry_ids.insert(index, msg_id)
        if self._spill_enabled:
            cast(SpillableBuffer, self.buffer).demote_excess()
        return copy

    def drop(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> Optional[StoredCopy]:
        """Remove a copy entirely (body and bookkeeping)."""
        copy = self.buffer.pop(msg_id, None)
        if copy is not None:
            self._settle_memory(now, results)
            self._buffer_bytes -= (
                0 if copy.body_dropped else copy.message.size_bytes
            )
            if self._relayable.pop(msg_id, None) is not None:
                self._index_discard(msg_id, copy.message.expires_at)
        return copy

    def drop_body(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> None:
        """Discard the payload bytes but keep the copy record.

        Models the G2G rule that a relay may free the message once two
        proofs of relay are collected (the proofs stay until Δ2).
        """
        copy = self.buffer.get(msg_id)
        if copy is None or copy.body_dropped:
            return
        self._settle_memory(now, results)
        copy.body_dropped = True
        self._buffer_bytes -= copy.message.size_bytes
        if self._relayable.pop(msg_id, None) is not None:
            self._index_discard(msg_id, copy.message.expires_at)

    def flush(self, now: float, results: SimulationResults) -> None:
        """Settle accounting and clear the buffer (eviction/run end)."""
        self._settle_memory(now, results)
        self.buffer.clear()
        self._buffer_bytes = 0
        self._relayable.clear()
        del self._expiry_times[:]
        self._expiry_ids.clear()

    # -- relay-candidate index -----------------------------------------

    def _index_discard(self, msg_id: int, expires_at: float) -> None:
        """Remove one entry from the sorted expiry sidecar."""
        times = self._expiry_times
        ids = self._expiry_ids
        index = bisect_left(times, expires_at)
        end = len(times)
        while index < end:
            if ids[index] == msg_id:
                del times[index]
                del ids[index]
                return
            index += 1

    def _compact_expired(self, now: float) -> None:
        """Drop every index entry whose TTL has passed (``<= now``).

        Query-time compaction: callers invoke this only after the O(1)
        earliest-expiry check says something actually expired, so the
        sweep is O(expired) amortized, never O(buffer) per scan.
        """
        times = self._expiry_times
        count = bisect_right(times, now)
        relayable = self._relayable
        ids = self._expiry_ids
        for msg_id in ids[:count]:
            relayable.pop(msg_id, None)
        del times[:count]
        del ids[:count]

    def live_copies(self, now: float) -> List[StoredCopy]:
        """Copies of messages still within their TTL, as a list.

        A list (not a view) so protocols may mutate the buffer while
        iterating.  Order matches buffer insertion order, exactly as
        the pre-index full-buffer filter produced.
        """
        COUNTERS.buffer_scans += 1
        times = self._expiry_times
        if times and times[0] <= now:
            self._compact_expired(now)
        if self._spill_enabled:
            live = self._promoted_relayable()
        else:
            live = list(self._relayable.values())
        COUNTERS.buffer_scanned += len(live)
        return live

    def _promoted_relayable(self) -> List[StoredCopy]:
        """The relay index with spilled entries promoted in place."""
        buffer = self.buffer
        live: List[StoredCopy] = []
        for msg_id, copy in self._relayable.items():
            if copy is None:
                copy = buffer[msg_id]  # promotes; fixes _relayable in place
            live.append(copy)
        return live

    def relay_candidates(
        self, now: float, exclude: Set[int]
    ) -> List[StoredCopy]:
        """Live copies whose message id is not in ``exclude``.

        The per-pair offer scan: ``exclude`` is the taker's ``seen``
        set, so the relay phase is only entered for messages the taker
        would actually accept (step 1's "have you handled H(m)?"
        answered in bulk, before any signing work).  The expired tail
        is compacted first, so the sweep itself is a pure dict
        iteration — no per-entry ``expires_at`` reads.
        """
        COUNTERS.buffer_scans += 1
        times = self._expiry_times
        if times and times[0] <= now:
            self._compact_expired(now)
        relayable = self._relayable
        COUNTERS.buffer_scanned += len(relayable)
        if self._spill_enabled:
            buffer = self.buffer
            candidates: List[StoredCopy] = []
            for msg_id, copy in relayable.items():
                if msg_id in exclude:
                    continue
                if copy is None:
                    copy = buffer[msg_id]
                candidates.append(copy)
            return candidates
        return [
            copy
            for msg_id, copy in relayable.items()
            if msg_id not in exclude
        ]
