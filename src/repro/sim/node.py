"""Per-node runtime state.

A :class:`NodeState` is the simulator-side embodiment of one device:
its message buffer, the set of message ids it has handled ("have you
already handled a message with hash H(m)?" — step 1 of the relay
phase), its strategy, optional cryptographic identity, and running
energy/memory accounting.

Buffer mutations go through the ``store`` / ``drop`` helpers so that
memory byte-seconds are integrated correctly: every mutation first
settles the buffer-size integral up to ``now``, then applies.

Relay-eligible copies (body present, TTL not yet expired) are kept in
a side index maintained by the same mutation helpers: an
insertion-ordered dict of candidates pruned by TTL-expiry timers on
the run scheduler (one registered per store, cancelled when the copy
or its body goes away first).  ``live_copies``/``relay_candidates``
read the index instead of re-filtering the whole buffer, which turns
the per-contact offer scan from O(buffer) ``alive_at`` calls into a
dict iteration — the single biggest win of the relay-loop overhaul.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..adversaries.base import HONEST, Strategy
from ..crypto.keys import NodeIdentity
from ..perf.counters import COUNTERS
from ..traces.trace import NodeId
from .events import Scheduler, TimerHandle
from .messages import StoredCopy
from .results import SimulationResults

#: Scheduler tag of the per-copy TTL-expiry timers.
TTL_TIMER_TAG = "node.ttl"


@dataclass
class NodeState:
    """Mutable runtime state of one node.

    Attributes:
        node_id: the node's identifier (matches the trace).
        strategy: behavioral strategy (honest or a deviation).
        identity: cryptographic identity (G2G protocols only).
        buffer: live message copies by message id.
        seen: message ids this node has handled at some point —
            the honest answer to a RELAY_RQST.
        evicted: True once removed from the network by a PoM.
        departed: True while the node has churned out of the network
            (a device switched off); unlike eviction it is reversible
            via :meth:`rejoin`.
        depleted: True once the node's energy budget ran out (scenario
            runs with heterogeneous budgets); participation stops but
            the buffer stays — storage outlives the radio.
        extra: protocol-private state (quality trackers, held proofs,
            pending test obligations...).
    """

    node_id: NodeId
    strategy: Strategy = HONEST
    identity: Optional[NodeIdentity] = None
    buffer: Dict[int, StoredCopy] = field(default_factory=dict)
    seen: Set[int] = field(default_factory=set)
    evicted: bool = False
    departed: bool = False
    depleted: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)
    _buffer_bytes: int = 0
    _memory_clock: float = 0.0
    # Relay-candidate index: insertion-ordered copies whose body is
    # present and whose TTL has not yet been found expired.  Pruned by
    # per-copy TTL timers on the run scheduler; queries additionally
    # filter on ``expires_at`` so the index never needs to be exact.
    # Maintained by store/drop/drop_body/flush; excluded from equality
    # so two nodes with identical buffers compare equal regardless of
    # scan history.
    _relayable: Dict[int, StoredCopy] = field(
        default_factory=dict, repr=False, compare=False
    )
    _scheduler: Optional[Scheduler] = field(
        default=None, repr=False, compare=False
    )
    _ttl_handles: Dict[int, TimerHandle] = field(
        default_factory=dict, repr=False, compare=False
    )

    def attach_scheduler(self, scheduler: Scheduler) -> None:
        """Wire the run scheduler in (engine setup).

        Without one (hand-built node states in unit tests) the node
        simply schedules no TTL timers; the query-time ``expires_at``
        filter alone keeps the candidate scans correct.
        """
        self._scheduler = scheduler

    @property
    def participating(self) -> bool:
        """True while the node can open sessions (on, present, alive)."""
        return not (self.evicted or self.departed or self.depleted)

    def depart(self, now: float, results: SimulationResults) -> None:
        """Churn out of the network: drop the buffer, go dark.

        The buffered relays are lost (their memory integral settles up
        to ``now`` and their TTL timers are cancelled through
        :meth:`flush`, so the relay-candidate index and the scheduler
        stay consistent).  ``seen`` survives — the node still remembers
        what it handled, exactly as a real device would across a
        power cycle — and so do the Δ2 purge timers the protocol
        registered, which simply find nothing left to purge.
        """
        if self.departed:
            return
        self.flush(now, results)
        self.departed = True

    def rejoin(self, now: float) -> None:
        """Churn back in with a fresh (empty) buffer."""
        self.departed = False

    def has_copy(self, msg_id: int) -> bool:
        """True while a live copy is buffered."""
        return msg_id in self.buffer

    def has_seen(self, msg_id: int) -> bool:
        """True if the node ever handled the message."""
        return msg_id in self.seen

    # -- memory-accounted buffer mutations -----------------------------

    def _settle_memory(self, now: float, results: SimulationResults) -> None:
        """Integrate buffer occupancy up to ``now``."""
        clock = self._memory_clock
        if now > clock:
            if self._buffer_bytes:
                results.add_memory(
                    self.node_id, self._buffer_bytes * (now - clock)
                )
            self._memory_clock = now

    def store(
        self, copy: StoredCopy, now: float, results: SimulationResults
    ) -> StoredCopy:
        """Buffer a new copy (marks the message as seen).

        Raises:
            ValueError: if a copy of the same message is already held.
        """
        msg_id = copy.message.msg_id
        if msg_id in self.buffer:
            raise ValueError(
                f"node {self.node_id} already holds message {msg_id}"
            )
        self._settle_memory(now, results)
        self.buffer[msg_id] = copy
        self.seen.add(msg_id)
        self._buffer_bytes += copy.message.size_bytes
        if not copy.body_dropped:
            self._relayable[msg_id] = copy
            if self._scheduler is not None:
                handle = self._scheduler.schedule(
                    copy.message.expires_at, TTL_TIMER_TAG, msg_id, owner=self
                )
                if not handle.cancelled:  # expiry within the horizon
                    self._ttl_handles[msg_id] = handle
        return copy

    def drop(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> Optional[StoredCopy]:
        """Remove a copy entirely (body and bookkeeping)."""
        copy = self.buffer.pop(msg_id, None)
        if copy is not None:
            self._settle_memory(now, results)
            self._buffer_bytes -= (
                0 if copy.body_dropped else copy.message.size_bytes
            )
            self._relayable.pop(msg_id, None)
            self._cancel_ttl_timer(msg_id)
        return copy

    def drop_body(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> None:
        """Discard the payload bytes but keep the copy record.

        Models the G2G rule that a relay may free the message once two
        proofs of relay are collected (the proofs stay until Δ2).
        """
        copy = self.buffer.get(msg_id)
        if copy is None or copy.body_dropped:
            return
        self._settle_memory(now, results)
        copy.body_dropped = True
        self._buffer_bytes -= copy.message.size_bytes
        self._relayable.pop(msg_id, None)
        self._cancel_ttl_timer(msg_id)

    def flush(self, now: float, results: SimulationResults) -> None:
        """Settle accounting and clear the buffer (eviction/run end)."""
        self._settle_memory(now, results)
        self.buffer.clear()
        self._buffer_bytes = 0
        self._relayable.clear()
        if self._ttl_handles:
            scheduler = self._scheduler
            if scheduler is not None:
                for handle in self._ttl_handles.values():
                    scheduler.cancel(handle)
            self._ttl_handles.clear()

    # -- relay-candidate index -----------------------------------------

    def _cancel_ttl_timer(self, msg_id: int) -> None:
        """Retire the TTL timer of a copy leaving the index early."""
        handle = self._ttl_handles.pop(msg_id, None)
        if handle is not None and self._scheduler is not None:
            self._scheduler.cancel(handle)

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        """TTL-expiry dispatch: prune the copy from the index.

        ``TIMER`` events sort after contacts at the same instant, and
        the query-time filter below already treats ``expires_at <=
        now`` as dead, so pruning here is pure compaction — results
        are identical with or without the timer firing (which is what
        keeps scheduler-less unit-test nodes correct).
        """
        self._ttl_handles.pop(payload, None)
        copy = self._relayable.get(payload)
        if copy is not None and copy.message.expires_at <= now:
            del self._relayable[payload]

    def live_copies(self, now: float) -> List[StoredCopy]:
        """Copies of messages still within their TTL, as a list.

        A list (not a view) so protocols may mutate the buffer while
        iterating.  Order matches buffer insertion order, exactly as
        the pre-index full-buffer filter produced.
        """
        COUNTERS.buffer_scans += 1
        live = [
            copy
            for copy in self._relayable.values()
            if copy.message.expires_at > now
        ]
        COUNTERS.buffer_scanned += len(live)
        return live

    def relay_candidates(
        self, now: float, exclude: Set[int]
    ) -> List[StoredCopy]:
        """Live copies whose message id is not in ``exclude``.

        The per-pair offer scan: ``exclude`` is the taker's ``seen``
        set, so the relay phase is only entered for messages the taker
        would actually accept (step 1's "have you handled H(m)?"
        answered in bulk, before any signing work).
        """
        COUNTERS.buffer_scans += 1
        scanned = 0
        out = []
        for msg_id, copy in self._relayable.items():
            if copy.message.expires_at <= now:
                continue  # expired, timer not yet dispatched
            scanned += 1
            if msg_id not in exclude:
                out.append(copy)
        COUNTERS.buffer_scanned += scanned
        return out
