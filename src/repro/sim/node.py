"""Per-node runtime state.

A :class:`NodeState` is the simulator-side embodiment of one device:
its message buffer, the set of message ids it has handled ("have you
already handled a message with hash H(m)?" — step 1 of the relay
phase), its strategy, optional cryptographic identity, and running
energy/memory accounting.

Buffer mutations go through the ``store`` / ``drop`` helpers so that
memory byte-seconds are integrated correctly: every mutation first
settles the buffer-size integral up to ``now``, then applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from ..adversaries.base import HONEST, Strategy
from ..crypto.keys import NodeIdentity
from ..traces.trace import NodeId
from .messages import Message, StoredCopy
from .results import SimulationResults


@dataclass
class NodeState:
    """Mutable runtime state of one node.

    Attributes:
        node_id: the node's identifier (matches the trace).
        strategy: behavioral strategy (honest or a deviation).
        identity: cryptographic identity (G2G protocols only).
        buffer: live message copies by message id.
        seen: message ids this node has handled at some point —
            the honest answer to a RELAY_RQST.
        evicted: True once removed from the network by a PoM.
        extra: protocol-private state (quality trackers, held proofs,
            pending test obligations...).
    """

    node_id: NodeId
    strategy: Strategy = HONEST
    identity: Optional[NodeIdentity] = None
    buffer: Dict[int, StoredCopy] = field(default_factory=dict)
    seen: Set[int] = field(default_factory=set)
    evicted: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)
    _buffer_bytes: int = 0
    _memory_clock: float = 0.0

    def has_copy(self, msg_id: int) -> bool:
        """True while a live copy is buffered."""
        return msg_id in self.buffer

    def has_seen(self, msg_id: int) -> bool:
        """True if the node ever handled the message."""
        return msg_id in self.seen

    # -- memory-accounted buffer mutations -----------------------------

    def _settle_memory(self, now: float, results: SimulationResults) -> None:
        """Integrate buffer occupancy up to ``now``."""
        dt = now - self._memory_clock
        if dt > 0 and self._buffer_bytes:
            results.add_memory(self.node_id, self._buffer_bytes * dt)
        self._memory_clock = max(self._memory_clock, now)

    def store(
        self, copy: StoredCopy, now: float, results: SimulationResults
    ) -> StoredCopy:
        """Buffer a new copy (marks the message as seen).

        Raises:
            ValueError: if a copy of the same message is already held.
        """
        msg_id = copy.message.msg_id
        if msg_id in self.buffer:
            raise ValueError(
                f"node {self.node_id} already holds message {msg_id}"
            )
        self._settle_memory(now, results)
        self.buffer[msg_id] = copy
        self.seen.add(msg_id)
        self._buffer_bytes += copy.message.size_bytes
        return copy

    def drop(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> Optional[StoredCopy]:
        """Remove a copy entirely (body and bookkeeping)."""
        copy = self.buffer.pop(msg_id, None)
        if copy is not None:
            self._settle_memory(now, results)
            self._buffer_bytes -= (
                0 if copy.body_dropped else copy.message.size_bytes
            )
        return copy

    def drop_body(
        self, msg_id: int, now: float, results: SimulationResults
    ) -> None:
        """Discard the payload bytes but keep the copy record.

        Models the G2G rule that a relay may free the message once two
        proofs of relay are collected (the proofs stay until Δ2).
        """
        copy = self.buffer.get(msg_id)
        if copy is None or copy.body_dropped:
            return
        self._settle_memory(now, results)
        copy.body_dropped = True
        self._buffer_bytes -= copy.message.size_bytes

    def flush(self, now: float, results: SimulationResults) -> None:
        """Settle accounting and clear the buffer (eviction/run end)."""
        self._settle_memory(now, results)
        self.buffer.clear()
        self._buffer_bytes = 0

    def live_copies(self, now: float):
        """Copies of messages still within their TTL, as a list.

        A list (not a view) so protocols may mutate the buffer while
        iterating.
        """
        return [
            copy
            for copy in self.buffer.values()
            if copy.message.alive_at(now) and not copy.body_dropped
        ]
