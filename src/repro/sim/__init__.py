"""Discrete-event DTN simulator driven by contact traces."""

from .config import EnergyModel, SimulationConfig, config_for
from .engine import ChurnEvent, ChurnService, Simulation, run_simulation
from .events import Event, EventKind, EventQueue, Scheduler, TimerHandle, TimerOwner
from .messages import Message, StoredCopy
from .node import NodeState
from .results import DetectionRecord, MessageRecord, SimulationResults
from .serialize import load_results, results_from_dict, results_to_dict, save_results
from .traffic import PoissonTraffic, TrafficDemand, demands_to_messages

__all__ = [
    "ChurnEvent",
    "ChurnService",
    "DetectionRecord",
    "EnergyModel",
    "Event",
    "EventKind",
    "EventQueue",
    "Message",
    "MessageRecord",
    "NodeState",
    "PoissonTraffic",
    "Scheduler",
    "Simulation",
    "SimulationConfig",
    "SimulationResults",
    "StoredCopy",
    "TimerHandle",
    "TimerOwner",
    "TrafficDemand",
    "config_for",
    "demands_to_messages",
    "load_results",
    "results_from_dict",
    "results_to_dict",
    "run_simulation",
    "save_results",
]
