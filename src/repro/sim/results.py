"""Metrics collection and aggregation for simulation runs.

Collects exactly the quantities the paper reports:

* **success rate** — fraction of generated messages delivered;
* **delay** — generation-to-first-delivery time of delivered messages;
* **cost** — number of replicas of each message created in the network
  (every hand-off counts one replica; the source's original does not);
* **detection** — for G2G runs with adversaries: which misbehaving
  nodes were detected, and the detection delay measured *after the
  expiry of the message's Δ1* (the convention of Fig. 4, Fig. 7 and
  Table I);
* **overheads** — energy (joules, via the configured
  :class:`~repro.sim.config.EnergyModel`) and memory (byte-seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

import numpy as np

from ..traces.trace import NodeId
from .messages import Message


@dataclass
class MessageRecord:
    """Lifecycle of one generated message."""

    message: Message
    delivered_at: Optional[float] = None
    replicas: int = 0

    @property
    def delivered(self) -> bool:
        """True once the destination received the message."""
        return self.delivered_at is not None

    @property
    def delay(self) -> Optional[float]:
        """Generation-to-delivery delay, or None if undelivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.message.created_at


@dataclass(frozen=True)
class DetectionRecord:
    """One proof of misbehavior issued during a run.

    Attributes:
        offender: the node the PoM incriminates.
        detector: the node that produced the PoM.
        time: simulation time of detection.
        msg_id: the message whose handling was tested.
        deviation: "dropper" / "liar" / "cheater" — from the PoM kind.
        delay_after_ttl: ``time - (created_at + Δ1)`` of the tested
            message, the paper's detection-time convention.
    """

    offender: NodeId
    detector: NodeId
    time: float
    msg_id: int
    deviation: str
    delay_after_ttl: float


@dataclass
class SimulationResults:
    """Everything measured during one run."""

    protocol: str = ""
    trace: str = ""
    seed: int = 0
    messages: Dict[int, MessageRecord] = field(default_factory=dict)
    detections: List[DetectionRecord] = field(default_factory=list)
    evicted_at: Dict[NodeId, float] = field(default_factory=dict)
    energy: Dict[NodeId, float] = field(default_factory=dict)
    memory_byte_seconds: Dict[NodeId, float] = field(default_factory=dict)
    heavy_hmac_runs: int = 0
    relay_attempts: int = 0
    test_phases: int = 0
    buffer_evictions: int = 0
    session_refusals: int = 0
    deviation_counts: Dict[NodeId, int] = field(default_factory=dict)
    events: Optional[object] = None  # EventLog when config.track_events
    first_deviation_expiry: Dict[NodeId, float] = field(default_factory=dict)
    # RunTelemetry snapshot attached by the engine at run end.  Like
    # ``events``, this is observability sidecar state: it rides on the
    # results object but is deliberately NOT part of the serialized
    # form (results_to_dict) — the bit-identical digest/golden contract
    # covers simulation outcomes only, and cache round-trips drop it.
    telemetry: Optional[Dict[str, Any]] = field(default=None, repr=False)

    # -- recording hooks (called by protocols / the engine) -----------

    def record_generated(self, message: Message) -> None:
        """Register a freshly generated message."""
        self.messages[message.msg_id] = MessageRecord(message=message)

    def record_replica(self, message: Message) -> None:
        """Count one hand-off of ``message`` to a new node."""
        self.messages[message.msg_id].replicas += 1

    def record_delivery(self, message: Message, now: float) -> None:
        """Record the first delivery of ``message`` (later ones ignored)."""
        record = self.messages[message.msg_id]
        if record.delivered_at is None:
            record.delivered_at = now

    def record_detection(self, record: DetectionRecord) -> None:
        """Register a PoM."""
        self.detections.append(record)

    def record_eviction(self, node: NodeId, now: float) -> None:
        """Register the removal of ``node`` from the network."""
        self.evicted_at.setdefault(node, now)

    def record_deviation(self, node: NodeId, message: Message) -> None:
        """Register that ``node`` deviated while handling ``message``.

        Tracks the Δ1-expiry of the *first* message each node deviated
        on — the anchor for offender-level detection delays (how long
        a node can misbehave before removal, discounting the inherent
        Δ1 window during which no test can happen).
        """
        self.deviation_counts[node] = self.deviation_counts.get(node, 0) + 1
        self.first_deviation_expiry.setdefault(node, message.expires_at)

    def add_energy(self, node: NodeId, joules: float) -> None:
        """Charge ``joules`` to ``node``."""
        self.energy[node] = self.energy.get(node, 0.0) + joules

    def add_memory(self, node: NodeId, byte_seconds: float) -> None:
        """Accumulate memory usage of ``node``."""
        self.memory_byte_seconds[node] = (
            self.memory_byte_seconds.get(node, 0.0) + byte_seconds
        )

    # -- derived metrics ----------------------------------------------

    @property
    def generated(self) -> int:
        """Number of generated messages."""
        return len(self.messages)

    @property
    def delivered(self) -> int:
        """Number of delivered messages."""
        return sum(1 for r in self.messages.values() if r.delivered)

    @property
    def success_rate(self) -> float:
        """Delivered / generated (0.0 for an empty run)."""
        return self.delivered / self.generated if self.generated else 0.0

    def delays(self) -> List[float]:
        """Delays of all delivered messages."""
        return [r.delay for r in self.messages.values() if r.delay is not None]

    @property
    def mean_delay(self) -> float:
        """Mean delivery delay (0.0 when nothing was delivered)."""
        delays = self.delays()
        return float(np.mean(delays)) if delays else 0.0

    @property
    def median_delay(self) -> float:
        """Median delivery delay (0.0 when nothing was delivered)."""
        delays = self.delays()
        return float(np.median(delays)) if delays else 0.0

    @property
    def cost(self) -> float:
        """Mean number of replicas per generated message."""
        if not self.messages:
            return 0.0
        return float(
            np.mean([r.replicas for r in self.messages.values()])
        )

    @property
    def total_energy(self) -> float:
        """Network-wide energy spend in joules."""
        return sum(self.energy.values())

    @property
    def total_memory_byte_seconds(self) -> float:
        """Network-wide memory usage integral."""
        return sum(self.memory_byte_seconds.values())

    # -- detection metrics --------------------------------------------

    def detected_offenders(self) -> Set[NodeId]:
        """Distinct nodes incriminated by at least one PoM."""
        return {d.offender for d in self.detections}

    def detection_rate(self, misbehaving: Sequence[NodeId]) -> float:
        """Fraction of ``misbehaving`` nodes detected during the run."""
        if not misbehaving:
            return 0.0
        detected = self.detected_offenders()
        return sum(1 for n in misbehaving if n in detected) / len(misbehaving)

    def first_detections(self) -> Dict[NodeId, DetectionRecord]:
        """Earliest PoM per offender."""
        first: Dict[NodeId, DetectionRecord] = {}
        for record in sorted(self.detections, key=lambda d: d.time):
            first.setdefault(record.offender, record)
        return first

    def mean_detection_delay(self) -> float:
        """Mean first-detection delay after Δ1 expiry (paper convention).

        Returns 0.0 when nothing was detected.
        """
        firsts = self.first_detections()
        if not firsts:
            return 0.0
        return float(
            np.mean([max(0.0, d.delay_after_ttl) for d in firsts.values()])
        )

    def offender_detection_delays(self) -> Dict[NodeId, float]:
        """Per-offender delay from first deviation to first conviction.

        Anchored at the Δ1-expiry of the first message the offender
        deviated on (before that instant no test phase can occur), and
        clamped at zero for detections that race the anchor — e.g. a
        liar convicted by a destination before the lied-about
        message's TTL ran out.
        """
        firsts = self.first_detections()
        delays: Dict[NodeId, float] = {}
        for offender, record in firsts.items():
            anchor = self.first_deviation_expiry.get(offender)
            if anchor is None:
                delays[offender] = max(0.0, record.delay_after_ttl)
            else:
                delays[offender] = max(0.0, record.time - anchor)
        return delays

    def mean_offender_detection_delay(self) -> float:
        """Mean of :meth:`offender_detection_delays` (0.0 if none)."""
        delays = list(self.offender_detection_delays().values())
        return float(np.mean(delays)) if delays else 0.0

    def false_positives(self, misbehaving: Sequence[NodeId]) -> Set[NodeId]:
        """Detected nodes that were in fact faithful.

        The protocols are designed so this is empty; tests assert it.
        """
        return self.detected_offenders() - set(misbehaving)

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline metrics (for tables/benchmarks)."""
        return {
            "generated": float(self.generated),
            "delivered": float(self.delivered),
            "success_rate": self.success_rate,
            "mean_delay": self.mean_delay,
            "median_delay": self.median_delay,
            "cost": self.cost,
            "detections": float(len(self.detections)),
            "total_energy": self.total_energy,
        }
