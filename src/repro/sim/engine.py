"""The simulation engine: drives a protocol over a contact source.

Usage::

    from repro.sim import Simulation, SimulationConfig
    from repro.protocols import EpidemicForwarding

    sim = Simulation(trace_window, EpidemicForwarding(), config)
    results = sim.run()

The engine is protocol-agnostic: it replays contact events and traffic
demands in time order and forwards them to the bound protocol; all
forwarding/testing/blacklisting logic lives in the protocol classes.

Ingestion goes through :class:`repro.traces.stream.ContactSource`: an
in-memory :class:`~repro.traces.trace.ContactTrace` is wrapped in the
bit-identical ``InMemorySource`` compatibility path, while streaming
sources (synthetic mega-traces, chunked files) are fed incrementally
into the event heap and get their :class:`NodeState` instantiated
lazily on first appearance — the engine's memory footprint follows the
set of *touched* nodes and in-flight events, not the trace size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # circular at runtime: protocols.base imports sim
    from ..protocols.base import (
        CommunityOracle,
        ForwardingProtocol,
        SimulationContext,
    )

from ..adversaries.base import HONEST, Strategy
from ..core.blacklist import BlacklistService, GossipBlacklist, InstantBlacklist
from ..perf import COUNTERS
from ..traces.stream import ContactSource, ensure_contact_source
from ..traces.trace import ContactTrace, NodeId
from .config import SimulationConfig
from .eventlog import EventLog, EventType
from .events import Event, EventKind, EventQueue, Scheduler
from .messages import Message
from .node import NodeState, RelaySpill, SpillPolicy
from .results import SimulationResults
from .traffic import PoissonTraffic

#: Scheduler tag of churn join/leave timers.
CHURN_TIMER_TAG = "sim.churn"


@dataclass(frozen=True)
class ChurnEvent:
    """One node-level churn transition.

    Attributes:
        time: simulation time of the transition.
        node: the node leaving or (re)joining.
        action: ``"leave"`` or ``"join"``.
    """

    time: float
    node: NodeId
    action: str

    def __post_init__(self) -> None:
        if self.action not in ("leave", "join"):
            raise ValueError(
                f"churn action must be 'leave' or 'join', got {self.action!r}"
            )


class ChurnService:
    """Timer owner applying churn transitions to node state.

    Departures drop the node's buffered relays through
    :meth:`NodeState.depart` (memory settled, TTL timers cancelled);
    rejoins restore participation with a fresh buffer.  Transitions
    ride the run scheduler as ``TIMER`` events, so they dispatch in
    the same deterministic global order as everything else.
    """

    def __init__(self, ctx: "SimulationContext") -> None:
        self.ctx = ctx
        self.departures = 0
        self.rejoins = 0

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        node_id, action = payload
        node = self.ctx.nodes[node_id]
        if action == "leave":
            if not node.departed and not node.evicted:
                node.depart(now, self.ctx.results)
                self.departures += 1
                self.ctx.events.log(now, EventType.DEPARTED, actor=node_id)
        else:
            if node.departed and not node.evicted:
                node.rejoin(now)
                self.rejoins += 1
                self.ctx.events.log(now, EventType.REJOINED, actor=node_id)


class _NodeTable(Dict[NodeId, NodeState]):
    """Node states created lazily on first access (streaming sources).

    A 1M-node universe must not materialize a million ``NodeState``
    objects up front; the table builds one the first time any event or
    protocol touches the node.  Creation is a pure function of the
    node id (strategy map lookup, optional spill attachment), so the
    lazy table is observationally identical to the eager dict for any
    access sequence.
    """

    def __init__(
        self,
        strategies: Mapping[NodeId, Strategy],
        spill: Optional[RelaySpill] = None,
        keep: int = 64,
    ) -> None:
        super().__init__()
        self._strategies = strategies
        self._spill = spill
        self._keep = keep

    def __missing__(self, node_id: NodeId) -> NodeState:
        node = NodeState(
            node_id=node_id,
            strategy=self._strategies.get(node_id, HONEST),
        )
        if self._spill is not None:
            node.enable_spill(self._spill, self._keep)
        self[node_id] = node
        return node


class Simulation:
    """One simulation run binding source + protocol + config + strategies.

    Args:
        trace: the (already windowed) contact trace, or any
            :class:`~repro.traces.stream.ContactSource`; its time
            origin is the run's time origin.
        protocol: a fresh protocol instance (not shared across runs).
        config: run parameters.
        strategies: per-node strategies; nodes absent from the map are
            honest.
        community: community oracle handed to the context (used by
            with-outsiders strategies and available to protocols).
        blacklist: PoM propagation service; defaults to instant or
            gossip according to ``config.instant_blacklist``.
        churn: optional join/leave schedule; each transition becomes a
            ``TIMER`` event on the run scheduler.
        energy_budgets: optional per-node energy budgets (joules);
            empty means the paper's unbounded-battery setting.
        spill: optional relay-index spill policy; bounds resident
            copies per node by demoting cold ones to a shared on-disk
            store (scale runs only — off by default).
    """

    def __init__(
        self,
        trace: Union[ContactTrace, ContactSource],
        protocol: "ForwardingProtocol",
        config: SimulationConfig,
        strategies: Optional[Dict[NodeId, Strategy]] = None,
        community: Optional["CommunityOracle"] = None,
        blacklist: Optional[BlacklistService] = None,
        churn: Optional[Sequence[ChurnEvent]] = None,
        energy_budgets: Optional[Mapping[NodeId, float]] = None,
        spill: Optional[SpillPolicy] = None,
    ) -> None:
        source = ensure_contact_source(trace, "Simulation")
        if source.num_nodes < 2:
            raise ValueError("simulation needs at least two nodes")
        self.source = source
        #: Backing in-memory trace when the source is materialized
        #: (the paper-scale path); ``None`` for streaming sources.
        self.trace = source.trace
        self.protocol = protocol
        self.config = config
        self.strategies = strategies or {}
        self.community = community
        self.churn = tuple(churn or ())
        self.energy_budgets = dict(energy_budgets or {})
        self.spill = spill
        universe = source.universe
        # ``range`` universes test membership in O(1); explicit node
        # tuples go through a set so the checks stay O(1) either way.
        known: Union[range, set] = (
            universe if isinstance(universe, range) else set(universe)
        )
        for transition in self.churn:
            if transition.node not in known:
                raise ValueError(
                    f"churn event for unknown node {transition.node}"
                )
        for node_id in self.energy_budgets:
            if node_id not in known:
                raise ValueError(
                    f"energy budget for unknown node {node_id}"
                )
        if blacklist is None:
            blacklist = (
                InstantBlacklist()
                if config.instant_blacklist
                else GossipBlacklist(
                    round_interval=config.blacklist_round_interval
                )
            )
        self.blacklist = blacklist
        self._active_spill: Optional[RelaySpill] = None

    def _build_context(self) -> "SimulationContext":
        from ..protocols.base import SimulationContext

        results = SimulationResults(
            protocol=self.protocol.name,
            trace=self.source.name,
            seed=self.config.seed,
        )
        spill: Optional[RelaySpill] = None
        if self.spill is not None:
            spill = RelaySpill(self.spill.path)
            self._active_spill = spill
        lazy = not self.source.materialized
        nodes: Dict[NodeId, NodeState]
        if lazy:
            nodes = _NodeTable(
                self.strategies,
                spill=spill,
                keep=self.spill.keep if self.spill is not None else 64,
            )
        else:
            nodes = {
                node_id: NodeState(
                    node_id=node_id,
                    strategy=self.strategies.get(node_id, HONEST),
                )
                for node_id in self.source.universe
            }
            if spill is not None:
                for node in nodes.values():
                    node.enable_spill(spill, self.spill.keep)  # type: ignore[union-attr]
        events = EventLog(enabled=self.config.track_events)
        results.events = events
        scheduler = Scheduler(
            EventQueue(),
            horizon=self.config.run_length,
            default_owner=self.protocol,
            events=events,
        )
        for node in nodes.values():
            node.attach_scheduler(scheduler)
        return SimulationContext(
            config=self.config,
            nodes=nodes,
            results=results,
            rng=random.Random(f"{self.config.seed}|protocol"),
            blacklist=self.blacklist,
            community=self.community,
            events=events,
            scheduler=scheduler,
            energy_budgets=dict(self.energy_budgets),
            lazy_nodes=lazy,
        )

    def run(self) -> SimulationResults:
        """Execute the run and return its metrics.

        Besides the simulation outcome, the run's telemetry snapshot
        (per-run perf-counter deltas, event-loop dispatch counts,
        protocol-phase spans) is attached as ``results.telemetry`` —
        observability only, never part of the serialized results.
        """
        ops_before = COUNTERS.snapshot()
        ctx = self._build_context()
        self.protocol.bind(ctx)

        scheduler = ctx.scheduler
        assert scheduler is not None  # _build_context always wires one
        queue = scheduler.queue
        horizon = self.config.run_length
        self.blacklist.on_run_start(scheduler, self.source.universe)
        budgeted = bool(self.energy_budgets)
        if self.churn:
            churn_service = ChurnService(ctx)
            for transition in self.churn:
                scheduler.schedule(
                    transition.time,
                    CHURN_TIMER_TAG,
                    payload=(transition.node, transition.action),
                    owner=churn_service,
                )
        # All contact ingestion rides the queue's stream feeder: a
        # materialized trace feeds its (already sorted) contact tuple
        # in the same order the old bulk load pushed it, a streaming
        # source never has more than its pending frontier on the heap.
        # Ends past the horizon are clamped to it by the feeder: a
        # contact still open at run end closes at run end.
        queue.attach_contacts(self.source.iter_contacts(), horizon=horizon)
        for demand in PoissonTraffic(self.source.universe, self.config).demands():
            queue.push(
                # g2g: allow(G2G012: pre-run queue seeding; EventQueue owns ordering)
                Event(
                    time=demand.time,
                    kind=EventKind.MESSAGE_GENERATION,
                    traffic=(demand.source, demand.destination),
                )
            )

        msg_counter = 0
        contact_starts = contact_ends = timer_events = 0
        for event in queue.drain():
            # g2g: allow(G2G012: horizon guard only — ordering (and ties) stay owned by sim/events.py)
            if event.time > horizon:  # defensive: everything is clamped
                break  # pragma: no cover
            now = event.time
            if event.kind == EventKind.CONTACT_START:
                contact_starts += 1
                contact = event.contact
                assert contact is not None
                pair = frozenset((contact.a, contact.b))
                ctx.active_contacts.add(pair)
                if budgeted:
                    ctx.check_energy(contact.a, now)
                    ctx.check_energy(contact.b, now)
                if ctx.usable_pair(contact.a, contact.b):
                    self.blacklist.on_contact(contact.a, contact.b, now)
                    self.protocol.on_contact_start(contact.a, contact.b, now)
            elif event.kind == EventKind.CONTACT_END:
                contact_ends += 1
                contact = event.contact
                assert contact is not None
                ctx.active_contacts.discard(frozenset((contact.a, contact.b)))
                self.protocol.on_contact_end(contact.a, contact.b, now)
            elif event.kind == EventKind.TIMER:
                timer_events += 1
                assert event.timer is not None
                scheduler.fire(event.timer, now)
            else:
                assert event.traffic is not None
                source, destination = event.traffic
                if not ctx.nodes[source].participating:
                    continue  # evicted/departed/depleted: out of the system
                message = Message(
                    msg_id=msg_counter,
                    source=source,
                    destination=destination,
                    created_at=now,
                    ttl=self.config.ttl,
                    size_bytes=self.config.message_size,
                )
                msg_counter += 1
                ctx.results.record_generated(message)
                ctx.events.log(
                    now, EventType.GENERATED, msg_id=message.msg_id,
                    actor=source, subject=destination,
                )
                self.protocol.on_message_generated(message, now)

        self.protocol.finalize(horizon)
        if self._active_spill is not None:
            self._active_spill.close()
            self._active_spill = None
        ctx.telemetry.finalize_run(
            COUNTERS.diff(ops_before),
            {
                "contact_starts": contact_starts,
                "contact_ends": contact_ends,
                "timer_events": timer_events,
                "generations": msg_counter,
            },
            ctx.results,
        )
        ctx.results.telemetry = ctx.telemetry.snapshot()
        return ctx.results


def run_simulation(
    trace: Union[ContactTrace, ContactSource],
    protocol: "ForwardingProtocol",
    config: SimulationConfig,
    strategies: Optional[Dict[NodeId, Strategy]] = None,
    community: Optional["CommunityOracle"] = None,
) -> SimulationResults:
    """One-shot convenience wrapper around :class:`Simulation`."""
    return Simulation(
        trace, protocol, config, strategies=strategies, community=community
    ).run()
