"""The simulation engine: drives a protocol over a contact trace.

Usage::

    from repro.sim import Simulation, SimulationConfig
    from repro.protocols import EpidemicForwarding

    sim = Simulation(trace_window, EpidemicForwarding(), config)
    results = sim.run()

The engine is protocol-agnostic: it replays contact events and traffic
demands in time order and forwards them to the bound protocol; all
forwarding/testing/blacklisting logic lives in the protocol classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence

if TYPE_CHECKING:  # circular at runtime: protocols.base imports sim
    from ..protocols.base import (
        CommunityOracle,
        ForwardingProtocol,
        SimulationContext,
    )

from ..adversaries.base import HONEST, Strategy
from ..core.blacklist import BlacklistService, GossipBlacklist, InstantBlacklist
from ..perf import COUNTERS
from ..traces.trace import ContactTrace, NodeId
from .config import SimulationConfig
from .eventlog import EventLog, EventType
from .events import Event, EventKind, EventQueue, Scheduler
from .messages import Message
from .node import NodeState
from .results import SimulationResults
from .traffic import PoissonTraffic

#: Scheduler tag of churn join/leave timers.
CHURN_TIMER_TAG = "sim.churn"


@dataclass(frozen=True)
class ChurnEvent:
    """One node-level churn transition.

    Attributes:
        time: simulation time of the transition.
        node: the node leaving or (re)joining.
        action: ``"leave"`` or ``"join"``.
    """

    time: float
    node: NodeId
    action: str

    def __post_init__(self) -> None:
        if self.action not in ("leave", "join"):
            raise ValueError(
                f"churn action must be 'leave' or 'join', got {self.action!r}"
            )


class ChurnService:
    """Timer owner applying churn transitions to node state.

    Departures drop the node's buffered relays through
    :meth:`NodeState.depart` (memory settled, TTL timers cancelled);
    rejoins restore participation with a fresh buffer.  Transitions
    ride the run scheduler as ``TIMER`` events, so they dispatch in
    the same deterministic global order as everything else.
    """

    def __init__(self, ctx: "SimulationContext") -> None:
        self.ctx = ctx
        self.departures = 0
        self.rejoins = 0

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        node_id, action = payload
        node = self.ctx.nodes[node_id]
        if action == "leave":
            if not node.departed and not node.evicted:
                node.depart(now, self.ctx.results)
                self.departures += 1
                self.ctx.events.log(now, EventType.DEPARTED, actor=node_id)
        else:
            if node.departed and not node.evicted:
                node.rejoin(now)
                self.rejoins += 1
                self.ctx.events.log(now, EventType.REJOINED, actor=node_id)


class Simulation:
    """One simulation run binding trace + protocol + config + strategies.

    Args:
        trace: the (already windowed) contact trace; its time origin is
            the run's time origin.
        protocol: a fresh protocol instance (not shared across runs).
        config: run parameters.
        strategies: per-node strategies; nodes absent from the map are
            honest.
        community: community oracle handed to the context (used by
            with-outsiders strategies and available to protocols).
        blacklist: PoM propagation service; defaults to instant or
            gossip according to ``config.instant_blacklist``.
        churn: optional join/leave schedule; each transition becomes a
            ``TIMER`` event on the run scheduler.
        energy_budgets: optional per-node energy budgets (joules);
            empty means the paper's unbounded-battery setting.
    """

    def __init__(
        self,
        trace: ContactTrace,
        protocol: "ForwardingProtocol",
        config: SimulationConfig,
        strategies: Optional[Dict[NodeId, Strategy]] = None,
        community: Optional["CommunityOracle"] = None,
        blacklist: Optional[BlacklistService] = None,
        churn: Optional[Sequence[ChurnEvent]] = None,
        energy_budgets: Optional[Mapping[NodeId, float]] = None,
    ) -> None:
        if trace.num_nodes < 2:
            raise ValueError("simulation needs at least two nodes")
        self.trace = trace
        self.protocol = protocol
        self.config = config
        self.strategies = strategies or {}
        self.community = community
        self.churn = tuple(churn or ())
        self.energy_budgets = dict(energy_budgets or {})
        known = set(trace.nodes)
        for transition in self.churn:
            if transition.node not in known:
                raise ValueError(
                    f"churn event for unknown node {transition.node}"
                )
        for node_id in self.energy_budgets:
            if node_id not in known:
                raise ValueError(
                    f"energy budget for unknown node {node_id}"
                )
        if blacklist is None:
            blacklist = (
                InstantBlacklist()
                if config.instant_blacklist
                else GossipBlacklist(
                    round_interval=config.blacklist_round_interval
                )
            )
        self.blacklist = blacklist

    def _build_context(self) -> "SimulationContext":
        from ..protocols.base import SimulationContext

        results = SimulationResults(
            protocol=self.protocol.name,
            trace=self.trace.name,
            seed=self.config.seed,
        )
        nodes = {
            node_id: NodeState(
                node_id=node_id,
                strategy=self.strategies.get(node_id, HONEST),
            )
            for node_id in self.trace.nodes
        }
        events = EventLog(enabled=self.config.track_events)
        results.events = events
        scheduler = Scheduler(
            EventQueue(),
            horizon=self.config.run_length,
            default_owner=self.protocol,
            events=events,
        )
        for node in nodes.values():
            node.attach_scheduler(scheduler)
        return SimulationContext(
            config=self.config,
            nodes=nodes,
            results=results,
            rng=random.Random(f"{self.config.seed}|protocol"),
            blacklist=self.blacklist,
            community=self.community,
            events=events,
            scheduler=scheduler,
            energy_budgets=dict(self.energy_budgets),
        )

    def run(self) -> SimulationResults:
        """Execute the run and return its metrics.

        Besides the simulation outcome, the run's telemetry snapshot
        (per-run perf-counter deltas, event-loop dispatch counts,
        protocol-phase spans) is attached as ``results.telemetry`` —
        observability only, never part of the serialized results.
        """
        ops_before = COUNTERS.snapshot()
        ctx = self._build_context()
        self.protocol.bind(ctx)

        scheduler = ctx.scheduler
        assert scheduler is not None  # _build_context always wires one
        queue = scheduler.queue
        horizon = self.config.run_length
        self.blacklist.on_run_start(scheduler, self.trace.nodes)
        budgeted = bool(self.energy_budgets)
        if self.churn:
            churn_service = ChurnService(ctx)
            for transition in self.churn:
                scheduler.schedule(
                    transition.time,
                    CHURN_TIMER_TAG,
                    payload=(transition.node, transition.action),
                    owner=churn_service,
                )
        for contact in self.trace.contacts:
            if contact.start >= horizon:
                continue
            # Ends past the horizon are clamped to it: a contact still
            # open at run end closes at run end (the pre-scheduler loop
            # broke at the first event past the horizon instead, so
            # straddling contacts never received on_contact_end).
            queue.push_contact(contact, horizon=horizon)
        for demand in PoissonTraffic(self.trace.nodes, self.config).demands():
            queue.push(
                # g2g: allow(G2G012: pre-run queue seeding; EventQueue owns ordering)
                Event(
                    time=demand.time,
                    kind=EventKind.MESSAGE_GENERATION,
                    traffic=(demand.source, demand.destination),
                )
            )

        msg_counter = 0
        contact_starts = contact_ends = timer_events = 0
        for event in queue.drain():
            # g2g: allow(G2G012: horizon guard only — ordering (and ties) stay owned by sim/events.py)
            if event.time > horizon:  # defensive: everything is clamped
                break  # pragma: no cover
            now = event.time
            if event.kind == EventKind.CONTACT_START:
                contact_starts += 1
                contact = event.contact
                assert contact is not None
                pair = frozenset((contact.a, contact.b))
                ctx.active_contacts.add(pair)
                if budgeted:
                    ctx.check_energy(contact.a, now)
                    ctx.check_energy(contact.b, now)
                if ctx.usable_pair(contact.a, contact.b):
                    self.blacklist.on_contact(contact.a, contact.b, now)
                    self.protocol.on_contact_start(contact.a, contact.b, now)
            elif event.kind == EventKind.CONTACT_END:
                contact_ends += 1
                contact = event.contact
                assert contact is not None
                ctx.active_contacts.discard(frozenset((contact.a, contact.b)))
                self.protocol.on_contact_end(contact.a, contact.b, now)
            elif event.kind == EventKind.TIMER:
                timer_events += 1
                assert event.timer is not None
                scheduler.fire(event.timer, now)
            else:
                assert event.traffic is not None
                source, destination = event.traffic
                if not ctx.nodes[source].participating:
                    continue  # evicted/departed/depleted: out of the system
                message = Message(
                    msg_id=msg_counter,
                    source=source,
                    destination=destination,
                    created_at=now,
                    ttl=self.config.ttl,
                    size_bytes=self.config.message_size,
                )
                msg_counter += 1
                ctx.results.record_generated(message)
                ctx.events.log(
                    now, EventType.GENERATED, msg_id=message.msg_id,
                    actor=source, subject=destination,
                )
                self.protocol.on_message_generated(message, now)

        self.protocol.finalize(horizon)
        ctx.telemetry.finalize_run(
            COUNTERS.diff(ops_before),
            {
                "contact_starts": contact_starts,
                "contact_ends": contact_ends,
                "timer_events": timer_events,
                "generations": msg_counter,
            },
            ctx.results,
        )
        ctx.results.telemetry = ctx.telemetry.snapshot()
        return ctx.results


def run_simulation(
    trace: ContactTrace,
    protocol: "ForwardingProtocol",
    config: SimulationConfig,
    strategies: Optional[Dict[NodeId, Strategy]] = None,
    community: Optional["CommunityOracle"] = None,
) -> SimulationResults:
    """One-shot convenience wrapper around :class:`Simulation`."""
    return Simulation(
        trace, protocol, config, strategies=strategies, community=community
    ).run()
