"""JSON archival of simulation results.

Long sweeps are expensive; archiving per-run results lets analyses be
re-cut without re-simulating. The format is stable, versioned, and
human-greppable: headline metrics plus full per-message and
per-detection records.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .messages import Message
from .results import DetectionRecord, MessageRecord, SimulationResults

#: Format version; bump on breaking layout changes.
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def results_to_dict(results: SimulationResults) -> dict:
    """Serializable dict form of one run's results."""
    return {
        "format_version": FORMAT_VERSION,
        "protocol": results.protocol,
        "trace": results.trace,
        "seed": results.seed,
        "summary": results.summary(),
        "messages": [
            {
                "msg_id": record.message.msg_id,
                "source": record.message.source,
                "destination": record.message.destination,
                "created_at": record.message.created_at,
                "ttl": record.message.ttl,
                "size_bytes": record.message.size_bytes,
                "delivered_at": record.delivered_at,
                "replicas": record.replicas,
            }
            for record in results.messages.values()
        ],
        "detections": [
            {
                "offender": d.offender,
                "detector": d.detector,
                "time": d.time,
                "msg_id": d.msg_id,
                "deviation": d.deviation,
                "delay_after_ttl": d.delay_after_ttl,
            }
            for d in results.detections
        ],
        "evicted_at": {str(k): v for k, v in results.evicted_at.items()},
        "energy": {str(k): v for k, v in results.energy.items()},
        "memory_byte_seconds": {
            str(k): v for k, v in results.memory_byte_seconds.items()
        },
        "counters": {
            "heavy_hmac_runs": results.heavy_hmac_runs,
            "relay_attempts": results.relay_attempts,
            "test_phases": results.test_phases,
            "buffer_evictions": results.buffer_evictions,
            "session_refusals": results.session_refusals,
        },
        "first_deviation_expiry": {
            str(k): v for k, v in results.first_deviation_expiry.items()
        },
        "deviation_counts": {
            str(k): v for k, v in results.deviation_counts.items()
        },
    }


def results_from_dict(data: dict) -> SimulationResults:
    """Rebuild :class:`SimulationResults` from its dict form.

    Raises:
        ValueError: on unknown format versions.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    results = SimulationResults(
        protocol=data["protocol"], trace=data["trace"], seed=data["seed"]
    )
    for entry in data["messages"]:
        message = Message(
            msg_id=entry["msg_id"],
            source=entry["source"],
            destination=entry["destination"],
            created_at=entry["created_at"],
            ttl=entry["ttl"],
            size_bytes=entry["size_bytes"],
        )
        record = MessageRecord(
            message=message,
            delivered_at=entry["delivered_at"],
            replicas=entry["replicas"],
        )
        results.messages[message.msg_id] = record
    for entry in data["detections"]:
        results.detections.append(DetectionRecord(**entry))
    results.evicted_at = {
        int(k): v for k, v in data["evicted_at"].items()
    }
    results.energy = {int(k): v for k, v in data["energy"].items()}
    results.memory_byte_seconds = {
        int(k): v for k, v in data["memory_byte_seconds"].items()
    }
    counters = data["counters"]
    results.heavy_hmac_runs = counters["heavy_hmac_runs"]
    results.relay_attempts = counters["relay_attempts"]
    results.test_phases = counters["test_phases"]
    results.buffer_evictions = counters["buffer_evictions"]
    results.session_refusals = counters.get("session_refusals", 0)
    results.first_deviation_expiry = {
        int(k): v for k, v in data["first_deviation_expiry"].items()
    }
    results.deviation_counts = {
        int(k): v for k, v in data["deviation_counts"].items()
    }
    return results


def save_results(results: SimulationResults, path: PathLike) -> None:
    """Write results as JSON."""
    Path(path).write_text(
        json.dumps(results_to_dict(results), indent=1, sort_keys=True)
    )


def load_results(path: PathLike) -> SimulationResults:
    """Read results written by :func:`save_results`."""
    return results_from_dict(json.loads(Path(path).read_text()))
