"""Forwarding-quality cheaters.

"Selfish nodes can change the forwarding quality of the message to
zero, in such a way to get rid of the message soon — they would be
able to relay it to the first two nodes they meet." (Sec. VI)
In the experiments "cheaters are those who lower the quality rate
within a message to be relayed (in order to get rid of it as soon as
possible)" (Sec. VII).

Cheating is only rational in the G2G variant (in vanilla Delegation a
lower label means *more* forwarding work for the cheater, Sec. VII),
so the experiment harness only pairs cheaters with G2G Delegation.
"""

from __future__ import annotations

from .base import Strategy


class Cheater(Strategy):
    """Lowers the quality label of every message it relays to zero."""

    name = "cheater"
    deviates = True

    def forwarded_message_quality(self, node, message, true_value, peer, now):
        return 0.0
