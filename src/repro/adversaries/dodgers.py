"""Test-dodging droppers.

Sec. IV-C of the paper: "Note that it is not a rational strategy to
shut off the radio every time node B meets node A in such a way to
avoid the test phase.  Indeed, in this case node B will not receive
other messages destined to itself ... Therefore, node B would
experience a reduced quality of the service that makes its payoff
drop."

The :class:`Dodger` makes that argument measurable: it drops every
relayed message (like a :class:`~repro.adversaries.droppers.Dropper`)
*and* refuses to open sessions with any peer it still owes a test
answer to.  The `test_nash_equilibrium` benchmark and the dodger
integration tests quantify what the refusals cost.
"""

from __future__ import annotations

from .droppers import Dropper


class Dodger(Dropper):
    """Drops relayed messages and ducks the peers that could test it."""

    name = "dodger"
    deviates = True

    def accept_session(self, node, peer, now, pending_givers):
        return peer not in pending_givers
