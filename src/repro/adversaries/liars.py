"""Forwarding-quality liars.

"Nodes can lie on their forwarding quality.  They can claim that their
quality is zero ... these nodes would get their messages served without
participating actively." (Sec. VI)  In the experiments "liars are
those who report a forwarding quality equal to 0 any time they're
asked to" (Sec. VII).
"""

from __future__ import annotations

from .base import Strategy


class Liar(Strategy):
    """Always declares forwarding quality zero."""

    name = "liar"
    deviates = True

    def declared_quality(self, node, destination, true_value, peer, now):
        return 0.0
