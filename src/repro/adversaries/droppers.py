"""Message droppers.

"Message droppers — nodes that use the system to send and receive
messages and that just drop every message they happen to relay."
(Sec. V)  Droppers participate in relay phases normally (they cannot
profitably refuse: the destination is hidden until after the proof of
relay is signed) and discard the copy immediately afterwards.
"""

from __future__ import annotations

from .base import Strategy


class Dropper(Strategy):
    """Drops every relayed message right after the relay phase."""

    name = "dropper"
    deviates = True

    def keep_relayed_copy(self, node, message, giver, now):
        return False
