"""Adversary strategies: droppers, liars, cheaters, and variants."""

from .base import HONEST, OutsiderConditioned, Strategy
from .cheaters import Cheater
from .dodgers import Dodger
from .droppers import Dropper
from .factory import DEVIATIONS, make_strategy, strategy_population
from .liars import Liar

__all__ = [
    "Cheater",
    "DEVIATIONS",
    "Dodger",
    "Dropper",
    "HONEST",
    "Liar",
    "OutsiderConditioned",
    "Strategy",
    "make_strategy",
    "strategy_population",
]
