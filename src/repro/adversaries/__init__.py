"""Adversary strategies: droppers, liars, cheaters, and variants."""

from .base import HONEST, OutsiderConditioned, Strategy
from .cheaters import Cheater
from .dodgers import Dodger
from .droppers import Dropper
from .factory import (
    DEVIATIONS,
    make_strategy,
    mix_counts,
    mixed_population,
    population_from_roles,
    strategy_population,
    validate_kind,
)
from .liars import Liar

__all__ = [
    "Cheater",
    "DEVIATIONS",
    "Dodger",
    "Dropper",
    "HONEST",
    "Liar",
    "OutsiderConditioned",
    "Strategy",
    "make_strategy",
    "mix_counts",
    "mixed_population",
    "population_from_roles",
    "strategy_population",
    "validate_kind",
]
