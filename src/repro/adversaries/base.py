"""Node strategies: the honest baseline and the deviation hook points.

The paper's game-theoretic analysis enumerates the *rational* ways a
selfish node can deviate: dropping relayed messages (Sec. V), lying
about forwarding quality, and cheating on a carried message's quality
label (Sec. VI).  Rather than forking the protocols per adversary, the
protocols consult a per-node :class:`Strategy` at exactly the decision
points where deviation is possible:

* :meth:`Strategy.keep_relayed_copy` — right after the relay phase
  completes (the dropper's moment);
* :meth:`Strategy.declared_quality` — when asked for a forwarding
  quality (the liar's moment, step 9 of Fig. 6);
* :meth:`Strategy.forwarded_message_quality` — when labelling a
  message about to be relayed (the cheater's moment, step 10).

Every hook receives the *peer* of the ongoing session so that
"selfish with outsiders" variants (Sec. V-A) can deviate only against
members of other communities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..traces.trace import NodeId

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..sim.messages import Message


class Strategy:
    """The honest (protocol-faithful) strategy.

    Subclasses override individual hooks; anything not overridden
    behaves faithfully.  The ``deviates`` flag marks strategies the
    experiment harness should count as misbehaving when computing
    detection rates.
    """

    #: short label used in experiment tables.
    name: str = "honest"
    #: True for strategies that deviate from the protocol.
    deviates: bool = False

    def accept_session(
        self,
        node: NodeId,
        peer: NodeId,
        now: float,
        pending_givers: frozenset,
    ) -> bool:
        """Decide whether to open a session with ``peer`` at all.

        The paper argues refusing sessions ("shut off the radio every
        time node B meets node A") to dodge a test phase is irrational
        because the refuser also forfeits messages destined to itself
        (Sec. IV-C).  ``pending_givers`` contains the peers this node
        still owes proof-or-storage for — the information a dodger
        would act on.  Honest nodes always accept.
        """
        return True

    def keep_relayed_copy(
        self,
        node: NodeId,
        message: "Message",
        giver: Optional[NodeId],
        now: float,
    ) -> bool:
        """Decide whether to keep a copy received as a *relay*.

        Called after the relay phase has fully completed (the proof of
        relay is already signed — exactly when the paper's droppers
        strike).  Never called when the node is the destination: a
        message for yourself is always kept.

        Returns:
            True to keep the copy (honest), False to drop it.
        """
        return True

    def declared_quality(
        self,
        node: NodeId,
        destination: NodeId,
        true_value: float,
        peer: NodeId,
        now: float,
    ) -> float:
        """The forwarding quality reported in an FQ_RESP.

        Honest nodes report ``true_value`` (the quality from the last
        completed timeframe).  Liars claim zero.
        """
        return true_value

    def forwarded_message_quality(
        self,
        node: NodeId,
        message: "Message",
        true_value: float,
        peer: NodeId,
        now: float,
    ) -> float:
        """The quality label attached to a message being relayed.

        Honest nodes propagate the true label; cheaters lower it so
        the first nodes they meet qualify as relays.
        """
        return true_value


#: Singleton honest strategy shared by all faithful nodes.
HONEST = Strategy()


class OutsiderConditioned(Strategy):
    """Wrapper making any deviation apply only against outsiders.

    "Nodes that are selfish with outsiders deviate from the protocol
    only in sessions with nodes from other communities." (Sec. V-A)

    The community oracle is injected by the experiment harness (a
    :class:`repro.social.CommunityMap` or a ground-truth assignment
    exposing ``same_community``).
    """

    def __init__(self, inner: Strategy, community) -> None:
        if not inner.deviates:
            raise ValueError("wrapping an honest strategy is pointless")
        self._inner = inner
        self._community = community
        self.name = f"{inner.name}_with_outsiders"
        self.deviates = True

    def _outsider(self, node: NodeId, peer: Optional[NodeId]) -> bool:
        """True when ``peer`` is outside ``node``'s community."""
        if peer is None:
            return False
        return not self._community.same_community(node, peer)

    def keep_relayed_copy(self, node, message, giver, now):
        if self._outsider(node, giver):
            return self._inner.keep_relayed_copy(node, message, giver, now)
        return True

    def declared_quality(self, node, destination, true_value, peer, now):
        if self._outsider(node, peer):
            return self._inner.declared_quality(
                node, destination, true_value, peer, now
            )
        return true_value

    def forwarded_message_quality(self, node, message, true_value, peer, now):
        if self._outsider(node, peer):
            return self._inner.forwarded_message_quality(
                node, message, true_value, peer, now
            )
        return true_value
