"""Assembling per-node strategy maps for experiments.

An experiment needs "N misbehaving nodes of kind K, everyone else
honest".  :func:`strategy_population` draws the misbehaving subset
reproducibly and wires up the outsider-conditioned variants with a
community oracle when requested.

Mixed populations (the scenario campaigns' bread and butter) go
through :func:`mixed_population`: several deviation kinds at once,
each a *fraction* of the node population, rounded by largest
remainder and placed from a single seed-derived shuffle so that

* the same seed always produces the same assignment,
* every assigned count is within one node of ``fraction * n``,
* no node ever carries two roles, and
* a kind with fraction 0.0 is exactly equivalent to leaving that
  kind out (the shuffle consumes no draws for empty slices).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Mapping, Sequence, Tuple

from ..traces.trace import NodeId
from .base import HONEST, OutsiderConditioned, Strategy
from .cheaters import Cheater
from .dodgers import Dodger
from .droppers import Dropper
from .liars import Liar

#: Registry of deviation kinds by their experiment-table names.
DEVIATIONS: Dict[str, Callable[[], Strategy]] = {
    "dropper": Dropper,
    "liar": Liar,
    "cheater": Cheater,
    "dodger": Dodger,
}


def validate_kind(kind: str) -> Tuple[str, bool]:
    """Parse and validate a deviation-kind name.

    Returns:
        ``(base_kind, with_outsiders)``.

    Raises:
        KeyError: on unknown kinds.
    """
    base_kind = kind
    with_outsiders = kind.endswith("_with_outsiders")
    if with_outsiders:
        base_kind = kind[: -len("_with_outsiders")]
    if base_kind not in DEVIATIONS:
        raise KeyError(
            f"unknown deviation {kind!r}; expected one of "
            f"{sorted(DEVIATIONS)} (optionally + '_with_outsiders')"
        )
    return base_kind, with_outsiders


def make_strategy(kind: str, community=None) -> Strategy:
    """Instantiate a deviation strategy by name.

    Args:
        kind: "dropper", "liar", or "cheater"; append
            "_with_outsiders" for the community-conditioned variant
            (requires ``community``).
        community: oracle with ``same_community(a, b)``; required for
            the with-outsiders variants.

    Raises:
        KeyError: on unknown kinds.
        ValueError: if a with-outsiders kind lacks a community oracle.
    """
    base_kind, with_outsiders = validate_kind(kind)
    strategy = DEVIATIONS[base_kind]()
    if with_outsiders:
        if community is None:
            raise ValueError(
                f"{kind!r} requires a community oracle"
            )
        strategy = OutsiderConditioned(strategy, community)
    return strategy


def population_from_roles(
    nodes: Sequence[NodeId],
    roles: Mapping[NodeId, str],
    community=None,
) -> Dict[NodeId, Strategy]:
    """Build a full strategy map from an explicit node -> kind map.

    Nodes absent from ``roles`` share the
    :data:`~repro.adversaries.base.HONEST` singleton.  This is the one
    construction path every population helper funnels through, so a
    run can carry any role structure — single-kind, mixed, hand-built.

    Raises:
        KeyError: on unknown kinds.
        ValueError: if a role names a node outside ``nodes``, or a
            with-outsiders kind lacks a community oracle.
    """
    population = set(nodes)
    strategies: Dict[NodeId, Strategy] = {n: HONEST for n in nodes}
    for node, kind in roles.items():
        if node not in population:
            raise ValueError(
                f"role for node {node!r} which is not in the population"
            )
        strategies[node] = make_strategy(kind, community)
    return strategies


def mix_counts(n: int, mix: Mapping[str, float]) -> Dict[str, int]:
    """Largest-remainder rounding of a fraction mix over ``n`` nodes.

    Kinds with fraction 0.0 are dropped entirely; the remaining
    quotas ``fraction * n`` are floored and the leftover units (so the
    total matches the rounded sum of quotas) go to the largest
    fractional remainders, ties broken by kind name.  Every count is
    within one of its quota.

    Raises:
        KeyError: on unknown kinds.
        ValueError: on negative fractions or a mix summing above 1.
    """
    total_fraction = 0.0
    quotas: Dict[str, float] = {}
    for kind, fraction in mix.items():
        validate_kind(kind)
        if fraction < 0:
            raise ValueError(f"negative fraction for {kind!r}: {fraction}")
        if fraction == 0.0:
            continue
        quotas[kind] = fraction * n
        total_fraction += fraction
    if total_fraction > 1.0 + 1e-9:
        raise ValueError(
            f"mix fractions sum to {total_fraction:.3f} > 1"
        )
    counts = {kind: math.floor(quota) for kind, quota in quotas.items()}
    leftover = round(sum(quotas.values())) - sum(counts.values())
    by_remainder = sorted(
        quotas,
        key=lambda kind: (-(quotas[kind] - counts[kind]), kind),
    )
    for kind in by_remainder[:leftover]:
        counts[kind] += 1
    return counts


def mixed_population(
    nodes: Sequence[NodeId],
    mix: Mapping[str, float],
    seed: int,
    community=None,
) -> Tuple[Dict[NodeId, Strategy], Dict[str, Tuple[NodeId, ...]]]:
    """Build a strategy map for a mixed adversary population.

    Args:
        mix: deviation kind -> fraction of the population (0.0 entries
            are ignored; fractions must sum to at most 1).
        seed: master seed; the placement draws from a dedicated
            ``"{seed}|adversaries|mix"`` stream, independent of the
            kinds requested, so assignments are comparable across mix
            variants at equal seeds.
        community: oracle for the with-outsiders variants.

    Returns:
        ``(strategies, roles)`` — the full per-node map and, per kind,
        the sorted tuple of nodes playing it.  Kinds whose fraction
        rounded to zero nodes appear with an empty tuple; 0.0-fraction
        kinds are absent.
    """
    counts = mix_counts(len(nodes), mix)
    rng = random.Random(f"{seed}|adversaries|mix")
    order = rng.sample(sorted(nodes), len(nodes))
    roles: Dict[str, Tuple[NodeId, ...]] = {}
    node_roles: Dict[NodeId, str] = {}
    offset = 0
    for kind in sorted(counts):
        members = tuple(sorted(order[offset:offset + counts[kind]]))
        offset += counts[kind]
        roles[kind] = members
        for node in members:
            node_roles[node] = kind
    strategies = population_from_roles(nodes, node_roles, community)
    return strategies, roles


def strategy_population(
    nodes: Sequence[NodeId],
    kind: str,
    count: int,
    seed: int,
    community=None,
) -> Tuple[Dict[NodeId, Strategy], Tuple[NodeId, ...]]:
    """Build a strategy map with ``count`` deviating nodes.

    The deviating subset is sampled uniformly from ``nodes`` with a
    dedicated RNG stream so it is stable across protocol variants at
    equal seeds (the paper compares protocols on identical adversary
    placements).

    Returns:
        ``(strategies, misbehaving)`` — a full per-node map (honest
        nodes share the :data:`~repro.adversaries.base.HONEST`
        singleton) and the sorted tuple of deviating node ids.

    Raises:
        ValueError: if ``count`` exceeds the population size.
    """
    if count < 0 or count > len(nodes):
        raise ValueError(
            f"cannot place {count} deviating nodes among {len(nodes)}"
        )
    rng = random.Random(f"{seed}|adversaries|{kind}")
    misbehaving = tuple(sorted(rng.sample(list(nodes), count)))
    strategies = population_from_roles(
        nodes, {node: kind for node in misbehaving}, community
    )
    return strategies, misbehaving
