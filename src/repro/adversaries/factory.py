"""Assembling per-node strategy maps for experiments.

An experiment needs "N misbehaving nodes of kind K, everyone else
honest".  :func:`strategy_population` draws the misbehaving subset
reproducibly and wires up the outsider-conditioned variants with a
community oracle when requested.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Sequence, Tuple

from ..traces.trace import NodeId
from .base import HONEST, OutsiderConditioned, Strategy
from .cheaters import Cheater
from .dodgers import Dodger
from .droppers import Dropper
from .liars import Liar

#: Registry of deviation kinds by their experiment-table names.
DEVIATIONS: Dict[str, Callable[[], Strategy]] = {
    "dropper": Dropper,
    "liar": Liar,
    "cheater": Cheater,
    "dodger": Dodger,
}


def make_strategy(kind: str, community=None) -> Strategy:
    """Instantiate a deviation strategy by name.

    Args:
        kind: "dropper", "liar", or "cheater"; append
            "_with_outsiders" for the community-conditioned variant
            (requires ``community``).
        community: oracle with ``same_community(a, b)``; required for
            the with-outsiders variants.

    Raises:
        KeyError: on unknown kinds.
        ValueError: if a with-outsiders kind lacks a community oracle.
    """
    base_kind = kind
    with_outsiders = kind.endswith("_with_outsiders")
    if with_outsiders:
        base_kind = kind[: -len("_with_outsiders")]
    if base_kind not in DEVIATIONS:
        raise KeyError(
            f"unknown deviation {kind!r}; expected one of "
            f"{sorted(DEVIATIONS)} (optionally + '_with_outsiders')"
        )
    strategy = DEVIATIONS[base_kind]()
    if with_outsiders:
        if community is None:
            raise ValueError(
                f"{kind!r} requires a community oracle"
            )
        strategy = OutsiderConditioned(strategy, community)
    return strategy


def strategy_population(
    nodes: Sequence[NodeId],
    kind: str,
    count: int,
    seed: int,
    community=None,
) -> Tuple[Dict[NodeId, Strategy], Tuple[NodeId, ...]]:
    """Build a strategy map with ``count`` deviating nodes.

    The deviating subset is sampled uniformly from ``nodes`` with a
    dedicated RNG stream so it is stable across protocol variants at
    equal seeds (the paper compares protocols on identical adversary
    placements).

    Returns:
        ``(strategies, misbehaving)`` — a full per-node map (honest
        nodes share the :data:`~repro.adversaries.base.HONEST`
        singleton) and the sorted tuple of deviating node ids.

    Raises:
        ValueError: if ``count`` exceeds the population size.
    """
    if count < 0 or count > len(nodes):
        raise ValueError(
            f"cannot place {count} deviating nodes among {len(nodes)}"
        )
    rng = random.Random(f"{seed}|adversaries|{kind}")
    misbehaving = tuple(sorted(rng.sample(list(nodes), count)))
    strategies: Dict[NodeId, Strategy] = {n: HONEST for n in nodes}
    for node in misbehaving:
        strategies[node] = make_strategy(kind, community)
    return strategies, misbehaving
