"""Give2Get: incentive-compatible forwarding for pocket switched networks.

A from-scratch reproduction of Mei & Stefa, *"Give2Get: Forwarding in
Social Mobile Wireless Networks of Selfish Individuals"* (ICDCS 2010):
the G2G Epidemic and G2G Delegation forwarding protocols, the vanilla
baselines, a contact-trace-driven DTN simulator, synthetic stand-ins
for the CRAWDAD evaluation traces, the dropper/liar/cheater adversary
models, and a harness regenerating every table and figure of the
paper's evaluation.

Quickstart — the :mod:`repro.api` facade is the blessed entry point::

    from repro import api

    results = api.run(trace="infocom05", protocol="g2g_epidemic", seed=7)
    print(f"delivered {results.success_rate:.0%} at cost {results.cost:.1f}")

    points = api.sweep(
        trace="cambridge06", protocol="g2g_epidemic",
        counts=(0, 5, 10), adversary="dropper", workers=4,
    )

The lower-level entry points (:class:`Simulation`,
:func:`run_simulation`, ``repro.experiments.run_point``) stay public
and supported — the facade wraps them — but new code should go through
``repro.api``; its surface is pinned by ``tests/test_public_api.py``.

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
paper-vs-measured record, and docs/observability.md for the run
telemetry the facade can export.
"""

from . import api

from .adversaries import (
    Cheater,
    Dodger,
    Dropper,
    Liar,
    OutsiderConditioned,
    Strategy,
    make_strategy,
    strategy_population,
)
from .core import (
    G2GDelegationForwarding,
    G2GEpidemicForwarding,
    GossipBlacklist,
    InstantBlacklist,
    ProofOfMisbehavior,
)
from .protocols import (
    DelegationForwarding,
    EpidemicForwarding,
    ForwardingProtocol,
)
from .sim import (
    Message,
    Simulation,
    SimulationConfig,
    SimulationResults,
    config_for,
    run_simulation,
)
from .social import CommunityMap
from .telemetry import MetricsRegistry, RunTelemetry, TelemetryCollector
from .traces import (
    Contact,
    ContactTrace,
    cambridge06,
    infocom05,
    load_trace,
    standard_window,
    trace_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "Cheater",
    "CommunityMap",
    "Dodger",
    "Contact",
    "ContactTrace",
    "DelegationForwarding",
    "Dropper",
    "EpidemicForwarding",
    "ForwardingProtocol",
    "G2GDelegationForwarding",
    "G2GEpidemicForwarding",
    "GossipBlacklist",
    "InstantBlacklist",
    "Liar",
    "Message",
    "MetricsRegistry",
    "OutsiderConditioned",
    "ProofOfMisbehavior",
    "RunTelemetry",
    "Simulation",
    "SimulationConfig",
    "SimulationResults",
    "Strategy",
    "TelemetryCollector",
    "api",
    "cambridge06",
    "config_for",
    "infocom05",
    "load_trace",
    "make_strategy",
    "run_simulation",
    "standard_window",
    "strategy_population",
    "trace_by_name",
    "__version__",
]
