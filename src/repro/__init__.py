"""Give2Get: incentive-compatible forwarding for pocket switched networks.

A from-scratch reproduction of Mei & Stefa, *"Give2Get: Forwarding in
Social Mobile Wireless Networks of Selfish Individuals"* (ICDCS 2010):
the G2G Epidemic and G2G Delegation forwarding protocols, the vanilla
baselines, a contact-trace-driven DTN simulator, synthetic stand-ins
for the CRAWDAD evaluation traces, the dropper/liar/cheater adversary
models, and a harness regenerating every table and figure of the
paper's evaluation.

Quickstart::

    from repro import (
        Simulation, SimulationConfig, G2GEpidemicForwarding,
        infocom05, standard_window,
    )

    synthetic = infocom05()
    trace = standard_window(synthetic).slice(synthetic.trace)
    config = SimulationConfig(ttl=30 * 60.0, seed=7)
    results = Simulation(trace, G2GEpidemicForwarding(), config).run()
    print(f"delivered {results.success_rate:.0%} at cost {results.cost:.1f}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .adversaries import (
    Cheater,
    Dodger,
    Dropper,
    Liar,
    OutsiderConditioned,
    Strategy,
    make_strategy,
    strategy_population,
)
from .core import (
    G2GDelegationForwarding,
    G2GEpidemicForwarding,
    GossipBlacklist,
    InstantBlacklist,
    ProofOfMisbehavior,
)
from .protocols import (
    DelegationForwarding,
    EpidemicForwarding,
    ForwardingProtocol,
)
from .sim import (
    Message,
    Simulation,
    SimulationConfig,
    SimulationResults,
    config_for,
    run_simulation,
)
from .social import CommunityMap
from .traces import (
    Contact,
    ContactTrace,
    cambridge06,
    infocom05,
    load_trace,
    standard_window,
    trace_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "Cheater",
    "CommunityMap",
    "Dodger",
    "Contact",
    "ContactTrace",
    "DelegationForwarding",
    "Dropper",
    "EpidemicForwarding",
    "ForwardingProtocol",
    "G2GDelegationForwarding",
    "G2GEpidemicForwarding",
    "GossipBlacklist",
    "InstantBlacklist",
    "Liar",
    "Message",
    "OutsiderConditioned",
    "ProofOfMisbehavior",
    "Simulation",
    "SimulationConfig",
    "SimulationResults",
    "Strategy",
    "cambridge06",
    "config_for",
    "infocom05",
    "load_trace",
    "make_strategy",
    "run_simulation",
    "standard_window",
    "strategy_population",
    "trace_by_name",
    "__version__",
]
