"""Shared machinery of the Give2Get protocols.

Both G2G Epidemic and G2G Delegation are built from the same parts
(Sections IV and VI of the paper):

* **message generation** — the source seals the body to the
  destination's public key and signs the result; relays see the
  destination but never the sender;
* **the relay phase** — the 5-step signed handshake of Fig. 1 (with
  the quality negotiation of Fig. 6 in the delegation variant),
  ending in a Proof of Relay signed by the taker;
* **the give-2 rule** — every holder forwards to at most
  ``config.relay_fanout`` (= 2) other nodes, then may discard the
  body, keeping the proofs until Δ2;
* **the test phase** — when the *source* of a message re-meets one of
  its direct relays in the window (Δ1, Δ2], it demands either the two
  proofs of relay or a heavy-HMAC storage proof; failure yields a
  Proof of Misbehavior, broadcast through the blacklist service.

Subclasses plug in the relay admission rule (epidemic: "has not seen
it"; delegation: the quality negotiation) and the extra checks
(delegation: the cheater chain check in the test by the sender and
the liar check in the test by the destination).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..adversaries.base import Strategy
from ..crypto.keys import Authority, Certificate, NodeIdentity
from ..crypto.provider import CryptoProvider
from ..crypto.tiers import make_provider
from ..perf.counters import COUNTERS
from ..protocols.base import ForwardingProtocol, SimulationContext, make_room
from ..sim.eventlog import EventType
from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..sim.results import DetectionRecord
from ..telemetry.spans import (
    SPAN_DESTINATION_TEST,
    SPAN_POM,
    SPAN_RELAY_HANDSHAKE,
    SPAN_SENDER_TEST,
)
from ..traces.trace import NodeId
from .blacklist import ProofOfMisbehavior
from .proofs import (
    make_proof_of_relay,
    make_storage_proof,
    open_message,
    random_seed,
    seal_message,
    verify_proof_of_relay,
    verify_proofs_of_relay,
    verify_storage_proof,
)
from .wire import CONTROL_MESSAGE_SIZE, ProofOfRelay, SealedMessage

#: A per-node deadline queue: a sorted ``array('d')`` of deadlines and
#: the parallel list of message ids, maintained with ``bisect``.  The
#: Δ2 purges used to be one scheduler timer per stored copy / audit
#: record; the deadlines are observationally transparent (every read
#: of the purged state is already guarded by the Δ2 window), so they
#: now live in these arrays and are drained at the owning node's next
#: contact — removing two scheduler events per hand-off from the run
#: without changing any observable output.
DeadlineQueue = Tuple[array, List[int]]


def _new_deadline_queue() -> DeadlineQueue:
    """A fresh empty deadline queue (lazy per-node map factory)."""
    return (array("d"), [])


class _LazyIdentities(Dict[NodeId, NodeIdentity]):
    """Identities enrolled on first touch (streaming universes).

    Keypairs draw from the provider's shared seeded RNG, so key
    material depends on enrollment order — first-touch order here,
    which is itself a deterministic function of the event stream.
    Streaming runs are therefore reproducible seed-for-seed; only the
    materialized path keeps the historical universe-order enrollment
    (that order is baked into the goldens).
    """

    def __init__(self, authority: Authority) -> None:
        super().__init__()
        self._authority = authority

    def __missing__(self, node_id: NodeId) -> NodeIdentity:
        identity = self._authority.enroll(node_id)
        self[node_id] = identity
        return identity


class _LazyMap(Dict[NodeId, Any]):
    """Per-node state created on first touch (streaming universes)."""

    def __init__(self, factory: Any) -> None:
        super().__init__()
        self._factory = factory

    def __missing__(self, node_id: NodeId) -> Any:
        value = self._factory()
        self[node_id] = value
        return value


def _enqueue_deadline(
    queue: DeadlineQueue, deadline: float, msg_id: int
) -> None:
    """Insert one (deadline, msg_id) entry keeping the queue sorted.

    Deadlines arrive in near-sorted order (message creation times are
    monotone within a run), so the ``bisect`` lands at or near the end
    and the insert is effectively an append.
    """
    times, ids = queue
    index = bisect_right(times, deadline)
    times.insert(index, deadline)
    ids.insert(index, msg_id)


@dataclass
class RelayPlan:
    """Outcome of the pre-relay negotiation for one (copy, taker) pair.

    ``None`` from :meth:`Give2GetBase._negotiate` means "do not relay";
    otherwise this bundle parameterizes the hand-off.
    """

    quality_subject: Optional[NodeId] = None
    message_quality: Optional[float] = None
    taker_quality: Optional[float] = None
    new_copy_quality: float = 0.0
    attachments: List[Any] = field(default_factory=list)
    declaration: Any = None


#: The all-defaults plan of the unconditional (epidemic) negotiation,
#: built once and shared by every hand-off.  Strictly read-only: the
#: relay path copies ``attachments`` before storing and never writes a
#: plan field, so one instance can parameterize 40k+ relays without
#: 40k dataclass constructions.
ACCEPT_PLAN = RelayPlan()


@dataclass
class _SourceRecord:
    """What a giver remembers about a message it handed out.

    In the paper only the *source* keeps (and acts on) this record —
    the test phase "is started only by the source of the message".
    The ``testers="any_giver"`` ablation also creates records at
    intermediate relays; ``is_source`` keeps the source-only duties
    (embedding failed declarations) from leaking to relays.
    """

    message: Message
    is_source: bool = True
    takers: List[NodeId] = field(default_factory=list)
    tested: Set[NodeId] = field(default_factory=set)
    # Delegation: taker -> the quality declaration given at hand-off.
    taker_declarations: Dict[NodeId, Any] = field(default_factory=dict)
    # Delegation: signed declarations of candidates that failed.
    failed_declarations: List[Any] = field(default_factory=list)


class Give2GetBase(ForwardingProtocol):
    """Common implementation of the two Give2Get protocols.

    Args:
        provider: crypto provider — an instance, a tier name from
            :data:`repro.crypto.tiers.PROVIDER_TIERS` (``"real"`` /
            ``"simulated"`` / ``"accounting"``), or None for the fast
            simulated default.  Named tiers are constructed at
            :meth:`bind` time over the run's seeded ``ctx.rng``.
        testers: who initiates test phases.  ``"source"`` (default) is
            the paper's protocol — only the message source audits its
            direct relays, which is what makes testing incentive-
            compatible.  ``"any_giver"`` has every relay audit its own
            takers too; it is NOT a Nash equilibrium (relays gain
            nothing from spending energy on tests) and exists purely
            as an ablation of detection speed vs audit effort.
    """

    family = "epidemic"

    TESTER_MODES = ("source", "any_giver")

    def __init__(
        self,
        provider: Union[None, str, CryptoProvider] = None,
        testers: str = "source",
    ) -> None:
        super().__init__()
        if testers not in self.TESTER_MODES:
            raise ValueError(
                f"testers must be one of {self.TESTER_MODES}, got {testers!r}"
            )
        self._provider = provider
        self.testers = testers

    def use_provider(self, provider: Union[str, CryptoProvider]) -> None:
        """Select the crypto provider before the run binds the protocol.

        The hook behind ``api.run(provider=...)`` and the CLI's
        ``--provider``: catalog factories take no arguments, so the
        facade constructs the protocol first and injects the provider
        choice here.  Must be called before :meth:`bind`.
        """
        if hasattr(self, "provider"):
            raise RuntimeError("use_provider must be called before bind()")
        self._provider = provider

    # -- lifecycle ------------------------------------------------------

    def bind(self, ctx: SimulationContext) -> None:
        super().bind(ctx)
        provider = self._provider
        if provider is None:
            provider = "simulated"
        if isinstance(provider, str):
            provider = make_provider(provider, ctx.rng)
        self.provider = provider
        self.authority = Authority(provider)
        self.identities: Dict[NodeId, NodeIdentity]
        if ctx.lazy_nodes:
            # Streaming universe: enrolling a million identities up
            # front is exactly the materialization the lazy node table
            # avoids.  Enroll on first touch instead; see
            # _LazyIdentities for the determinism contract.
            self.identities = _LazyIdentities(self.authority)
        else:
            # Eager path: enrollment draws authority RNG state in
            # universe order — part of the bit-identical contract for
            # materialized traces.
            self.identities = {
                node_id: self.authority.enroll(node_id)
                for node_id in ctx.nodes
            }
        self.heavy_hmac = provider.heavy_hmac(ctx.config.heavy_hmac_iterations)
        self._sealed: Dict[int, SealedMessage] = {}
        self._wire_bytes: Dict[int, bytes] = {}
        self._hash: Dict[int, bytes] = {}
        self._sources: Dict[NodeId, Dict[int, _SourceRecord]] = (
            _LazyMap(dict) if ctx.lazy_nodes
            else {node_id: {} for node_id in ctx.nodes}
        )
        # Housekeeping deadlines: every store enqueues ``created_at +
        # Δ2`` on the owning node's deadline queue.  Record purges
        # apply when the queue drains (nothing reads a record past its
        # window); buffer purges drop the copy at the node's next
        # contact with ``deadline < now`` — exactly when the old
        # per-contact sweep (and the timer-based design after it)
        # dropped it, which is what keeps the memory byte-second
        # integral (and the golden results) bit-identical.
        self._purge_queues: Dict[NodeId, DeadlineQueue] = (
            _LazyMap(_new_deadline_queue) if ctx.lazy_nodes
            else {node_id: (array("d"), []) for node_id in ctx.nodes}
        )
        self._record_queues: Dict[NodeId, DeadlineQueue] = (
            _LazyMap(_new_deadline_queue) if ctx.lazy_nodes
            else {node_id: (array("d"), []) for node_id in ctx.nodes}
        )
        # Hot-loop constants: per-run invariants read on every relay.
        config = ctx.config
        energy = config.energy
        self._delta2 = config.delta2
        self._relay_fanout = config.relay_fanout
        self._source_fanout = (
            float("inf") if config.source_fanout is None
            else config.source_fanout
        )
        self._sig_cost = energy.signature
        self._ver_cost = energy.verification
        self._bounded_buffers = config.buffer_capacity is not None
        # Scenario runs only: with per-node budgets configured, every
        # exchange is followed by a depletion check.  False (the
        # paper's unbounded-battery setting) keeps the hot path free
        # of budget lookups.
        self._budgeted = bool(ctx.energy_budgets)
        # (transfer, receive) joules per on-air size; message sizes are
        # per-run constants so this dict stays tiny.
        self._xfer_costs: Dict[int, Tuple[float, float]] = {}

    # -- event hooks ----------------------------------------------------

    def on_message_generated(self, message: Message, now: float) -> None:
        source = self.ctx.node(message.source)
        identity = self.identities[message.source]
        destination_cert = self.identities[message.destination].certificate
        body = b"payload-%d" % message.msg_id
        sealed = seal_message(identity, destination_cert, message.msg_id, body)
        self._sealed[message.msg_id] = sealed
        wire = sealed.wire_bytes()
        self._wire_bytes[message.msg_id] = wire
        self._hash[message.msg_id] = sealed.content_hash()
        self._charge_signature(message.source)
        if self._budgeted:
            self.ctx.check_energy(message.source, now)
        self._sources[message.source][message.msg_id] = _SourceRecord(
            message=message
        )
        source.store(
            StoredCopy(message=message, received_at=now,
                       quality=self._initial_quality(message, now)),
            now,
            self.ctx.results,
        )
        purge_at = message.created_at + self._delta2
        _enqueue_deadline(self._purge_queues[message.source], purge_at,
                          message.msg_id)
        _enqueue_deadline(self._record_queues[message.source], purge_at,
                          message.msg_id)
        for peer in list(self.ctx.active_neighbors(message.source)):
            if self.ctx.usable_pair(message.source, peer):
                self._offer(source, self.ctx.node(peer), now)

    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        # Advance timers strictly before ``now`` for direct-driven
        # harnesses; a no-op under the engine loop.
        self.ctx.flush_timers(now)
        node_a, node_b = self.ctx.node(a), self.ctx.node(b)
        self._apply_ripe_purges(node_a, now)
        self._apply_ripe_purges(node_b, now)
        # Session establishment: a selfish node may refuse ("shut off
        # the radio") to dodge a test phase — forfeiting everything the
        # contact would have carried, including its own messages.
        if not (
            node_a.strategy.accept_session(
                a, b, now, self._pending_givers_for(node_a, now)
            )
            and node_b.strategy.accept_session(
                b, a, now, self._pending_givers_for(node_b, now)
            )
        ):
            self.ctx.results.session_refusals += 1
            return
        # Test phases first: a pending test settles accounts before new
        # relays open between the same two nodes.
        self._run_tests(node_a, node_b, now)
        if node_a.participating and node_b.participating:
            self._run_tests(node_b, node_a, now)
        for giver, taker in ((node_a, node_b), (node_b, node_a)):
            if not (giver.participating and taker.participating):
                continue
            self._offer(giver, taker, now)

    def _pending_givers_for(self, node: NodeState, now: float) -> frozenset:
        """``_pending_givers``, skipped for strategies that ignore it.

        The base :meth:`Strategy.accept_session` accepts
        unconditionally without reading ``pending_givers``, so the
        O(taken-messages) exposure scan is only worth computing for
        strategies that override the hook (the test dodgers).  The
        scan's only side effect is garbage-collecting expired ``taken``
        entries — pure bookkeeping nothing else reads — so skipping it
        for honest nodes is behavior-neutral.
        """
        if type(node.strategy).accept_session is Strategy.accept_session:
            return frozenset()
        return self._pending_givers(node, now)

    def _pending_givers(self, node: NodeState, now: float) -> frozenset:
        """Peers this node could not answer a test from right now.

        Derived from the messages the node took (it knows its givers)
        whose Δ2 window is still open and for which it holds neither
        two proofs nor the body — the exact exposure a test-dodging
        strategy would act on.  Honest nodes always have an answer, so
        their set is empty.
        """
        taken = node.extra.get("taken")
        if not taken:
            return frozenset()
        COUNTERS.pending_scans += 1
        fanout = self.ctx.config.relay_fanout
        pending = set()
        for msg_id, (giver, deadline) in list(taken.items()):
            if now > deadline:
                del taken[msg_id]
                continue
            copy = node.buffer.get(msg_id)
            if copy is None:
                pending.add(giver)
            elif copy.body_dropped and len(copy.proofs) < fanout:
                pending.add(giver)  # pragma: no cover - defensive
        return frozenset(pending)

    def finalize(self, now: float) -> None:
        super().finalize(now)

    # -- subclass hooks ---------------------------------------------------

    def _initial_quality(self, message: Message, now: float) -> float:
        """Quality label of a freshly generated message (delegation)."""
        return 0.0

    def _negotiate(
        self,
        giver: NodeState,
        taker: NodeState,
        copy: StoredCopy,
        now: float,
    ) -> Optional[RelayPlan]:
        """Decide whether and how to relay ``copy`` to ``taker``.

        The epidemic base relays unconditionally (the seen-check ran
        already); delegation overrides with the quality negotiation.
        """
        return ACCEPT_PLAN

    def _after_relay(
        self,
        giver: NodeState,
        record: Optional[_SourceRecord],
        taker: NodeState,
        plan: RelayPlan,
        declaration: Any,
        now: float,
    ) -> None:
        """Source-side bookkeeping after a successful relay (delegation)."""

    def _chain_violation(
        self,
        record: _SourceRecord,
        taker: NodeId,
        proofs: List[Any],
        now: float,
    ) -> Optional[Any]:
        """Cheater check over the two PoRs (delegation only).

        Returns the incriminating evidence, or None when clean.
        """
        return None

    def _on_delivered(
        self, taker: NodeState, copy_attachments: List[Any], message: Message,
        now: float,
    ) -> None:
        """Destination-side processing (delegation: the liar test)."""

    # -- the relay phase --------------------------------------------------

    def _offer(self, giver: NodeState, taker: NodeState, now: float) -> None:
        """Try to relay every eligible copy of ``giver`` to ``taker``.

        The candidate scan excludes messages the taker has already
        handled (step 1's RELAY_RQST answered in bulk against the
        taker's ``seen`` set), so the signed relay phase only starts
        for hand-offs that can actually happen.  Candidate order is
        the giver's buffer insertion order — identical to the
        pre-index full-buffer filter, keeping RNG draws in the same
        order and the run bit-identical.
        """
        candidates = giver.relay_candidates(now, taker.seen)
        if not candidates:
            return
        giver_id = giver.node_id
        relay_fanout = self._relay_fanout
        source_fanout = self._source_fanout
        # Collect-then-verify: each hand-off appends its PoR here and
        # the whole offer is checked with one batched provider call
        # below.  Deferring is sound because nothing in the loop reads
        # the verification outcome — within the threat model signatures
        # are unforgeable, so an honest taker's PoR cannot fail — while
        # the giver's per-relay verification *energy* is still charged
        # inline, in protocol-step order (see ``_relay_one``).
        pending: List[Tuple[Certificate, ProofOfRelay]] = []
        for copy in candidates:
            cap = (
                source_fanout
                if copy.message.source == giver_id
                else relay_fanout
            )
            if len(copy.relays) >= cap:
                continue
            # ``participating`` unrolled (it is a property, and two
            # property calls per candidate are measurable here).
            if (
                giver.evicted or giver.departed or giver.depleted
                or taker.evicted or taker.departed or taker.depleted
            ):
                break
            self._relay_one(giver, taker, copy, now, pending)
            if self._budgeted:
                ctx = self.ctx
                ctx.check_energy(giver_id, now)
                ctx.check_energy(taker.node_id, now)
        if pending and not verify_proofs_of_relay(
            self.identities[giver_id], pending
        ):  # pragma: no cover - honest takers always produce valid PoRs
            raise RuntimeError(
                "proof-of-relay batch failed verification: a signature "
                "was forged, which the simulation's threat model forbids"
            )

    def _fanout_cap(self, giver: NodeState, copy: StoredCopy) -> float:
        """Relay cap for this holder: give-2 for relays, wider for the
        source ("the first two (at least) nodes it meets")."""
        config = self.ctx.config
        if copy.message.source == giver.node_id:
            cap = config.source_fanout
            return float("inf") if cap is None else cap
        return config.relay_fanout

    def _relay_one(
        self,
        giver: NodeState,
        taker: NodeState,
        copy: StoredCopy,
        now: float,
        pending: Optional[List[Tuple[Certificate, ProofOfRelay]]] = None,
    ) -> bool:
        """Run the full relay phase for one copy; True on hand-off.

        With ``pending`` (the batched path driven by :meth:`_offer`)
        the giver's PoR check is appended there and verified in one
        provider call per offer; without it (direct callers, unit
        tests) the PoR verifies inline exactly as before.
        """
        ctx = self.ctx
        results = ctx.results
        events = ctx.events
        message = copy.message
        msg_id = message.msg_id
        giver_id = giver.node_id
        taker_id = taker.node_id
        identities = self.identities
        COUNTERS.relay_entries += 1
        # Step 1-2: RELAY_RQST / RELAY_OK.  The honest answer to "have
        # you handled H(m)?" — declining without knowing the
        # destination is never rational (Sec. IV-C), so every strategy
        # answers truthfully.  (The offer scan pre-filters against the
        # taker's seen set; this guard keeps direct callers safe.)
        if msg_id in taker.seen:
            return False
        plan = self._negotiate(giver, taker, copy, now)
        if plan is None:
            return False
        declaration = plan.declaration
        results.relay_attempts += 1
        # The handshake span covers steps 3-5 (body transfer, PoR,
        # key reveal); negotiation rejections above never open one.
        spans = ctx.telemetry.spans
        relay_span = spans.begin(now)
        # Step 3: RELAY, E_k(m) — the body crosses the air.
        results.record_replica(message)
        size = message.size_bytes + CONTROL_MESSAGE_SIZE
        costs = self._xfer_costs.get(size)
        if costs is None:
            energy = ctx.config.energy
            costs = self._xfer_costs[size] = (
                energy.transfer_cost(size), energy.receive_cost(size)
            )
        # Charges stay separate and in protocol-step order: folding
        # them would change float accumulation order and break
        # bit-identical energy totals.  The per-node ledger updates
        # are inlined (``results.add_energy`` unrolled): four charges
        # per hand-off make the call overhead itself measurable.
        energy_acct = results.energy
        energy_get = energy_acct.get
        energy_acct[giver_id] = energy_get(giver_id, 0.0) + costs[0]
        energy_acct[taker_id] = energy_get(taker_id, 0.0) + costs[1]
        # Step 4: the taker signs the Proof of Relay.
        taker_identity = identities[taker_id]
        por = make_proof_of_relay(
            taker_identity,
            self._hash[msg_id],
            giver_id,
            now,
            quality_subject=plan.quality_subject,
            message_quality=plan.message_quality,
            taker_quality=plan.taker_quality,
        )
        energy_acct[taker_id] = energy_get(taker_id, 0.0) + self._sig_cost
        if pending is not None:
            pending.append((taker_identity.certificate, por))
        elif not verify_proof_of_relay(
            identities[giver_id],
            taker_identity.certificate,
            por,
        ):  # pragma: no cover - honest takers always produce valid PoRs
            return False
        energy_acct[giver_id] = energy_get(giver_id, 0.0) + self._ver_cost
        copy.proofs.append(por)
        copy.relays.append(taker_id)
        if (
            message.source != giver_id
            and len(copy.relays) >= self._relay_fanout
        ):
            # Two proofs collected: the body may be discarded; the
            # proofs stay until Δ2.  The source keeps its own message
            # (it is never tested and wants it delivered).
            giver.drop_body(msg_id, now, results)
        record = self._sources[giver_id].get(msg_id)
        if record is None and self.testers == "any_giver":
            # Ablation mode: intermediate relays also keep audit
            # records for the messages they hand out.
            record = _SourceRecord(message=message, is_source=False)
            self._sources[giver_id][msg_id] = record
            _enqueue_deadline(
                self._record_queues[giver_id],
                message.created_at + self._delta2,
                msg_id,
            )
        if record is not None:
            record.takers.append(taker_id)
        self._after_relay(giver, record, taker, plan, declaration, now)
        # Step 5: the key is revealed; the taker learns whether it is
        # the destination.
        if events.enabled:
            events.log(
                now, EventType.RELAYED, msg_id=msg_id,
                actor=giver_id, subject=taker_id,
            )
        if taker_id == message.destination:
            source_id, opened_id, _body = open_message(
                identities[taker_id], self._sealed[msg_id]
            )
            assert (source_id, opened_id) == (message.source, msg_id)
            taker.seen.add(msg_id)
            results.record_delivery(message, now)
            if events.enabled:
                events.log(
                    now, EventType.DELIVERED, msg_id=msg_id,
                    actor=giver_id, subject=taker_id,
                )
            dest_span = spans.begin(now)
            self._on_delivered(taker, plan.attachments, message, now)
            spans.end(SPAN_DESTINATION_TEST, dest_span, now)
            COUNTERS.relay_handoffs += 1
            spans.end(SPAN_RELAY_HANDSHAKE, relay_span, now)
            return True
        # "Label both messages with the forwarding quality of node B":
        # the giver's surviving copy adopts the taker's declared
        # quality (a no-op for the epidemic variant).
        copy.quality = plan.new_copy_quality
        if self._bounded_buffers:
            make_room(ctx, taker, now)
        taker.store(
            StoredCopy(
                message=message,
                received_at=now,
                received_from=giver_id,
                quality=plan.new_copy_quality,
                attachments=list(plan.attachments),
            ),
            now,
            results,
        )
        # The taker remembers who gave it what, and until when it can
        # be tested — the knowledge both honest bookkeeping and a
        # test-dodging strategy operate on.
        purge_at = message.created_at + self._delta2
        taken = taker.extra.get("taken")
        if taken is None:
            taken = taker.extra["taken"] = {}
        taken[msg_id] = (giver_id, purge_at)
        _enqueue_deadline(self._purge_queues[taker_id], purge_at, msg_id)
        COUNTERS.relay_handoffs += 1
        keep = taker.strategy.keep_relayed_copy(
            taker_id, message, giver_id, now
        )
        if not keep:
            taker.drop(msg_id, now, results)
            results.record_deviation(taker_id, message)
            if events.enabled:
                events.log(
                    now, EventType.DROPPED, msg_id=msg_id,
                    actor=taker_id, subject=giver_id,
                )
        spans.end(SPAN_RELAY_HANDSHAKE, relay_span, now)
        return True

    # -- the test phase ---------------------------------------------------

    def _run_tests(
        self, source: NodeState, peer: NodeState, now: float
    ) -> None:
        """Test ``peer`` for every message ``source`` handed it directly.

        Only the source initiates tests (relays cannot know whether
        their giver was the source, so they must always be ready, but
        nobody else spends energy checking — the paper's key asymmetry).
        """
        if not (source.participating and peer.participating):
            return
        records = self._sources[source.node_id]
        if not records:
            return
        delta2 = self._delta2
        peer_id = peer.node_id
        for record in records.values():
            message = record.message
            if peer_id == message.destination:
                continue  # the source knows D; a delivery is never tested
            if peer_id not in record.takers:
                continue
            if peer_id in record.tested:
                continue
            if now <= message.expires_at:
                continue  # the test window opens at Δ1
            if now > message.created_at + delta2:
                continue  # the window closed; the relay may have purged
            record.tested.add(peer.node_id)
            spans = self.ctx.telemetry.spans
            test_span = spans.begin(now)
            self._test_one(source, peer, record, now)
            spans.end(SPAN_SENDER_TEST, test_span, now)
            if self._budgeted:
                self.ctx.check_energy(source.node_id, now)
                self.ctx.check_energy(peer_id, now)
                if not source.participating:
                    return
            if not peer.participating:
                return

    def _test_one(
        self,
        source: NodeState,
        peer: NodeState,
        record: _SourceRecord,
        now: float,
    ) -> None:
        """One challenge: two PoRs, a storage proof, or a PoM."""
        ctx = self.ctx
        results = ctx.results
        message = record.message
        results.test_phases += 1
        copy = peer.buffer.get(message.msg_id)
        proofs = list(copy.proofs) if copy is not None else []
        source_identity = self.identities[source.node_id]
        if len(proofs) >= ctx.config.relay_fanout:
            # The handshake choke point of the test phase: both PoRs
            # check in one batched provider call.
            valid = verify_proofs_of_relay(
                source_identity,
                [
                    (self.identities[por.taker].certificate, por)
                    for por in proofs
                ],
            )
            for _ in proofs:
                self._charge_verification(source.node_id)
            if not valid:  # pragma: no cover - unforgeable in-model
                self._issue_pom(
                    peer.node_id, source.node_id, message, "dropper",
                    proofs, now,
                )
                return
            evidence = self._chain_violation(
                record, peer.node_id, proofs, now
            )
            if evidence is not None:
                self._issue_pom(
                    peer.node_id, source.node_id, message, "cheater",
                    evidence, now,
                )
            else:
                ctx.events.log(
                    now, EventType.TEST_PASSED, msg_id=message.msg_id,
                    actor=source.node_id, subject=peer.node_id,
                    detail="proofs_of_relay",
                )
            return
        if copy is not None and not copy.body_dropped:
            # Storage challenge: the relay proves it still holds the
            # bytes by computing the heavy HMAC over them.
            seed = random_seed(ctx.rng)
            proof = make_storage_proof(
                self.identities[peer.node_id],
                self._hash[message.msg_id],
                self._wire_bytes[message.msg_id],
                seed,
                self.heavy_hmac,
            )
            results.heavy_hmac_runs += 1
            results.add_energy(peer.node_id, ctx.config.energy.heavy_hmac)
            self._charge_signature(peer.node_id)
            ok = verify_storage_proof(
                source_identity,
                self.identities[peer.node_id].certificate,
                proof,
                self._wire_bytes[message.msg_id],
                self.heavy_hmac,
            )
            results.add_energy(source.node_id, ctx.config.energy.heavy_hmac)
            if not ok:  # pragma: no cover - honest storage always verifies
                self._issue_pom(
                    peer.node_id, source.node_id, message, "dropper",
                    None, now,
                )
            else:
                ctx.events.log(
                    now, EventType.TEST_PASSED, msg_id=message.msg_id,
                    actor=source.node_id, subject=peer.node_id,
                    detail="storage_challenge",
                )
            return
        # Neither proofs nor the message: the taker dropped it.  The
        # PoR it signed during the relay phase is the evidence.
        self._issue_pom(
            peer.node_id, source.node_id, message, "dropper", None, now
        )

    # -- misbehavior handling ----------------------------------------------

    def _issue_pom(
        self,
        offender: NodeId,
        detector: NodeId,
        message: Message,
        deviation: str,
        evidence: Any,
        now: float,
    ) -> None:
        """Create, record, and broadcast a Proof of Misbehavior."""
        ctx = self.ctx
        spans = ctx.telemetry.spans
        pom_span = spans.begin(now)
        pom = ProofOfMisbehavior(
            offender=offender,
            detector=detector,
            msg_id=message.msg_id,
            deviation=deviation,
            issued_at=now,
            evidence=evidence,
        )
        ctx.blacklist.publish(pom)
        ctx.events.log(
            now, EventType.TEST_FAILED, msg_id=message.msg_id,
            actor=detector, subject=offender, detail=deviation,
        )
        ctx.events.log(
            now, EventType.POM, msg_id=message.msg_id,
            actor=detector, subject=offender, detail=deviation,
        )
        ctx.results.record_detection(
            DetectionRecord(
                offender=offender,
                detector=detector,
                time=now,
                msg_id=message.msg_id,
                deviation=deviation,
                delay_after_ttl=now - message.expires_at,
            )
        )
        if ctx.config.instant_blacklist:
            ctx.evict(offender, now)
        spans.end(SPAN_POM, pom_span, now)

    # -- housekeeping -------------------------------------------------------

    def _apply_ripe_purges(self, node: NodeState, now: float) -> None:
        """Drain the node's ripe Δ2 deadlines (copies and records).

        Both queues pop strictly-``deadline < now`` entries, which is
        exactly the set the timer-based design applied at this moment:
        a timer at ``created_at + Δ2`` sorted after every contact at
        the same instant, so a contact at exactly the deadline still
        saw the pre-purge state.  Entries for messages dropped earlier
        (strategy drops, body discards, evictions) are simply skipped
        — the buffer stays authoritative, the queue only schedules the
        look.  A message id never re-enters a node's buffer (``seen``
        forbids re-taking), so one entry per store suffices.  Record
        removal is unobservable by construction: every read of a
        source record is guarded by its Δ2 window.
        """
        node_id = node.node_id
        times, ids = self._purge_queues[node_id]
        if times and times[0] < now:
            COUNTERS.housekeeping_scans += 1
            count = bisect_left(times, now)
            results = self.ctx.results
            buffer = node.buffer
            for msg_id in ids[:count]:
                if msg_id in buffer:
                    node.drop(msg_id, now, results)
            del times[:count]
            del ids[:count]
        times, ids = self._record_queues[node_id]
        if times and times[0] < now:
            count = bisect_left(times, now)
            records = self._sources[node_id]
            for msg_id in ids[:count]:
                records.pop(msg_id, None)
            del times[:count]
            del ids[:count]

    # -- energy helpers ------------------------------------------------------

    def _charge_signature(self, node: NodeId) -> None:
        self.ctx.results.add_energy(node, self.ctx.config.energy.signature)

    def _charge_verification(self, node: NodeId) -> None:
        self.ctx.results.add_energy(node, self.ctx.config.energy.verification)
