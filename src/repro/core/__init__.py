"""The paper's contribution: the Give2Get forwarding protocols."""

from .blacklist import (
    BlacklistService,
    GossipBlacklist,
    InstantBlacklist,
    ProofOfMisbehavior,
)
from .g2g_base import Give2GetBase, RelayPlan
from .payoff import (
    BestResponseReport,
    DeviationOutcome,
    UtilityModel,
    best_response_check,
)
from .g2g_delegation import G2GDelegationForwarding
from .g2g_epidemic import G2GEpidemicForwarding
from .proofs import (
    make_proof_of_relay,
    make_quality_declaration,
    make_storage_proof,
    open_message,
    seal_message,
    verify_proof_of_relay,
    verify_quality_declaration,
    verify_storage_proof,
)
from .wire import (
    ProofOfRelay,
    QualityDeclaration,
    RelayAccept,
    RelayRequest,
    SealedMessage,
    StorageChallenge,
    StorageProof,
)

__all__ = [
    "BestResponseReport",
    "BlacklistService",
    "DeviationOutcome",
    "G2GDelegationForwarding",
    "G2GEpidemicForwarding",
    "Give2GetBase",
    "GossipBlacklist",
    "InstantBlacklist",
    "ProofOfMisbehavior",
    "ProofOfRelay",
    "QualityDeclaration",
    "RelayAccept",
    "RelayPlan",
    "RelayRequest",
    "SealedMessage",
    "StorageChallenge",
    "StorageProof",
    "UtilityModel",
    "best_response_check",
    "make_proof_of_relay",
    "make_quality_declaration",
    "make_storage_proof",
    "open_message",
    "seal_message",
    "verify_proof_of_relay",
    "verify_quality_declaration",
    "verify_storage_proof",
]
