"""G2G Epidemic Forwarding (Sections IV-V of the paper).

Epidemic flooding made incentive-compatible: every hand-off runs the
signed relay phase, every holder forwards to exactly two further
relays ("give 2") and must later show the two proofs of relay — or the
stored message — when the source tests it.  The two-relay cap is both
what makes the protocol a Nash equilibrium and what cuts the replica
count by ~20% relative to vanilla Epidemic.

All of the machinery lives in :class:`repro.core.g2g_base.Give2GetBase`;
epidemic admission is simply "the taker has not handled the message",
which the base class already checks, so the negotiation accepts
unconditionally.
"""

from __future__ import annotations

from typing import Optional

from ..sim.messages import StoredCopy
from ..sim.node import NodeState
from .g2g_base import ACCEPT_PLAN, Give2GetBase, RelayPlan


class G2GEpidemicForwarding(Give2GetBase):
    """Give2Get Epidemic Forwarding."""

    name = "g2g_epidemic"
    family = "epidemic"

    def _negotiate(
        self,
        giver: NodeState,
        taker: NodeState,
        copy: StoredCopy,
        now: float,
    ) -> Optional[RelayPlan]:
        # Epidemic admission: any node that has not seen the message
        # qualifies (the seen-check ran in the base class).  The PoR
        # carries no quality fields in this variant, so every hand-off
        # shares the read-only all-defaults plan.
        return ACCEPT_PLAN
