"""Constructing and verifying the signed G2G artifacts.

These helpers bridge the wire-level dataclasses of
:mod:`repro.core.wire` and the identity layer of
:mod:`repro.crypto.keys`: they sign the canonical payloads and verify
them against the issuer's certificate (which is itself validated
against the trusted authority).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from ..crypto.hashing import HeavyHmac
from ..crypto.keys import Certificate, NodeIdentity
from ..perf import COUNTERS
from ..traces.trace import NodeId
from .wire import (
    ProofOfRelay,
    QualityDeclaration,
    SealedMessage,
    StorageProof,
)


def _backfill_signature(artifact: object, signature: bytes) -> None:
    """Write the signature into a just-built frozen artifact.

    Every ``payload()`` encoding excludes the signature field, so the
    artifact can be constructed once, its (memoized) payload signed,
    and the signature slotted in afterwards — the cached payload stays
    byte-identical to what a fresh encoding would produce, and later
    verifiers hit the cache.  This replaces the build-twice pattern
    (unsigned template + signed copy), which paid a second frozen
    dataclass construction on the hottest path in the simulator.
    """
    object.__setattr__(artifact, "signature", signature)


def seal_message(
    source: NodeIdentity,
    destination_cert: Certificate,
    msg_id: int,
    body: bytes,
) -> SealedMessage:
    """Build ``m = <D, E_PKD(S, msg_id, body)>_S``.

    The plaintext packs the source id and message id alongside the
    body so the destination can authenticate the origin after
    decryption while relays see neither.
    """
    plaintext = (
        repr(source.node_id).encode() + b"|" + repr(msg_id).encode()
        + b"|" + body
    )
    ciphertext = source.encrypt_for(destination_cert, plaintext)
    unsigned = SealedMessage(
        msg_id=msg_id,
        destination=destination_cert.node_id,
        ciphertext=ciphertext,
        source_signature=b"",
    )
    signature = source.sign(unsigned.wire_bytes())
    return SealedMessage(
        msg_id=msg_id,
        destination=destination_cert.node_id,
        ciphertext=ciphertext,
        source_signature=signature,
    )


def open_message(recipient: NodeIdentity, sealed: SealedMessage) -> tuple:
    """Decrypt a sealed message at its destination.

    Returns:
        ``(source_id, msg_id, body)``.

    Raises:
        Exception: propagated from the crypto layer if the blob was
            not addressed to ``recipient`` or was tampered with.
    """
    plaintext = recipient.decrypt(sealed.ciphertext)
    source_repr, msg_id_repr, body = plaintext.split(b"|", 2)
    return int(source_repr), int(msg_id_repr), body


def make_proof_of_relay(
    taker: NodeIdentity,
    msg_hash: bytes,
    giver: NodeId,
    now: float,
    quality_subject: Optional[NodeId] = None,
    message_quality: Optional[float] = None,
    taker_quality: Optional[float] = None,
) -> ProofOfRelay:
    """Sign a PoR as the taker of a message.

    One PoR is built per hand-off — the hottest allocation in a G2G
    run — so the instance is assembled by writing the field dict
    directly instead of going through the frozen-dataclass ``__init__``
    (which pays an ``object.__setattr__`` per field).  The result is
    indistinguishable from a normally constructed instance: equality,
    hashing, ``repr`` and ``dataclasses.replace`` all read the same
    attributes, and ``ProofOfRelay`` defines no ``__post_init__``.

    The signed payload is encoded inline, byte-for-byte identical to
    :meth:`ProofOfRelay.payload`, and pre-seeded into the encoding
    memo (with the matching ``COUNTERS.encodings`` charge), so the
    builder pays neither the method-call round-trip nor a re-encode
    when the giver verifies the proof moments later.  The signature
    goes straight through ``taker.provider`` — the identity's
    :meth:`~repro.crypto.keys.NodeIdentity.sign` is a pure delegate.
    """
    taker_id = taker.node_id
    COUNTERS.encodings += 1
    payload = b"|".join((
        b"POR", msg_hash, b"%d" % giver, b"%d" % taker_id,
        b"None" if quality_subject is None else b"%d" % quality_subject,
        (
            b"None" if message_quality is None
            else repr(message_quality).encode()
        ),
        b"None" if taker_quality is None else repr(taker_quality).encode(),
        repr(now).encode(),
    ))
    por = ProofOfRelay.__new__(ProofOfRelay)
    por.__dict__.update(
        msg_hash=msg_hash,
        giver=giver,
        taker=taker_id,
        quality_subject=quality_subject,
        message_quality=message_quality,
        taker_quality=taker_quality,
        signed_at=now,
        signature=taker.provider.sign(taker.private_key, payload),
        _payload=payload,
    )
    return por


def verify_proof_of_relay(
    verifier: NodeIdentity, taker_cert: Certificate, por: ProofOfRelay
) -> bool:
    """Check a PoR signature against the taker's certificate."""
    if taker_cert.node_id != por.taker:
        return False
    return verifier.verify_peer(taker_cert, por.payload(), por.signature)


def verify_proofs_of_relay(
    verifier: NodeIdentity,
    proofs: Sequence[Tuple[Certificate, ProofOfRelay]],
) -> bool:
    """Batch-check PoRs: True iff *every* ``(taker_cert, por)`` verifies.

    The relay and test phases check PoRs at well-defined choke points
    (all hand-offs of one offer; both proofs of one challenge), so the
    per-proof checks collapse into a single
    :meth:`~repro.crypto.keys.NodeIdentity.verify_peer_batch` call —
    one provider round-trip instead of one per proof, with identical
    accept/reject behavior and counter totals.
    """
    items = []
    for taker_cert, por in proofs:
        if taker_cert.node_id != por.taker:
            return False
        items.append((taker_cert, por.payload(), por.signature))
    return verifier.verify_peer_batch(items)


def make_quality_declaration(
    declarant: NodeIdentity,
    destination: NodeId,
    value: float,
    frame: int,
    now: float,
) -> QualityDeclaration:
    """Sign an FQ_RESP declaration."""
    declaration = QualityDeclaration(
        declarant=declarant.node_id,
        destination=destination,
        value=value,
        frame=frame,
        declared_at=now,
    )
    _backfill_signature(declaration, declarant.sign(declaration.payload()))
    return declaration


def verify_quality_declaration(
    verifier: NodeIdentity,
    declarant_cert: Certificate,
    declaration: QualityDeclaration,
) -> bool:
    """Check an FQ_RESP signature against the declarant's certificate."""
    if declarant_cert.node_id != declaration.declarant:
        return False
    return verifier.verify_peer(
        declarant_cert, declaration.payload(), declaration.signature
    )


def make_storage_proof(
    prover: NodeIdentity,
    msg_hash: bytes,
    message_bytes: bytes,
    seed: bytes,
    heavy_hmac: HeavyHmac,
) -> StorageProof:
    """Answer a storage challenge (the heavy HMAC computation)."""
    mac = heavy_hmac.compute(message_bytes, seed)
    proof = StorageProof(
        msg_hash=msg_hash, prover=prover.node_id, seed=seed, mac=mac
    )
    _backfill_signature(proof, prover.sign(proof.payload()))
    return proof


def verify_storage_proof(
    verifier: NodeIdentity,
    prover_cert: Certificate,
    proof: StorageProof,
    message_bytes: bytes,
    heavy_hmac: HeavyHmac,
) -> bool:
    """Recompute the heavy HMAC and check the prover's signature."""
    if not verifier.verify_peer(prover_cert, proof.payload(), proof.signature):
        return False
    return heavy_hmac.verify(message_bytes, proof.seed, proof.mac)


def random_seed(rng: random.Random, size: int = 16) -> bytes:
    """Sample a fresh challenge seed."""
    return bytes(rng.getrandbits(8) for _ in range(size))
