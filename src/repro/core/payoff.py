"""Empirical payoff analysis: the Nash argument, measured.

Section IV-C of the paper defines each player's payoff as a function
that (i) decreases with expected energy and memory cost and (ii) drops
to zero if the player loses the ability to send/receive messages with
the original protocol's performance.  The Nash theorems then argue no
unilateral deviation improves that payoff.

This module makes the argument *measurable*: :func:`best_response_check`
runs the honest profile and, for each candidate deviation, a profile
where exactly one node deviates — then compares that node's realized
utility.  It is an empirical check on simulated runs (a complement to,
not a replacement for, the paper's proof), and doubles as a regression
guard: if a code change ever made deviation profitable, the Nash test
in the suite would fail.

Utility model (simulation counterpart of the paper's ``f_i``)::

    utility_i = service_value * delivered_own_messages_i
              - energy_weight * joules_i
              - memory_weight * byte_seconds_i        (zeroed on eviction
                                                       for the service term)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..adversaries.base import Strategy
from ..adversaries.factory import make_strategy
from ..sim.config import SimulationConfig
from ..sim.engine import Simulation
from ..sim.results import SimulationResults
from ..traces.trace import ContactTrace, NodeId


@dataclass(frozen=True)
class UtilityModel:
    """Weights of the utility function.

    The defaults make one delivered message worth far more than the
    energy of relaying it — the regime the paper assumes (every node
    "has the ultimate interest of being part of the system").
    """

    service_value: float = 10.0
    energy_weight: float = 1.0
    memory_weight: float = 1e-9

    def utility(self, node: NodeId, results: SimulationResults) -> float:
        """Realized utility of ``node`` in one finished run."""
        delivered_own = sum(
            1
            for record in results.messages.values()
            if record.message.source == node and record.delivered
        )
        received_own = sum(
            1
            for record in results.messages.values()
            if record.message.destination == node and record.delivered
        )
        if node in results.evicted_at:
            # Eviction forfeits the service: the paper's "payoff drops
            # to zero" — costs already paid still count against it.
            service = 0.0
        else:
            service = self.service_value * (delivered_own + received_own)
        return (
            service
            - self.energy_weight * results.energy.get(node, 0.0)
            - self.memory_weight
            * results.memory_byte_seconds.get(node, 0.0)
        )


@dataclass
class DeviationOutcome:
    """Result of one unilateral-deviation comparison."""

    deviation: str
    node: NodeId
    honest_utility: float
    deviant_utility: float
    detected: bool

    @property
    def profitable(self) -> bool:
        """True if deviating strictly beat honesty (a Nash violation)."""
        return self.deviant_utility > self.honest_utility


@dataclass
class BestResponseReport:
    """All deviation outcomes for one protocol/trace pairing."""

    protocol: str
    outcomes: List[DeviationOutcome] = field(default_factory=list)

    @property
    def nash_holds(self) -> bool:
        """No tested deviation was profitable."""
        return not any(o.profitable for o in self.outcomes)

    def render(self) -> str:
        """Text table of the comparisons."""
        lines = [
            f"== empirical best-response check: {self.protocol} ==",
            f"{'deviation':<12}{'node':>6}{'honest U':>12}"
            f"{'deviant U':>12}{'detected':>10}{'profitable':>12}",
        ]
        for o in self.outcomes:
            lines.append(
                f"{o.deviation:<12}{o.node:>6}{o.honest_utility:>12.2f}"
                f"{o.deviant_utility:>12.2f}"
                f"{str(o.detected):>10}{str(o.profitable):>12}"
            )
        lines.append(f"Nash equilibrium holds empirically: {self.nash_holds}")
        return "\n".join(lines)


def best_response_check(
    trace: ContactTrace,
    protocol_factory: Callable[[], object],
    config: SimulationConfig,
    deviations: Tuple[str, ...] = ("dropper",),
    probe_nodes: Optional[List[NodeId]] = None,
    model: Optional[UtilityModel] = None,
    community: Optional[object] = None,
    seeds: Tuple[int, ...] = (1, 2, 3),
) -> BestResponseReport:
    """Compare honest vs unilaterally-deviating *expected* utility.

    The paper's payoff is an expectation: a liar that dodges detection
    in one lucky run still loses on average because conviction (and
    with it the whole service term) happens with high probability.
    Utilities are therefore averaged over ``seeds`` — each seed re-draws
    the traffic while the trace stays fixed.

    Args:
        trace: evaluation trace.
        protocol_factory: builds a fresh protocol per run.
        config: simulation configuration (re-seeded per replication).
        deviations: deviation kinds to probe.
        probe_nodes: nodes to test (default: the three lowest ids —
            every additional node costs one simulation per kind and
            seed).
        model: utility weights.
        community: forwarded to the simulation context.
        seeds: replication seeds for the expectation.

    Returns:
        A :class:`BestResponseReport`; ``report.nash_holds`` is the
        empirical verdict.
    """
    if model is None:
        model = UtilityModel()
    if probe_nodes is None:
        probe_nodes = list(trace.nodes[:3])

    honest_runs = [
        Simulation(
            trace, protocol_factory(), config.with_seed(seed),
            community=community,
        ).run()
        for seed in seeds
    ]
    report = BestResponseReport(protocol=honest_runs[0].protocol)

    def mean_utility(node: NodeId, runs: List[SimulationResults]) -> float:
        return sum(model.utility(node, run) for run in runs) / len(runs)

    for deviation in deviations:
        for node in probe_nodes:
            deviant_runs = []
            for seed in seeds:
                strategies: Dict[NodeId, Strategy] = {
                    node: make_strategy(deviation, community)
                }
                deviant_runs.append(
                    Simulation(
                        trace, protocol_factory(), config.with_seed(seed),
                        strategies=strategies, community=community,
                    ).run()
                )
            report.outcomes.append(
                DeviationOutcome(
                    deviation=deviation,
                    node=node,
                    honest_utility=mean_utility(node, honest_runs),
                    deviant_utility=mean_utility(node, deviant_runs),
                    detected=any(
                        node in run.evicted_at for run in deviant_runs
                    ),
                )
            )
    return report
