"""G2G Delegation Forwarding (Sections VI-VII of the paper).

Delegation Forwarding made incentive-compatible.  On top of the G2G
relay/test machinery this adds:

* **quality negotiation** (Fig. 6): before handing over a message the
  giver asks the candidate's forwarding quality towards ``D'`` — the
  true destination, or a random camouflage node when the candidate
  *is* the destination, so a node can never tell whether refusing or
  lying would cost it its own message.  Declarations are signed and
  use the quality of the *last completed timeframe*.
* **test by the sender**: besides the dropper check, the source
  verifies the quality chain ``f_AD = f1_m < f_BD = f2_m < f_CD``
  across the two proofs of relay, catching **cheaters** that lowered
  a message's label to dump it faster.  (Proofs signed by the
  message's own destination are exempt: delivery is unconditional, so
  its camouflage declaration does not participate in the chain.)
* **test by the destination**: the source embeds the last two signed
  declarations of *failed* relay candidates into the message; the
  destination — which observes the same encounter history — recomputes
  what each candidate should have declared and convicts **liars**.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..crypto.provider import CryptoProvider
from ..protocols.base import SimulationContext
from ..protocols.quality import FRAME_TIMER_TAG, QualityTracker
from ..sim.messages import Message, StoredCopy
from ..sim.node import NodeState
from ..traces.trace import NodeId
from .g2g_base import Give2GetBase, RelayPlan, _SourceRecord
from .proofs import make_quality_declaration, verify_quality_declaration

#: How many failed declarations ride with each message (the paper
#: embeds "the last two").
EMBEDDED_DECLARATIONS = 2

#: Tolerance for comparing declared vs recomputed qualities; both
#: sides see identical encounter events so exact agreement is expected,
#: the epsilon only absorbs float formatting.
QUALITY_TOLERANCE = 1e-9


class G2GDelegationForwarding(Give2GetBase):
    """Give2Get Delegation Forwarding (frequency / last-contact)."""

    family = "delegation"

    def __init__(
        self,
        variant: str = "last_contact",
        provider: Optional[CryptoProvider] = None,
        testers: str = "source",
    ) -> None:
        super().__init__(provider=provider, testers=testers)
        self.variant = variant
        self.name = f"g2g_delegation_{variant}"
        self.tracker: Optional[QualityTracker] = None

    def bind(self, ctx: SimulationContext) -> None:
        super().bind(ctx)
        self.tracker = QualityTracker(
            self.variant, ctx.config.quality_timeframe
        )
        self.tracker.schedule_rollover(ctx)
        # Node population is fixed for the run (evictions only flag
        # nodes); built once so every camouflage draw skips an
        # O(nodes) list build while sampling the identical sequence.
        self._node_ids = list(ctx.nodes)

    def on_contact_start(self, a: NodeId, b: NodeId, now: float) -> None:
        self.ctx.flush_timers(now)
        self.tracker.encounter(a, b, now)
        super().on_contact_start(a, b, now)

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        if tag == FRAME_TIMER_TAG:
            assert self.tracker is not None
            self.tracker.handle_frame_timer(self.ctx, payload, now)
        else:
            super().on_timer(tag, payload, now)

    # -- delegation-specific hooks ----------------------------------------

    def _initial_quality(self, message: Message, now: float) -> float:
        """A new message is labelled with the sender's quality."""
        value, _frame = self.tracker.completed(
            message.source, message.destination, now
        )
        return value

    def _negotiate(
        self,
        giver: NodeState,
        taker: NodeState,
        copy: StoredCopy,
        now: float,
    ) -> Optional[RelayPlan]:
        message = copy.message
        destination = message.destination
        # D': the true destination, or camouflage when the candidate
        # is the destination itself.
        if taker.node_id == destination:
            quality_subject = self._camouflage_subject(taker.node_id)
        else:
            quality_subject = destination
        true_value, frame = self.tracker.completed(
            taker.node_id, quality_subject, now
        )
        declared_value = taker.strategy.declared_quality(
            taker.node_id, quality_subject, true_value, giver.node_id, now
        )
        if declared_value != true_value:
            self.ctx.results.record_deviation(taker.node_id, message)
        declaration = make_quality_declaration(
            self.identities[taker.node_id],
            quality_subject,
            declared_value,
            frame,
            now,
        )
        self._charge_signature(taker.node_id)
        if taker.node_id == destination:
            # Delivery is unconditional; the camouflage declaration
            # plays no role in the forwarding decision.
            return RelayPlan(
                quality_subject=quality_subject,
                message_quality=copy.quality,
                taker_quality=declared_value,
                attachments=list(copy.attachments),
                declaration=declaration,
            )
        # The giver may present a lowered label (the cheat).
        label = giver.strategy.forwarded_message_quality(
            giver.node_id, message, copy.quality, taker.node_id, now
        )
        if label != copy.quality:
            self.ctx.results.record_deviation(giver.node_id, message)
        if not self.tracker.better(declared_value, label):
            # Candidate failed.  A *source* records the signed failure
            # for the destination's liar test.
            record = self._sources[giver.node_id].get(message.msg_id)
            if (
                record is not None
                and record.is_source
                and declared_value < label
            ):
                record.failed_declarations.append(declaration)
            return None
        return RelayPlan(
            quality_subject=quality_subject,
            message_quality=label,
            taker_quality=declared_value,
            new_copy_quality=declared_value,
            attachments=self._outgoing_attachments(giver, copy, message),
            declaration=declaration,
        )

    def _outgoing_attachments(
        self, giver: NodeState, copy: StoredCopy, message: Message
    ) -> List[Any]:
        """Declarations riding with the forwarded replica.

        The source embeds its latest failed declarations; relays pass
        through whatever arrived with their copy.
        """
        record = self._sources[giver.node_id].get(message.msg_id)
        if record is not None and record.is_source:
            return list(record.failed_declarations[-EMBEDDED_DECLARATIONS:])
        return list(copy.attachments)

    def _after_relay(
        self,
        giver: NodeState,
        record: Optional[_SourceRecord],
        taker: NodeState,
        plan: RelayPlan,
        declaration: Any,
        now: float,
    ) -> None:
        # A source keeps every direct relay's signed declaration — the
        # anchor of the cheater chain check.  Declarations made by the
        # destination are camouflage and never anchor a test.
        if record is not None and taker.node_id != record.message.destination:
            record.taker_declarations[taker.node_id] = declaration

    def _chain_violation(
        self,
        record: _SourceRecord,
        taker: NodeId,
        proofs: List[Any],
        now: float,
    ) -> Optional[Any]:
        """The cheater check: ``f_AD = f1_m < f_BD = f2_m < f_CD``."""
        declaration = record.taker_declarations.get(taker)
        if declaration is None:
            return None  # nothing to anchor the chain on
        expected = declaration.value
        destination = record.message.destination
        for por in sorted(proofs, key=lambda p: p.signed_at):
            if por.taker == destination:
                # Delivery is unconditional; its PoR carries a
                # camouflage quality outside the chain.
                continue
            if por.message_quality is None or por.taker_quality is None:
                return por
            if abs(por.message_quality - expected) > QUALITY_TOLERANCE:
                return por  # the label was tampered with
            if not por.taker_quality > por.message_quality:
                return por  # relayed to a non-qualifying node
            expected = por.taker_quality
        return None

    def _on_delivered(
        self,
        taker: NodeState,
        copy_attachments: List[Any],
        message: Message,
        now: float,
    ) -> None:
        """Test by the destination: convict liars among failed relays."""
        identity = self.identities[taker.node_id]
        for declaration in copy_attachments:
            if declaration.destination != taker.node_id:
                continue  # declaration about someone else; cannot verify
            if declaration.declarant == taker.node_id:
                continue
            if not verify_quality_declaration(
                identity,
                self.identities[declaration.declarant].certificate,
                declaration,
            ):  # pragma: no cover - unforgeable in-model
                continue
            self._charge_verification(taker.node_id)
            own_value = self.tracker.value_at_frame(
                taker.node_id, declaration.declarant, declaration.frame, now
            )
            if own_value is None:
                continue  # outside the retention window; unverifiable
            if abs(own_value - declaration.value) > QUALITY_TOLERANCE:
                self._issue_pom(
                    declaration.declarant,
                    taker.node_id,
                    message,
                    "liar",
                    declaration,
                    now,
                )

    def _camouflage_subject(self, excluded: NodeId) -> NodeId:
        """A random node id different from ``excluded`` (the D' trick)."""
        nodes = self._node_ids
        choice = self.ctx.rng.choice(nodes)
        while choice == excluded:
            choice = self.ctx.rng.choice(nodes)
        return choice
