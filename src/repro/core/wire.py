"""Wire-level artifacts of the Give2Get protocols.

Canonical byte encodings of every signed control message in Fig. 1,
Fig. 2, and Fig. 6 of the paper, plus the sealed application message.
Each artifact exposes a ``payload()`` encoding that is what actually
gets signed/verified — distinct kind tags prevent any artifact signed
in one role from being replayed in another.

The simulator-facing constructors live in :mod:`repro.core.proofs`;
this module is pure data + encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.hashing import digest
from ..traces.trace import NodeId


def _enc(*parts: object) -> bytes:
    """Deterministic byte encoding of heterogeneous fields."""
    return b"|".join(
        p if isinstance(p, bytes) else repr(p).encode() for p in parts
    )


@dataclass(frozen=True)
class SealedMessage:
    """The on-air form of a message: ``m = <D, E_PKD(S, msg_id, body)>_S``.

    The destination is in clear; the sender hides inside the encrypted
    body (relays must not learn whether the node handing them the
    message is its source, or the test-phase threat would evaporate).

    Attributes:
        msg_id: simulator message id (stands in for a GUID).
        destination: the clear-text destination field.
        ciphertext: the body encrypted to the destination's public key.
        source_signature: the source's signature over the whole form.
    """

    msg_id: int
    destination: NodeId
    ciphertext: bytes
    source_signature: bytes

    def wire_bytes(self) -> bytes:
        """Full serialized form (what relays store and hash)."""
        return _enc(
            b"MSG", self.msg_id, self.destination,
            self.ciphertext, self.source_signature,
        )

    def content_hash(self) -> bytes:
        """``H(m)`` — the handle used in every control message."""
        return digest(self.wire_bytes())


@dataclass(frozen=True)
class RelayRequest:
    """Step 1 / step 8: ``<RELAY_RQST, H(m)>_A`` (+ D' for delegation)."""

    msg_hash: bytes
    sender: NodeId
    quality_subject: Optional[NodeId] = None  # D' in Fig. 6
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        return _enc(b"RELAY_RQST", self.msg_hash, self.sender,
                    self.quality_subject)


@dataclass(frozen=True)
class RelayAccept:
    """Step 2: ``<RELAY_OK, H(m)>_B``."""

    msg_hash: bytes
    relay: NodeId
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        return _enc(b"RELAY_OK", self.msg_hash, self.relay)


@dataclass(frozen=True)
class QualityDeclaration:
    """Step 9: ``<FQ_RESP, B, D', f_BD>_B`` with its timeframe index.

    Signed by the declarant; a false declaration is therefore
    self-incriminating — it *is* the proof of misbehavior the
    destination broadcasts when it catches a liar (Sec. VI-A).
    """

    declarant: NodeId
    destination: NodeId
    value: float
    frame: int
    declared_at: float
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        return _enc(
            b"FQ_RESP", self.declarant, self.destination,
            self.value, self.frame, self.declared_at,
        )


@dataclass(frozen=True)
class ProofOfRelay:
    """Step 4 / step 11: the receipt a relay signs on taking a message.

    Epidemic form: ``<POR, H(m), A, B>_B``.  Delegation form adds the
    quality subject D', the message's quality label at hand-off
    (``f_m``), and the taker's declared quality (``f_BD``).
    """

    msg_hash: bytes
    giver: NodeId
    taker: NodeId
    quality_subject: Optional[NodeId] = None
    message_quality: Optional[float] = None
    taker_quality: Optional[float] = None
    signed_at: float = 0.0
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        return _enc(
            b"POR", self.msg_hash, self.giver, self.taker,
            self.quality_subject, self.message_quality,
            self.taker_quality, self.signed_at,
        )


@dataclass(frozen=True)
class StorageChallenge:
    """Step 6: ``<POR_RQST, H(m), s>_A`` — the test-phase opener."""

    msg_hash: bytes
    challenger: NodeId
    seed: bytes
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        return _enc(b"POR_RQST", self.msg_hash, self.challenger, self.seed)


@dataclass(frozen=True)
class StorageProof:
    """Step 7 (second branch): ``<STORED, H(m), s, HMAC(m, s)>_B``."""

    msg_hash: bytes
    prover: NodeId
    seed: bytes
    mac: bytes
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        return _enc(b"STORED", self.msg_hash, self.prover, self.seed, self.mac)


#: Nominal wire sizes (bytes) for energy accounting of control traffic.
CONTROL_MESSAGE_SIZE = 96
PROOF_SIZE = 64
