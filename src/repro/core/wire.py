"""Wire-level artifacts of the Give2Get protocols.

Canonical byte encodings of every signed control message in Fig. 1,
Fig. 2, and Fig. 6 of the paper, plus the sealed application message.
Each artifact exposes a ``payload()`` encoding that is what actually
gets signed/verified — distinct kind tags prevent any artifact signed
in one role from being replayed in another.

Every artifact is a frozen dataclass, so its encoding is a pure
function of its fields: ``payload()``/``wire_bytes()``/``content_hash()``
are computed once per instance and memoized on the instance (stored
outside the dataclass fields, so equality, hashing, and pickling are
unaffected).  The signer and every later verifier therefore share one
encoding — byte-identical to an uncached recomputation, which is what
keeps the cache invisible to signature semantics.

The simulator-facing constructors live in :mod:`repro.core.proofs`;
this module is pure data + encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .._mypyc import mypyc_attr
from ..crypto.hashing import digest
from ..perf.counters import COUNTERS
from ..traces.trace import NodeId


def _enc(*parts: object) -> bytes:
    """Deterministic byte encoding of heterogeneous fields.

    Byte-compatible with the original ``repr``-based encoder (so
    signatures made before the hot-path overhaul still verify), but
    dispatches on the concrete type: the dominant field types — raw
    bytes and ints — skip ``repr`` entirely; floats, ``None``, and
    anything exotic fall back to it.
    """
    COUNTERS.encodings += 1
    out = []
    append = out.append
    for p in parts:
        kind = type(p)
        if kind is bytes:
            append(p)
        elif kind is int:  # excludes bool (repr differs)
            append(b"%d" % p)
        elif p is None:  # optional fields, common in epidemic PoRs
            append(b"None")
        else:
            append(repr(p).encode())
    return b"|".join(out)


def _memoized(artifact: object, slot: str, value: bytes) -> bytes:
    """Store ``value`` on a frozen dataclass instance, bypassing freeze."""
    object.__setattr__(artifact, slot, value)
    return value


@mypyc_attr(native_class=False)
@dataclass(frozen=True)
class SealedMessage:
    """The on-air form of a message: ``m = <D, E_PKD(S, msg_id, body)>_S``.

    The destination is in clear; the sender hides inside the encrypted
    body (relays must not learn whether the node handing them the
    message is its source, or the test-phase threat would evaporate).

    Attributes:
        msg_id: simulator message id (stands in for a GUID).
        destination: the clear-text destination field.
        ciphertext: the body encrypted to the destination's public key.
        source_signature: the source's signature over the whole form.
    """

    msg_id: int
    destination: NodeId
    ciphertext: bytes
    source_signature: bytes

    def wire_bytes(self) -> bytes:
        """Full serialized form (what relays store and hash)."""
        cached = self.__dict__.get("_wire_bytes")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        return _memoized(self, "_wire_bytes", _enc(
            b"MSG", self.msg_id, self.destination,
            self.ciphertext, self.source_signature,
        ))

    def content_hash(self) -> bytes:
        """``H(m)`` — the handle used in every control message."""
        cached = self.__dict__.get("_content_hash")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        return _memoized(self, "_content_hash", digest(self.wire_bytes()))


@mypyc_attr(native_class=False)
@dataclass(frozen=True)
class RelayRequest:
    """Step 1 / step 8: ``<RELAY_RQST, H(m)>_A`` (+ D' for delegation)."""

    msg_hash: bytes
    sender: NodeId
    quality_subject: Optional[NodeId] = None  # D' in Fig. 6
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        cached = self.__dict__.get("_payload")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        return _memoized(self, "_payload", _enc(
            b"RELAY_RQST", self.msg_hash, self.sender, self.quality_subject
        ))


@mypyc_attr(native_class=False)
@dataclass(frozen=True)
class RelayAccept:
    """Step 2: ``<RELAY_OK, H(m)>_B``."""

    msg_hash: bytes
    relay: NodeId
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        cached = self.__dict__.get("_payload")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        return _memoized(self, "_payload", _enc(
            b"RELAY_OK", self.msg_hash, self.relay
        ))


@mypyc_attr(native_class=False)
@dataclass(frozen=True)
class QualityDeclaration:
    """Step 9: ``<FQ_RESP, B, D', f_BD>_B`` with its timeframe index.

    Signed by the declarant; a false declaration is therefore
    self-incriminating — it *is* the proof of misbehavior the
    destination broadcasts when it catches a liar (Sec. VI-A).
    """

    declarant: NodeId
    destination: NodeId
    value: float
    frame: int
    declared_at: float
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        cached = self.__dict__.get("_payload")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        return _memoized(self, "_payload", _enc(
            b"FQ_RESP", self.declarant, self.destination,
            self.value, self.frame, self.declared_at,
        ))


@mypyc_attr(native_class=False)
@dataclass(frozen=True)
class ProofOfRelay:
    """Step 4 / step 11: the receipt a relay signs on taking a message.

    Epidemic form: ``<POR, H(m), A, B>_B``.  Delegation form adds the
    quality subject D', the message's quality label at hand-off
    (``f_m``), and the taker's declared quality (``f_BD``).
    """

    msg_hash: bytes
    giver: NodeId
    taker: NodeId
    quality_subject: Optional[NodeId] = None
    message_quality: Optional[float] = None
    taker_quality: Optional[float] = None
    signed_at: float = 0.0
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature.

        Encoded inline rather than through :func:`_enc`: one PoR is
        signed per hand-off, making this the single hottest encoding
        in the simulator, and its field types are statically known.
        The bytes are identical to the generic encoder's output.
        """
        cached = self.__dict__.get("_payload")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        COUNTERS.encodings += 1
        qs = self.quality_subject
        mq = self.message_quality
        tq = self.taker_quality
        return _memoized(self, "_payload", b"|".join((
            b"POR", self.msg_hash, b"%d" % self.giver, b"%d" % self.taker,
            b"None" if qs is None else b"%d" % qs,
            b"None" if mq is None else repr(mq).encode(),
            b"None" if tq is None else repr(tq).encode(),
            repr(self.signed_at).encode(),
        )))


@mypyc_attr(native_class=False)
@dataclass(frozen=True)
class StorageChallenge:
    """Step 6: ``<POR_RQST, H(m), s>_A`` — the test-phase opener."""

    msg_hash: bytes
    challenger: NodeId
    seed: bytes
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        cached = self.__dict__.get("_payload")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        return _memoized(self, "_payload", _enc(
            b"POR_RQST", self.msg_hash, self.challenger, self.seed
        ))


@mypyc_attr(native_class=False)
@dataclass(frozen=True)
class StorageProof:
    """Step 7 (second branch): ``<STORED, H(m), s, HMAC(m, s)>_B``."""

    msg_hash: bytes
    prover: NodeId
    seed: bytes
    mac: bytes
    signature: bytes = b""

    def payload(self) -> bytes:
        """Bytes covered by the signature."""
        cached = self.__dict__.get("_payload")
        if cached is not None:
            COUNTERS.encoding_cache_hits += 1
            return cached
        return _memoized(self, "_payload", _enc(
            b"STORED", self.msg_hash, self.prover, self.seed, self.mac
        ))


def seed_payload_cache(signed: object, payload: bytes) -> None:
    """Transfer a computed ``payload()`` onto a just-signed artifact.

    The signature field is excluded from every ``payload()`` encoding,
    so the payload of the unsigned template is byte-identical to the
    signed artifact's — signing then costs exactly one encoding, and
    every later verification is a cache hit.
    """
    object.__setattr__(signed, "_payload", payload)


#: Nominal wire sizes (bytes) for energy accounting of control traffic.
CONTROL_MESSAGE_SIZE = 96
PROOF_SIZE = 64
