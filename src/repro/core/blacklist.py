"""Blacklist propagation: how proofs of misbehavior spread.

When a test fails, the detector "can broadcast a proof of misbehavior
(PoM) to the whole network that, in turn, will remove node B"
(Sec. IV-B).  The paper assumes the broadcast reaches everyone; in a
disconnected DTN an implementation would piggyback PoMs on contacts.
Both models are provided:

* :class:`InstantBlacklist` — the paper's assumption: one PoM and the
  offender is immediately invisible to every node.
* :class:`GossipBlacklist` — epidemic dissemination of PoMs during
  contacts; each node only shuns offenders it has heard about.  The
  ablation benchmark compares the two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Set

from ..traces.trace import NodeId


@dataclass(frozen=True)
class ProofOfMisbehavior:
    """Evidence that a node deviated.

    Attributes:
        offender: the incriminated node.
        detector: who produced the proof.
        msg_id: the message whose handling failed the test.
        deviation: "dropper" / "liar" / "cheater".
        issued_at: detection time.
        evidence: the signed artifact backing the claim (a PoR the
            offender signed, or a signed false FQ_RESP) — opaque here.
    """

    offender: NodeId
    detector: NodeId
    msg_id: int
    deviation: str
    issued_at: float
    evidence: Any = None


class BlacklistService(ABC):
    """Tracks who knows which nodes have been convicted."""

    @abstractmethod
    def publish(self, pom: ProofOfMisbehavior) -> None:
        """Register a fresh PoM from its detector."""

    @abstractmethod
    def knows(self, observer: NodeId, offender: NodeId) -> bool:
        """True if ``observer`` has learned of a PoM against ``offender``."""

    @abstractmethod
    def on_contact(self, a: NodeId, b: NodeId, now: float) -> None:
        """Exchange blacklist knowledge during a contact."""

    @abstractmethod
    def convicted(self) -> Set[NodeId]:
        """All nodes with at least one published PoM."""


class InstantBlacklist(BlacklistService):
    """Network-wide immediate PoM visibility (the paper's model)."""

    def __init__(self) -> None:
        self._convicted: Set[NodeId] = set()
        self.poms: List[ProofOfMisbehavior] = []

    def publish(self, pom: ProofOfMisbehavior) -> None:
        self._convicted.add(pom.offender)
        self.poms.append(pom)

    def knows(self, observer: NodeId, offender: NodeId) -> bool:
        return offender in self._convicted

    def on_contact(self, a: NodeId, b: NodeId, now: float) -> None:
        # Nothing to exchange: knowledge is global.
        return None

    def convicted(self) -> Set[NodeId]:
        return set(self._convicted)


class GossipBlacklist(BlacklistService):
    """Contact-time epidemic dissemination of PoMs.

    The detector knows immediately; every contact unions the two
    endpoints' knowledge (PoMs are tiny signed records, so flooding
    them is cheap and — unlike message flooding — incentive-compatible:
    spreading a PoM protects the spreader from wasting relays on a
    convicted node).
    """

    def __init__(self) -> None:
        self._known: Dict[NodeId, Set[NodeId]] = {}
        self.poms: List[ProofOfMisbehavior] = []

    def publish(self, pom: ProofOfMisbehavior) -> None:
        self.poms.append(pom)
        self._known.setdefault(pom.detector, set()).add(pom.offender)

    def knows(self, observer: NodeId, offender: NodeId) -> bool:
        return offender in self._known.get(observer, set())

    def on_contact(self, a: NodeId, b: NodeId, now: float) -> None:
        known_a = self._known.setdefault(a, set())
        known_b = self._known.setdefault(b, set())
        merged = known_a | known_b
        known_a |= merged
        known_b |= merged

    def convicted(self) -> Set[NodeId]:
        return {pom.offender for pom in self.poms}

    def awareness(self, offender: NodeId) -> int:
        """How many nodes currently know about ``offender``."""
        return sum(1 for known in self._known.values() if offender in known)
