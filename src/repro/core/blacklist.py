"""Blacklist propagation: how proofs of misbehavior spread.

When a test fails, the detector "can broadcast a proof of misbehavior
(PoM) to the whole network that, in turn, will remove node B"
(Sec. IV-B).  The paper assumes the broadcast reaches everyone; in a
disconnected DTN an implementation would piggyback PoMs on contacts.
Both models are provided:

* :class:`InstantBlacklist` — the paper's assumption: one PoM and the
  offender is immediately invisible to every node.
* :class:`GossipBlacklist` — epidemic dissemination of PoMs during
  contacts; each node only shuns offenders it has heard about.  The
  ablation benchmark compares the two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set

from ..traces.trace import NodeId

if TYPE_CHECKING:  # circular at runtime: sim.events is engine-side
    from ..sim.events import Scheduler

#: Scheduler tag of the gossip propagation-round timer chain.
GOSSIP_ROUND_TAG = "blacklist.round"


@dataclass(frozen=True)
class ProofOfMisbehavior:
    """Evidence that a node deviated.

    Attributes:
        offender: the incriminated node.
        detector: who produced the proof.
        msg_id: the message whose handling failed the test.
        deviation: "dropper" / "liar" / "cheater".
        issued_at: detection time.
        evidence: the signed artifact backing the claim (a PoR the
            offender signed, or a signed false FQ_RESP) — opaque here.
    """

    offender: NodeId
    detector: NodeId
    msg_id: int
    deviation: str
    issued_at: float
    evidence: Any = None


class BlacklistService(ABC):
    """Tracks who knows which nodes have been convicted."""

    @abstractmethod
    def publish(self, pom: ProofOfMisbehavior) -> None:
        """Register a fresh PoM from its detector."""

    @abstractmethod
    def knows(self, observer: NodeId, offender: NodeId) -> bool:
        """True if ``observer`` has learned of a PoM against ``offender``."""

    @abstractmethod
    def on_contact(self, a: NodeId, b: NodeId, now: float) -> None:
        """Exchange blacklist knowledge during a contact."""

    @abstractmethod
    def convicted(self) -> Set[NodeId]:
        """All nodes with at least one published PoM."""

    def on_run_start(
        self, scheduler: "Scheduler", nodes: Sequence[NodeId]
    ) -> None:
        """Engine hook: the run scheduler is available.

        Services with time-driven behavior (gossip propagation rounds)
        register their timers here; the default does nothing.
        """


class InstantBlacklist(BlacklistService):
    """Network-wide immediate PoM visibility (the paper's model)."""

    def __init__(self) -> None:
        self._convicted: Set[NodeId] = set()
        self.poms: List[ProofOfMisbehavior] = []

    def publish(self, pom: ProofOfMisbehavior) -> None:
        self._convicted.add(pom.offender)
        self.poms.append(pom)

    def knows(self, observer: NodeId, offender: NodeId) -> bool:
        return offender in self._convicted

    def on_contact(self, a: NodeId, b: NodeId, now: float) -> None:
        # Nothing to exchange: knowledge is global.
        return None

    def convicted(self) -> Set[NodeId]:
        return set(self._convicted)


class GossipBlacklist(BlacklistService):
    """Contact-time epidemic dissemination of PoMs.

    The detector knows immediately; every contact unions the two
    endpoints' knowledge (PoMs are tiny signed records, so flooding
    them is cheap and — unlike message flooding — incentive-compatible:
    spreading a PoM protects the spreader from wasting relays on a
    convicted node).

    Args:
        round_interval: optional period of *propagation rounds* — a
            timer chain on the run scheduler that makes every
            published PoM known to every node once per interval,
            modelling an out-of-band broadcast with bounded staleness
            (the middle ground between pure contact gossip and the
            paper's instant broadcast).  None (default) keeps the
            purely contact-driven dissemination.
    """

    def __init__(self, round_interval: Optional[float] = None) -> None:
        if round_interval is not None and round_interval <= 0:
            raise ValueError("round_interval must be positive (or None)")
        self._known: Dict[NodeId, Set[NodeId]] = {}
        self.poms: List[ProofOfMisbehavior] = []
        self.round_interval = round_interval
        self._nodes: Sequence[NodeId] = ()
        self._scheduler: Optional["Scheduler"] = None

    def on_run_start(
        self, scheduler: "Scheduler", nodes: Sequence[NodeId]
    ) -> None:
        """Start the propagation-round timer chain (when configured)."""
        self._scheduler = scheduler
        self._nodes = tuple(nodes)
        if self.round_interval is not None:
            scheduler.schedule(
                self.round_interval, GOSSIP_ROUND_TAG, 1, owner=self
            )

    def on_timer(self, tag: str, payload: Any, now: float) -> None:
        """One propagation round: all published PoMs reach everyone."""
        offenders = {pom.offender for pom in self.poms}
        known = self._known
        for node in self._nodes:
            peers = known.get(node)
            if peers is None:
                peers = known[node] = set()
            peers |= offenders
        if self._scheduler is not None and self.round_interval is not None:
            # Boundaries by multiplication, not accumulation, so the
            # chain stays on exact multiples of the interval; the
            # scheduler ends it at the horizon by refusing the next.
            self._scheduler.schedule(
                (int(payload) + 1) * self.round_interval,
                GOSSIP_ROUND_TAG,
                int(payload) + 1,
                owner=self,
            )

    def publish(self, pom: ProofOfMisbehavior) -> None:
        self.poms.append(pom)
        self._known.setdefault(pom.detector, set()).add(pom.offender)

    def knows(self, observer: NodeId, offender: NodeId) -> bool:
        return offender in self._known.get(observer, set())

    def on_contact(self, a: NodeId, b: NodeId, now: float) -> None:
        known_a = self._known.setdefault(a, set())
        known_b = self._known.setdefault(b, set())
        merged = known_a | known_b
        known_a |= merged
        known_b |= merged

    def convicted(self) -> Set[NodeId]:
        return {pom.offender for pom in self.poms}

    def awareness(self, offender: NodeId) -> int:
        """How many nodes currently know about ``offender``."""
        return sum(1 for known in self._known.values() if offender in known)
