"""Aggregated contact graphs.

Community detection (and several forwarding heuristics in the PSN
literature) operates on a static *contact graph* distilled from the
trace: nodes are devices, and an edge connects two devices whose
cumulative contact behavior crosses a threshold.  Following the
k-clique methodology of Palla et al. (the paper's reference [24], also
used by BubbleRap [5]), we threshold on either the number of contacts
or the total contact duration of the pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..traces.trace import ContactTrace, NodeId


@dataclass
class ContactGraph:
    """Undirected weighted graph over the trace's node universe.

    Attributes:
        nodes: all node ids (including isolated ones).
        edges: maps each unordered pair to ``(num_contacts, total_duration)``.
    """

    nodes: Tuple[NodeId, ...]
    edges: Dict[FrozenSet[NodeId], Tuple[int, float]] = field(
        default_factory=dict
    )

    @classmethod
    def from_trace(cls, trace: ContactTrace) -> "ContactGraph":
        """Aggregate every contact of ``trace`` into the graph."""
        edges: Dict[FrozenSet[NodeId], Tuple[int, float]] = {}
        # g2g: allow(G2G013: offline aggregate over the full evaluation trace)
        for contact in trace.contacts:
            count, duration = edges.get(contact.pair, (0, 0.0))
            edges[contact.pair] = (count + 1, duration + contact.duration)
        return cls(nodes=trace.nodes, edges=edges)

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Adjacent nodes of ``node`` (any positive-weight edge)."""
        result: Set[NodeId] = set()
        for pair in self.edges:
            if node in pair:
                result.update(pair - {node})
        return result

    def contact_count(self, a: NodeId, b: NodeId) -> int:
        """Number of contacts between ``a`` and ``b``."""
        return self.edges.get(frozenset((a, b)), (0, 0.0))[0]

    def contact_duration(self, a: NodeId, b: NodeId) -> float:
        """Cumulative contact time between ``a`` and ``b`` (seconds)."""
        return self.edges.get(frozenset((a, b)), (0, 0.0))[1]

    def thresholded(
        self,
        min_contacts: int = 0,
        min_duration: float = 0.0,
    ) -> "ContactGraph":
        """Keep edges meeting *both* thresholds.

        Thresholding is how raw sighting noise is removed before
        community detection: a pair that brushed past each other once
        is not a social tie.
        """
        kept = {
            pair: (count, duration)
            for pair, (count, duration) in self.edges.items()
            if count >= min_contacts and duration >= min_duration
        }
        return ContactGraph(nodes=self.nodes, edges=kept)

    def adjacency(self) -> Dict[NodeId, Set[NodeId]]:
        """Full adjacency map (isolated nodes map to empty sets)."""
        adj: Dict[NodeId, Set[NodeId]] = {n: set() for n in self.nodes}
        for pair in self.edges:
            a, b = tuple(pair)
            adj[a].add(b)
            adj[b].add(a)
        return adj

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def degree(self, node: NodeId) -> int:
        """Degree of ``node``."""
        return len(self.neighbors(node))


def top_quantile_graph(
    trace: ContactTrace, quantile: float = 0.5
) -> ContactGraph:
    """Contact graph keeping the strongest ``1 - quantile`` of edges.

    A robust default when absolute thresholds are unknown: rank pairs
    by total contact duration and keep the top share.  ``quantile=0.5``
    keeps the stronger half of the social ties.
    """
    if not 0 <= quantile < 1:
        raise ValueError(f"quantile must be in [0, 1), got {quantile}")
    graph = ContactGraph.from_trace(trace)
    if not graph.edges:
        return graph
    durations = sorted(d for _, d in graph.edges.values())
    cut = durations[int(quantile * len(durations))]
    return graph.thresholded(min_duration=cut)


def connected_components(graph: ContactGraph) -> List[Set[NodeId]]:
    """Connected components of the (thresholded) graph."""
    adjacency = graph.adjacency()
    seen: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for start in graph.nodes:
        if start in seen:
            continue
        stack = [start]
        component: Set[NodeId] = set()
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(adjacency[node] - component)
        seen.update(component)
        components.append(component)
    return components
