"""Social structure layer: contact graphs, communities, centrality."""

from .centrality import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    rank_nodes,
)
from .communities import (
    CommunityMap,
    bron_kerbosch_maximal_cliques,
    k_clique_communities,
)
from .graph import (
    ContactGraph,
    connected_components,
    top_quantile_graph,
)

__all__ = [
    "CommunityMap",
    "ContactGraph",
    "betweenness_centrality",
    "bron_kerbosch_maximal_cliques",
    "closeness_centrality",
    "connected_components",
    "degree_centrality",
    "k_clique_communities",
    "rank_nodes",
    "top_quantile_graph",
]
