"""Centrality measures over contact graphs.

Social forwarding heuristics rank nodes by how structurally central
they are in the aggregated contact graph — BubbleRap bubbles messages
up such rankings. Three classic measures, implemented from scratch on
the :class:`repro.social.graph.ContactGraph` adjacency:

* **degree centrality** — fraction of other nodes adjacent;
* **closeness centrality** — inverse mean shortest-path distance
  (component-scaled, Wasserman-Faust style, so disconnected graphs
  behave);
* **betweenness centrality** — Brandes' algorithm (unweighted).

All return dicts over the *full* node universe (isolated nodes score
zero), normalized to [0, 1] like networkx, which the tests use as an
oracle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from ..traces.trace import NodeId
from .graph import ContactGraph


def degree_centrality(graph: ContactGraph) -> Dict[NodeId, float]:
    """Degree / (n - 1) for every node."""
    adjacency = graph.adjacency()
    n = len(adjacency)
    if n <= 1:
        return {node: 0.0 for node in adjacency}
    return {
        node: len(neighbors) / (n - 1)
        for node, neighbors in adjacency.items()
    }


def closeness_centrality(graph: ContactGraph) -> Dict[NodeId, float]:
    """Component-scaled closeness (Wasserman-Faust).

    For node ``u`` reaching ``r - 1`` nodes at total distance ``d``:
    ``C(u) = ((r - 1) / (n - 1)) * ((r - 1) / d)``; zero for isolated
    nodes.
    """
    adjacency = graph.adjacency()
    n = len(adjacency)
    result: Dict[NodeId, float] = {}
    for node in adjacency:
        distances = _bfs_distances(adjacency, node)
        reachable = len(distances) - 1  # excluding the node itself
        total = sum(distances.values())
        if reachable <= 0 or total <= 0 or n <= 1:
            result[node] = 0.0
            continue
        result[node] = (reachable / (n - 1)) * (reachable / total)
    return result


def betweenness_centrality(graph: ContactGraph) -> Dict[NodeId, float]:
    """Brandes' betweenness for unweighted graphs, normalized.

    Normalization matches networkx: divide by ``(n-1)(n-2)/2`` for
    undirected graphs with ``n > 2``.
    """
    adjacency = graph.adjacency()
    nodes = list(adjacency)
    betweenness: Dict[NodeId, float] = {node: 0.0 for node in nodes}
    for source in nodes:
        # Single-source shortest-path counting.
        stack: List[NodeId] = []
        predecessors: Dict[NodeId, List[NodeId]] = {v: [] for v in nodes}
        sigma: Dict[NodeId, float] = {v: 0.0 for v in nodes}
        sigma[source] = 1.0
        distance: Dict[NodeId, int] = {source: 0}
        queue = deque([source])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in adjacency[v]:
                if w not in distance:
                    distance[w] = distance[v] + 1
                    queue.append(w)
                if distance[w] == distance[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        # Accumulation.
        delta: Dict[NodeId, float] = {v: 0.0 for v in nodes}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != source:
                betweenness[w] += delta[w]
        # (Each undirected pair counted twice; halved below.)
    n = len(nodes)
    if n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))
    else:
        scale = 1.0
    return {node: value * scale for node, value in betweenness.items()}


def rank_nodes(centrality: Dict[NodeId, float]) -> List[NodeId]:
    """Node ids sorted most-central first (id breaks ties)."""
    return sorted(centrality, key=lambda n: (-centrality[n], n))


def _bfs_distances(
    adjacency: Dict[NodeId, set], source: NodeId
) -> Dict[NodeId, int]:
    """Hop distances from ``source`` to every reachable node."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in adjacency[v]:
            if w not in distances:
                distances[w] = distances[v] + 1
                queue.append(w)
    return distances
