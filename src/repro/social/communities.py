"""k-clique percolation community detection (Palla et al., Nature 2005).

The paper implements *selfishness with outsiders* using "the k-clique
algorithm [24] (also used in [5]) for community detection on each data
trace" (Sec. V-A).  We implement clique percolation from scratch:

1. enumerate all maximal cliques of the thresholded contact graph
   (Bron-Kerbosch with pivoting);
2. two k-cliques are adjacent when they share k - 1 nodes; a community
   is the union of a connected component of the clique-adjacency
   relation (computed efficiently by uniting maximal cliques that share
   >= k - 1 nodes, which yields the identical percolation classes);
3. nodes in no k-clique are reported as singletons on request.

Communities may overlap — a node may belong to several — matching the
original algorithm.  :class:`CommunityMap` resolves the overlap with a
primary community per node (largest community wins) because the
adversary model needs a definite insider/outsider answer per pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..traces.trace import ContactTrace, NodeId
from .graph import ContactGraph, top_quantile_graph


def bron_kerbosch_maximal_cliques(
    adjacency: Dict[NodeId, Set[NodeId]]
) -> List[FrozenSet[NodeId]]:
    """All maximal cliques of an undirected graph (with pivoting)."""
    cliques: List[FrozenSet[NodeId]] = []

    def expand(r: Set[NodeId], p: Set[NodeId], x: Set[NodeId]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        # Pivot on the vertex with most neighbors in P to prune branches.
        pivot = max(p | x, key=lambda v: len(adjacency[v] & p))
        for v in list(p - adjacency[pivot]):
            expand(r | {v}, p & adjacency[v], x & adjacency[v])
            p.remove(v)
            x.add(v)

    vertices = {v for v in adjacency if adjacency[v]}
    if not vertices:
        return []
    expand(set(), set(vertices), set())
    return cliques


def k_clique_communities(
    graph: ContactGraph, k: int = 3
) -> List[FrozenSet[NodeId]]:
    """Clique-percolation communities of ``graph``.

    Args:
        graph: thresholded contact graph.
        k: clique size (the paper and BubbleRap use small k; 3 is the
            customary default for sparse human-contact graphs).

    Returns:
        List of communities (possibly overlapping), largest first.

    Raises:
        ValueError: if ``k < 2``.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    adjacency = graph.adjacency()
    maximal = [c for c in bron_kerbosch_maximal_cliques(adjacency) if len(c) >= k]
    if not maximal:
        return []

    # Percolation classes: maximal cliques A and B host adjacent
    # k-cliques iff |A ∩ B| >= k - 1 (any k-clique of A sharing k-1
    # nodes with a k-clique of B can be chosen inside the overlap).
    parent = list(range(len(maximal)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for i, j in combinations(range(len(maximal)), 2):
        if len(maximal[i] & maximal[j]) >= k - 1:
            union(i, j)

    classes: Dict[int, Set[NodeId]] = {}
    for i, clique in enumerate(maximal):
        classes.setdefault(find(i), set()).update(clique)
    return sorted(
        (frozenset(c) for c in classes.values()),
        key=lambda c: (-len(c), sorted(c)),
    )


@dataclass
class CommunityMap:
    """Per-node community assignment with an insider/outsider test.

    Attributes:
        communities: detected (possibly overlapping) communities.
        primary: each node's primary community index, or -1 for nodes
            outside every community (treated as their own singleton —
            every peer is an outsider to them).
    """

    communities: Tuple[FrozenSet[NodeId], ...]
    primary: Dict[NodeId, int]

    @classmethod
    def from_communities(
        cls,
        communities: Sequence[FrozenSet[NodeId]],
        universe: Sequence[NodeId],
    ) -> "CommunityMap":
        """Resolve overlaps: each node joins its largest community."""
        primary: Dict[NodeId, int] = {n: -1 for n in universe}
        ordered = sorted(
            range(len(communities)), key=lambda i: -len(communities[i])
        )
        for idx in reversed(ordered):
            # Iterate small → large so large communities overwrite.
            for node in communities[idx]:
                primary[node] = idx
        return cls(communities=tuple(communities), primary=primary)

    @classmethod
    def detect(
        cls,
        trace: ContactTrace,
        k: int = 3,
        edge_quantile: float = 0.5,
    ) -> "CommunityMap":
        """Full pipeline: threshold the contact graph, percolate, map."""
        graph = top_quantile_graph(trace, quantile=edge_quantile)
        communities = k_clique_communities(graph, k=k)
        return cls.from_communities(communities, trace.nodes)

    def community_of(self, node: NodeId) -> int:
        """Primary community index of ``node`` (-1 if none)."""
        return self.primary.get(node, -1)

    def same_community(self, a: NodeId, b: NodeId) -> bool:
        """Insider test used by *selfish with outsiders* adversaries.

        Nodes outside every community have no insiders.
        """
        ca = self.community_of(a)
        if ca == -1:
            return False
        return ca == self.community_of(b)

    def members(self, index: int) -> FrozenSet[NodeId]:
        """Members of community ``index``."""
        return self.communities[index]

    @property
    def num_communities(self) -> int:
        """Number of detected communities."""
        return len(self.communities)

    def coverage(self) -> float:
        """Fraction of nodes assigned to some community."""
        if not self.primary:
            return 0.0
        covered = sum(1 for c in self.primary.values() if c != -1)
        return covered / len(self.primary)
