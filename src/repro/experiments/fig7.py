"""Figure 7: detection time vs adversary count in G2G Delegation.

The paper's Fig. 7 plots the average detection time against the
number of selfish individuals for all six adversary kinds on both
traces, observing that (i) detection time does not depend on the
adversary count, (ii) droppers are detected sooner than liars, which
are detected sooner than cheaters, and (iii) Cambridge 06 is slower
across the board (lower contact frequency).
"""

from __future__ import annotations

from typing import Dict, Optional

from .catalog import protocol
from .parallel import ExecutionOptions
from .runner import FigureData, ReplicationPlan, Series, run_series
from .setting import TRACES, adversary_counts
from .table1 import ADVERSARY_KINDS, ROW_LABELS


def run(
    quick: bool = False,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, FigureData]:
    """Reproduce Fig. 7; one :class:`FigureData` per trace."""
    if plan is None:
        plan = ReplicationPlan.make(quick)
    family, factory = protocol("g2g_delegation_last_contact")
    kinds = ADVERSARY_KINDS if not quick else (
        "dropper",
        "liar",
        "cheater",
    )
    figures: Dict[str, FigureData] = {}
    for trace_name in TRACES:
        figure = FigureData(
            figure_id=f"fig7-{trace_name}",
            title=(
                "Detection time vs number of selfish individuals, "
                f"G2G Delegation ({trace_name})"
            ),
            x_label="Number",
            y_label="Average detection time (minutes)",
        )
        counts = [c for c in adversary_counts(trace_name, quick) if c]
        for kind in kinds:
            series = Series(label=ROW_LABELS[kind])
            for count, point in run_series(
                trace_name,
                family,
                factory,
                counts,
                deviation=kind,
                plan=plan,
                options=options,
            ):
                series.add(count, point.detection_delay / 60.0)
            figure.series.append(series)
        figures[trace_name] = figure
    return figures
