"""Parallel execution of independent simulation runs.

Every paper figure is a grid of *independently seeded* simulations —
embarrassingly parallel work the sequential runner left on the table.
This module fans a batch of :class:`RunRequest` grid points out over a
``ProcessPoolExecutor`` and merges the results back **in request
order**, so parallel and sequential execution produce bit-identical
output; ``workers=1`` is exactly the old in-process path.

An optional :class:`~repro.experiments.cache.RunCache` is consulted
before any run executes and written after each successful run, so a
warm cache short-circuits the whole batch.  Cache writes happen only
in the parent process and only for runs that completed — a worker
crash surfaces its exception (the first one in request order, after
the rest of the batch drains) without hanging the pool or leaving a
partial cache entry behind.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..adversaries.factory import mixed_population, strategy_population
from ..sim.config import SimulationConfig, config_for
from ..sim.engine import Simulation
from ..sim.results import SimulationResults
from ..telemetry.export import TelemetryCollector
from .cache import RunCache, run_key
from .catalog import protocol
from .setting import evaluation_community, evaluation_trace


@dataclass(frozen=True)
class RunRequest:
    """One simulation run, fully described by picklable values.

    Attributes:
        trace_name: "infocom05" or "cambridge06".
        family: TTL family, "epidemic" or "delegation".
        protocol_name: a :data:`repro.experiments.catalog.PROTOCOLS`
            name — the worker rebuilds the factory from it, and the
            cache keys on it.  None marks an ad-hoc factory that can
            only run in-process (and uncached).
        seed: replication seed (traffic, crypto, adversary placement).
        deviation: adversary kind, or None for all-honest.
        deviation_count: how many nodes deviate.
        overrides: sorted ``(field, value)`` pairs of
            :class:`~repro.sim.config.SimulationConfig` overrides,
            kept as a tuple so requests stay hashable and picklable.
        mix: adversary-mix fractions as sorted ``(kind, fraction)``
            pairs (scenario runs); mutually exclusive with
            ``deviation``.  The worker expands it into a mixed
            population with :func:`repro.adversaries.mixed_population`.
        churn: churn cohorts as ``(fraction, leave_time, rejoin_time)``
            tuples (``rejoin_time`` None for permanent departures);
            expanded into node-level join/leave timers by the worker.
        energy_budget: energy-budget spec, ``()`` for unbounded,
            ``("constant", joules)`` or ``("uniform", lo, hi)``.
        source: streaming-source spec as sorted ``(field, value)``
            pairs of a :class:`repro.traces.StreamModelConfig` —
            ``()`` for ordinary trace runs.  When set, the worker
            rebuilds the synthetic stream from the spec instead of
            loading an evaluation trace, and ``trace_name`` is a
            display label only.  Source runs carry their full config
            in ``overrides`` (there is no preset TTL table for
            synthetic universes) and do not support adversary
            placement (``deviation``/``mix``), which would need an
            enumerated node list.
    """

    trace_name: str
    family: str
    protocol_name: Optional[str]
    seed: int
    deviation: Optional[str] = None
    deviation_count: int = 0
    overrides: Tuple[Tuple[str, object], ...] = ()
    mix: Tuple[Tuple[str, float], ...] = ()
    churn: Tuple[Tuple[float, float, Optional[float]], ...] = ()
    energy_budget: Tuple[Any, ...] = ()
    source: Tuple[Tuple[str, Any], ...] = ()

    def config(self) -> SimulationConfig:
        """The run's full simulation configuration."""
        if self.source:
            overrides = dict(self.overrides)
            overrides["seed"] = self.seed
            return SimulationConfig(**overrides)  # type: ignore[arg-type]
        return config_for(
            self.trace_name,
            self.family,
            seed=self.seed,
            **dict(self.overrides),
        )

    def scenario_extras(self) -> Optional[Mapping[str, Any]]:
        """Scenario inputs for the cache key, None for plain runs.

        Plain (pre-scenario) requests return None so their cache keys
        — and any entries archived under them — are unchanged.
        """
        if not (self.mix or self.churn or self.energy_budget):
            return None
        return {
            "mix": [list(pair) for pair in self.mix],
            "churn": [list(cohort) for cohort in self.churn],
            "energy_budget": list(self.energy_budget),
        }

    def cache_key(self) -> Optional[str]:
        """Content hash for the run cache (None for ad-hoc factories)."""
        if self.protocol_name is None:
            return None
        return run_key(
            trace_name=self.trace_name,
            family=self.family,
            protocol_name=self.protocol_name,
            deviation=self.deviation,
            deviation_count=self.deviation_count,
            seed=self.seed,
            config=self.config(),
            scenario=self.scenario_extras(),
            source=self.source or None,
        )

    def roles(self) -> Dict[str, Tuple[int, ...]]:
        """Adversary class -> member nodes, recomputed deterministically.

        Mix requests replay the placement shuffle of
        :func:`repro.adversaries.mixed_population`; single-deviation
        requests report their ``misbehaving()`` set under the deviation
        kind.  All-honest runs return an empty map.
        """
        if self.mix:
            trace = evaluation_trace(self.trace_name)
            _, roles = mixed_population(
                trace.nodes, dict(self.mix), seed=self.seed
            )
            return roles
        if self.deviation is not None and self.deviation_count > 0:
            return {self.deviation: self.misbehaving()}
        return {}

    def misbehaving(self) -> Tuple[int, ...]:
        """The deterministic set of deviating nodes for this run."""
        if self.mix:
            members: List[int] = []
            for nodes in self.roles().values():
                members.extend(nodes)
            return tuple(sorted(members))
        if self.deviation is None or self.deviation_count <= 0:
            return ()
        trace = evaluation_trace(self.trace_name)
        community = evaluation_community(self.trace_name)
        _, misbehaving = strategy_population(
            trace.nodes,
            self.deviation,
            self.deviation_count,
            seed=self.seed,
            community=community,
        )
        return misbehaving


def execute_request(
    request: RunRequest,
    factory: Optional[Callable[[], object]] = None,
) -> SimulationResults:
    """Run one request to completion (the worker-side entry point).

    Args:
        request: the run description.
        factory: explicit protocol factory for ad-hoc requests; by
            default the factory is resolved from the catalog by
            ``request.protocol_name``.
    """
    if not isinstance(request, RunRequest):
        raise TypeError(
            f"execute_request expects a RunRequest, got"
            f" {type(request).__name__} — build one with"
            f" RunRequest(trace_name=..., family=..., protocol_name=...)"
        )
    if factory is None:
        if request.protocol_name is None:
            raise ValueError(
                "ad-hoc RunRequest needs an explicit protocol factory"
            )
        _, factory = protocol(request.protocol_name)
    if request.mix and request.deviation is not None:
        raise ValueError(
            "a RunRequest carries either a single deviation or a mix,"
            " not both"
        )
    if request.source:
        if request.mix or request.deviation is not None:
            raise ValueError(
                "source requests do not support adversary placement"
                " (deviation/mix) — it needs an enumerated node list"
            )
        from ..traces.stream import source_from_spec

        source = source_from_spec(request.source)
        config = request.config()
        churn = None
        energy_budgets = None
        if request.churn or request.energy_budget:
            from ..scenarios.spec import churn_events_for, energy_budgets_for

            if request.churn:
                churn = churn_events_for(
                    source.universe, request.churn, seed=request.seed
                )
            if request.energy_budget:
                energy_budgets = energy_budgets_for(
                    source.universe, request.energy_budget, seed=request.seed
                )
        return Simulation(
            source,
            factory(),
            config,
            churn=churn,
            energy_budgets=energy_budgets,
        ).run()
    trace = evaluation_trace(request.trace_name)
    community = evaluation_community(request.trace_name)
    config = request.config()
    strategies = None
    if request.mix:
        strategies, _ = mixed_population(
            trace.nodes,
            dict(request.mix),
            seed=request.seed,
            community=community,
        )
    elif request.deviation is not None and request.deviation_count > 0:
        strategies, _ = strategy_population(
            trace.nodes,
            request.deviation,
            request.deviation_count,
            seed=request.seed,
            community=community,
        )
    churn = None
    energy_budgets = None
    if request.churn or request.energy_budget:
        # Lazy import: repro.scenarios imports this module for
        # RunRequest/run_requests, so the expansion helpers must load
        # only when a scenario request actually executes.
        from ..scenarios.spec import churn_events_for, energy_budgets_for

        if request.churn:
            churn = churn_events_for(
                trace.nodes, request.churn, seed=request.seed
            )
        if request.energy_budget:
            energy_budgets = energy_budgets_for(
                trace.nodes, request.energy_budget, seed=request.seed
            )
    return Simulation(
        trace,
        factory(),
        config,
        strategies=strategies,
        community=community,
        churn=churn,
        energy_budgets=energy_budgets,
    ).run()


@dataclass
class RunReport:
    """Progress/timing accounting for one experiment invocation."""

    executed: int = 0
    cached: int = 0
    seconds: float = 0.0

    @property
    def total(self) -> int:
        """Total runs satisfied (simulated plus cache hits)."""
        return self.executed + self.cached

    def summary(self) -> str:
        """One-line human rendering for the CLI."""
        return (
            f"{self.total} runs: {self.executed} simulated, "
            f"{self.cached} cache hits, {self.seconds:.1f}s wall"
        )


@dataclass
class ExecutionOptions:
    """How a batch of runs executes: worker count, cache, reporting.

    Attributes:
        workers: process count; 1 (default) runs in-process on the
            exact sequential path.
        cache: optional :class:`RunCache`; None disables both reads
            and writes (the CLI's ``--no-cache``).
        report: optional accumulator; one report can span several
            experiment modules (the CLI threads a single one through
            a whole figure).
        on_progress: optional callback fired after each satisfied run
            with ``(done, total, was_cached)``.
        telemetry: optional collector; every finished batch feeds its
            results in **request order**, so the merged metric totals
            are identical whatever the worker count.  Cache hits carry
            no telemetry snapshot (the JSON run cache stores simulation
            outcomes only) and are counted as skipped by the collector.
    """

    workers: int = 1
    cache: Optional[RunCache] = None
    report: Optional[RunReport] = None
    on_progress: Optional[Callable[[int, int, bool], None]] = None
    telemetry: Optional[TelemetryCollector] = None

    def _tick(self, done: int, total: int, was_cached: bool) -> None:
        if self.on_progress is not None:
            self.on_progress(done, total, was_cached)


def run_requests(
    requests: Sequence[RunRequest],
    options: Optional[ExecutionOptions] = None,
) -> List[SimulationResults]:
    """Execute a batch of requests, returning results in request order.

    Cache hits are satisfied first; the remainder runs in-process
    (``workers <= 1``) or on a process pool.  Output is deterministic:
    ``results[i]`` always corresponds to ``requests[i]``, whatever the
    completion order, so parallel and sequential runs are
    bit-identical.

    Raises:
        TypeError: if ``requests`` is a single :class:`RunRequest` (wrap
            it in a list) or contains non-``RunRequest`` items.
        Exception: the first (in request order) worker exception, after
            every other run in the batch has drained — the pool never
            hangs and successful runs are still cached.
    """
    if isinstance(requests, RunRequest):
        raise TypeError(
            "run_requests expects a sequence of RunRequest objects, got"
            " a single RunRequest — wrap it in a list: run_requests([request])"
        )
    for position, request in enumerate(requests):
        if not isinstance(request, RunRequest):
            raise TypeError(
                f"run_requests expects RunRequest objects,"
                f" got {type(request).__name__} at index {position}"
            )
    if options is None:
        options = ExecutionOptions()
    started = time.perf_counter()  # g2g: allow(G2G002: wall time feeds the run report only, never results)
    total = len(requests)
    results: List[Optional[SimulationResults]] = [None] * total
    keys: List[Optional[str]] = [r.cache_key() for r in requests]
    pending: List[int] = []
    done = 0
    cached = 0
    for i, request in enumerate(requests):
        hit = None
        if options.cache is not None and keys[i] is not None:
            hit = options.cache.get(keys[i])
        if hit is not None:
            results[i] = hit
            cached += 1
            done += 1
            options._tick(done, total, True)
        else:
            pending.append(i)

    def store(i: int, result: SimulationResults) -> None:
        nonlocal done
        results[i] = result
        if options.cache is not None and keys[i] is not None:
            options.cache.put(keys[i], result)
        done += 1
        options._tick(done, total, False)

    try:
        if options.workers <= 1 or len(pending) <= 1:
            for i in pending:
                store(i, execute_request(requests[i]))
        else:
            # Warm the trace/community caches in the parent first:
            # fork-started workers then inherit the built artifacts
            # instead of each re-running community detection.  Source
            # requests are skipped — their trace_name is a display
            # label, not an evaluation-trace key.
            for trace_name in sorted(
                {
                    requests[i].trace_name
                    for i in pending
                    if not requests[i].source
                }
            ):
                evaluation_trace(trace_name)
                evaluation_community(trace_name)
            workers = min(options.workers, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    i: pool.submit(execute_request, requests[i])
                    for i in pending
                }
                error: Optional[BaseException] = None
                for i in pending:
                    try:
                        result = futures[i].result()
                    except BaseException as exc:  # g2g: allow-broad-except(first worker error is re-raised after the batch drains)
                        if error is None:
                            error = exc
                        continue
                    store(i, result)
                if error is not None:
                    raise error
    finally:
        if options.report is not None:
            options.report.executed += done - cached
            options.report.cached += cached
            # g2g: allow(G2G002: wall time feeds the run report only, never results)
            options.report.seconds += time.perf_counter() - started
    if options.telemetry is not None:
        # Fed strictly in request order (not completion order): float
        # metric sums then fold identically for any worker count.
        for result in results:
            options.telemetry.add(result)
    return results
