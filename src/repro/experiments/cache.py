"""On-disk caching of per-run simulation results.

Re-running a figure after an unrelated change should not re-simulate:
each (trace, protocol, adversary, config, seed) run is keyed by a
stable content hash and its :class:`~repro.sim.results.SimulationResults`
archived as JSON under the cache directory.  The key covers *every*
input that can change the output:

* trace name;
* protocol family and catalog name (which encodes the factory
  parameters — e.g. ``delegation_last_contact`` vs
  ``delegation_frequency``);
* adversary spec (deviation kind and count);
* every :class:`~repro.sim.config.SimulationConfig` field, including
  the nested :class:`~repro.sim.config.EnergyModel`;
* the replication seed;
* a code-version tag (bump :data:`CACHE_VERSION` whenever simulation
  semantics change).

Corrupted or unreadable entries are treated as misses, never errors:
a crashed writer or a stale format can cost a re-run but cannot
poison an experiment.  Writes are atomic (temp file + ``os.replace``)
so a killed process never leaves a half-written entry under the final
name.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from ..sim.config import SimulationConfig
from ..sim.results import SimulationResults
from ..sim.serialize import (
    FORMAT_VERSION,
    results_from_dict,
    results_to_dict,
)

PathLike = Union[str, Path]

#: Bump whenever simulation semantics change in a way that should
#: invalidate previously cached runs (the serialize format version is
#: hashed in independently).
CACHE_VERSION = 1

#: Default cache location used by the CLI.
DEFAULT_CACHE_DIR = ".repro-cache"


def run_key(
    trace_name: str,
    family: str,
    protocol_name: str,
    deviation: Optional[str],
    deviation_count: int,
    seed: int,
    config: SimulationConfig,
    scenario: Optional[Mapping[str, Any]] = None,
    source: Optional[Sequence[Sequence[Any]]] = None,
) -> str:
    """Stable content hash identifying one simulation run.

    The hash is a SHA-256 over the canonical JSON of every run input;
    it is stable across processes and hosts (no reliance on Python's
    randomized ``hash()``).

    ``scenario`` carries the extra inputs of scenario runs (adversary
    mix, churn schedule, energy-budget spec); ``source`` carries the
    streaming-source spec of synthetic mega-trace runs.  Each is
    folded into the payload only when present, so every pre-scenario
    (and pre-source) key — and every entry written under one — stays
    valid.
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "format_version": FORMAT_VERSION,
        "trace": trace_name,
        "family": family,
        "protocol": protocol_name,
        "deviation": deviation,
        "deviation_count": deviation_count,
        "seed": seed,
        "config": dataclasses.asdict(config),
    }
    if scenario:
        payload["scenario"] = dict(scenario)
    if source:
        payload["source"] = [list(pair) for pair in source]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`RunCache`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def summary(self) -> str:
        """One-line human rendering."""
        parts = [f"{self.hits} hits", f"{self.misses} misses"]
        if self.writes:
            parts.append(f"{self.writes} writes")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt entries ignored")
        return ", ".join(parts)


@dataclass
class RunCache:
    """Content-addressed store of serialized simulation results."""

    cache_dir: PathLike
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._dir = Path(self.cache_dir)
        self._dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Cache file of one run key."""
        return self._dir / f"{key}.json"

    def get(self, key: str) -> Optional[SimulationResults]:
        """Load a cached run, or None on miss.

        Unreadable, truncated, or wrong-version entries count as
        misses (and are tallied in :attr:`CacheStats.corrupt`).
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            results = results_from_dict(json.loads(path.read_text()))
        except (OSError, ValueError, LookupError, TypeError, AttributeError):
            # Everything a truncated, garbled, or wrong-schema entry
            # can raise on read/deserialize (JSONDecodeError is a
            # ValueError; missing fields raise KeyError/TypeError).
            # Anything else — MemoryError, KeyboardInterrupt, a
            # genuine bug in results_from_dict — must propagate.
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return results

    def put(self, key: str, results: SimulationResults) -> None:
        """Atomically archive one run under its key."""
        path = self.path_for(key)
        payload = json.dumps(
            results_to_dict(results), indent=1, sort_keys=True
        )
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=str(self._dir)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
