"""Assemble a reproduction report from saved benchmark outputs.

``pytest benchmarks/ --benchmark-only`` writes each experiment's
rendered table (and chart) under ``benchmarks/results/``;
:func:`build_report` stitches those files into one markdown document,
grouped by experiment, with the paper reference up top — a
regenerate-able companion to the hand-curated EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

PathLike = Union[str, Path]

#: Section order and titles; files are matched by name prefix.
SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("fig3", "Figure 3 — droppers vs Epidemic Forwarding"),
    ("fig4", "Figure 4 — dropper detection in G2G Epidemic"),
    ("fig5", "Figure 5 — droppers and liars vs Delegation Forwarding"),
    ("table1", "Table I — G2G Delegation detection performance"),
    ("fig7", "Figure 7 — detection time vs adversary count"),
    ("fig8", "Figure 8 — G2G vs vanilla performance"),
    ("nash", "Nash equilibrium — empirical best-response checks"),
    ("dodger", "The test-dodger gap — a reproduction finding"),
    ("baselines", "Beyond the paper — classic DTN baselines"),
    ("ablation", "Ablations — design-choice sweeps"),
)

HEADER = """# Give2Get reproduction report

Auto-assembled from `benchmarks/results/` (regenerate with
`pytest benchmarks/ --benchmark-only`, then
`python -m repro.experiments.report`).

Paper: Mei & Stefa, *Give2Get: Forwarding in Social Mobile Wireless
Networks of Selfish Individuals*, ICDCS 2010.  See EXPERIMENTS.md for
the curated paper-vs-measured analysis and divergence notes.
"""


def collect_outputs(results_dir: PathLike) -> Dict[str, List[Path]]:
    """Group the saved ``.txt`` outputs by report section."""
    directory = Path(results_dir)
    grouped: Dict[str, List[Path]] = {prefix: [] for prefix, _ in SECTIONS}
    leftovers: List[Path] = []
    for path in sorted(directory.glob("*.txt")):
        for prefix, _title in SECTIONS:
            if path.name.startswith(prefix):
                grouped[prefix].append(path)
                break
        else:
            leftovers.append(path)
    if leftovers:
        grouped.setdefault("other", []).extend(leftovers)
    return grouped


def build_report(results_dir: PathLike) -> str:
    """Render the full markdown report.

    Raises:
        FileNotFoundError: if ``results_dir`` does not exist.
    """
    directory = Path(results_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"no benchmark results at {directory}")
    grouped = collect_outputs(directory)
    parts = [HEADER]
    titles = dict(SECTIONS)
    titles["other"] = "Other outputs"
    for prefix, files in grouped.items():
        if not files:
            continue
        parts.append(f"\n## {titles[prefix]}\n")
        for path in files:
            parts.append(f"```text\n{path.read_text().rstrip()}\n```\n")
    return "\n".join(parts)


def write_report(
    results_dir: PathLike, output: PathLike = "REPORT.md"
) -> Path:
    """Build and save the report; returns the output path."""
    output = Path(output)
    output.write_text(build_report(results_dir))
    return output


def main() -> int:  # pragma: no cover - thin CLI shim
    """``python -m repro.experiments.report [results_dir] [output]``."""
    import sys

    results_dir = sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results"
    output = sys.argv[2] if len(sys.argv) > 2 else "REPORT.md"
    path = write_report(results_dir, output)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
