"""Figure 4: dropper detection time in G2G Epidemic Forwarding.

The paper's Fig. 4 plots the average detection time (measured after
the tested message's Δ1 expiry) against the number of droppers and
observes that it is minutes-scale and essentially independent of the
dropper count; the accompanying text reports detection probabilities
of 94.7% (plain selfishness) and 91.3% (with outsiders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .catalog import protocol
from .parallel import ExecutionOptions
from .runner import FigureData, ReplicationPlan, Series, run_series
from .setting import TRACES, adversary_counts

VARIANTS = ("dropper", "dropper_with_outsiders")
VARIANT_LABELS = {
    "dropper": "Droppers",
    "dropper_with_outsiders": "Droppers with outsiders",
}


@dataclass
class DetectionFigure:
    """Fig. 4 output: the detection-time figure plus rate summaries."""

    figure: FigureData
    #: mean detection rate per variant (across all non-zero counts).
    detection_rates: Dict[str, float] = field(default_factory=dict)


def run(
    quick: bool = False,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, DetectionFigure]:
    """Reproduce Fig. 4; one :class:`DetectionFigure` per trace."""
    if plan is None:
        plan = ReplicationPlan.make(quick)
    family, factory = protocol("g2g_epidemic")
    out: Dict[str, DetectionFigure] = {}
    for trace_name in TRACES:
        figure = FigureData(
            figure_id=f"fig4-{trace_name}",
            title=(
                "Dropper detection time vs dropper count, "
                f"G2G Epidemic ({trace_name})"
            ),
            x_label="Droppers Number",
            y_label="Average detection time after Δ1 (minutes)",
        )
        rates: Dict[str, list] = {v: [] for v in VARIANTS}
        # no droppers, nothing to detect: skip the zero-count point
        counts = [c for c in adversary_counts(trace_name, quick) if c]
        for variant in VARIANTS:
            series = Series(label=VARIANT_LABELS[variant])
            for count, point in run_series(
                trace_name,
                family,
                factory,
                counts,
                deviation=variant,
                plan=plan,
                options=options,
            ):
                series.add(count, point.detection_delay_after_ttl / 60.0)
                rates[variant].append(point.detection_rate)
            figure.series.append(series)
        out[trace_name] = DetectionFigure(
            figure=figure,
            detection_rates={
                VARIANT_LABELS[v]: (
                    sum(values) / len(values) if values else 0.0
                )
                for v, values in rates.items()
            },
        )
    return out
