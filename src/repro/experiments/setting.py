"""The paper's standard experimental setting (Sec. V-C), packaged.

Every experiment shares: the two traces, the 3-hour evaluation window,
Poisson traffic at one message per 4 s with a silent last hour, the
per-trace/per-family TTLs, Δ2 = 2·Δ1, and the 34-minute delegation
quality timeframe.  This module caches the expensive artifacts (trace
generation, window selection, community detection) so sweeps only pay
for simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from ..sim.config import SimulationConfig, config_for
from ..social.communities import CommunityMap
from ..traces.presets import standard_window, trace_by_name
from ..traces.trace import ContactTrace

#: The two evaluation traces, in paper order.
TRACES: Tuple[str, ...] = ("infocom05", "cambridge06")

#: k-clique detection parameters per trace, tuned against the
#: generators' ground truth (see tests/test_social_communities.py).
COMMUNITY_PARAMS: Dict[str, Dict[str, float]] = {
    "infocom05": {"k": 3, "edge_quantile": 0.90},
    "cambridge06": {"k": 6, "edge_quantile": 0.80},
}

#: Adversary-count sweep used by Figs. 3-5 and 7 (the paper sweeps
#: 0..N in steps of 5).
def adversary_counts(trace_name: str, quick: bool = False) -> Tuple[int, ...]:
    """Dropper/liar/cheater counts for a sweep over ``trace_name``."""
    n = evaluation_trace(trace_name).num_nodes
    step = 10 if quick else 5
    counts = list(range(0, n, step))
    if counts[-1] != n - 1:
        counts.append(n - 1)
    return tuple(counts)


@lru_cache(maxsize=None)
def evaluation_trace(trace_name: str, trace_seed: int = 0) -> ContactTrace:
    """The windowed 3-hour evaluation trace (cached)."""
    synthetic = trace_by_name(trace_name, seed=trace_seed)
    window = standard_window(synthetic)
    return window.slice(synthetic.trace)


@lru_cache(maxsize=None)
def evaluation_community(trace_name: str, trace_seed: int = 0) -> CommunityMap:
    """k-clique communities of the *full* trace (cached).

    Detection runs on the whole trace, as in the paper ("community
    detection on each data trace"), not just the 3-hour window —
    communities are a property of the social structure, not of one
    afternoon.
    """
    synthetic = trace_by_name(trace_name, seed=trace_seed)
    params = COMMUNITY_PARAMS[trace_name]
    return CommunityMap.detect(
        synthetic.trace,
        k=int(params["k"]),
        edge_quantile=float(params["edge_quantile"]),
    )


def standard_config(
    trace_name: str, family: str, seed: int
) -> SimulationConfig:
    """Paper-faithful configuration for one run."""
    return config_for(trace_name, family, seed=seed)


@dataclass(frozen=True)
class ReplicationPlan:
    """How many independent runs average into each data point.

    The paper averages "a large set of experiments"; we re-seed the
    traffic and adversary placement while holding the trace fixed
    (matching trace-driven methodology).  ``quick`` halves the work
    for CI-speed benchmark runs.
    """

    seeds: Tuple[int, ...] = (1, 2, 3)

    @classmethod
    def make(cls, quick: bool = False) -> "ReplicationPlan":
        """Default plan: 3 seeds, or 2 in quick mode."""
        return cls(seeds=(1, 2) if quick else (1, 2, 3))
