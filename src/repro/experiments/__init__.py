"""Experiment harness: one module per paper table/figure plus ablations.

Each module exposes ``run(quick=False)`` returning structured results
with a ``render()`` text form; the benchmark suite under
``benchmarks/`` drives these and prints the paper-shaped tables.
"""

from . import ablations, fig3, fig4, fig5, fig7, fig8, sweeps, table1
from .cache import CacheStats, RunCache, run_key
from .catalog import LABELS, PROTOCOLS, protocol
from .parallel import (
    ExecutionOptions,
    RunReport,
    RunRequest,
    execute_request,
    run_requests,
)
from .runner import (
    FigureData,
    PointResult,
    ReplicationPlan,
    Series,
    point_from_runs,
    run_point,
    run_series,
)
from .sweeps import RunSpec, SweepRunner, dropper_grid
from .setting import (
    COMMUNITY_PARAMS,
    TRACES,
    adversary_counts,
    evaluation_community,
    evaluation_trace,
    standard_config,
)

__all__ = [
    "COMMUNITY_PARAMS",
    "CacheStats",
    "ExecutionOptions",
    "FigureData",
    "LABELS",
    "PROTOCOLS",
    "PointResult",
    "ReplicationPlan",
    "RunCache",
    "RunReport",
    "RunRequest",
    "Series",
    "TRACES",
    "ablations",
    "adversary_counts",
    "evaluation_community",
    "evaluation_trace",
    "execute_request",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "point_from_runs",
    "protocol",
    "run_key",
    "run_point",
    "run_requests",
    "run_series",
    "RunSpec",
    "standard_config",
    "SweepRunner",
    "dropper_grid",
    "sweeps",
    "table1",
]
