"""Experiment harness: one module per paper table/figure plus ablations.

Each module exposes ``run(quick=False)`` returning structured results
with a ``render()`` text form; the benchmark suite under
``benchmarks/`` drives these and prints the paper-shaped tables.
"""

from . import ablations, fig3, fig4, fig5, fig7, fig8, sweeps, table1
from .catalog import LABELS, PROTOCOLS, protocol
from .runner import FigureData, PointResult, ReplicationPlan, Series, run_point
from .sweeps import RunSpec, SweepRunner, dropper_grid
from .setting import (
    COMMUNITY_PARAMS,
    TRACES,
    adversary_counts,
    evaluation_community,
    evaluation_trace,
    standard_config,
)

__all__ = [
    "COMMUNITY_PARAMS",
    "FigureData",
    "LABELS",
    "PROTOCOLS",
    "PointResult",
    "ReplicationPlan",
    "Series",
    "TRACES",
    "ablations",
    "adversary_counts",
    "evaluation_community",
    "evaluation_trace",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "protocol",
    "run_point",
    "RunSpec",
    "standard_config",
    "SweepRunner",
    "dropper_grid",
    "sweeps",
    "table1",
]
