"""Protocol catalog: names → (family, factory) for the experiments."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..core.g2g_delegation import G2GDelegationForwarding
from ..core.g2g_epidemic import G2GEpidemicForwarding
from ..protocols.delegation import DelegationForwarding
from ..protocols.epidemic import EpidemicForwarding

#: name -> (ttl family, zero-arg factory building a fresh instance).
PROTOCOLS: Dict[str, Tuple[str, Callable[[], object]]] = {
    "epidemic": ("epidemic", EpidemicForwarding),
    "g2g_epidemic": ("epidemic", G2GEpidemicForwarding),
    "delegation_last_contact": (
        "delegation",
        lambda: DelegationForwarding("last_contact"),
    ),
    "delegation_frequency": (
        "delegation",
        lambda: DelegationForwarding("frequency"),
    ),
    "g2g_delegation_last_contact": (
        "delegation",
        lambda: G2GDelegationForwarding("last_contact"),
    ),
    "g2g_delegation_frequency": (
        "delegation",
        lambda: G2GDelegationForwarding("frequency"),
    ),
}

#: Display labels matching the paper's legends (Fig. 8).
LABELS: Dict[str, str] = {
    "epidemic": "Epidemic",
    "g2g_epidemic": "G2G Epidemic",
    "delegation_last_contact": "Deleg.Dest Last Contact",
    "delegation_frequency": "Deleg.Dest Frequency",
    "g2g_delegation_last_contact": "G2G Dest Last Contact",
    "g2g_delegation_frequency": "G2G Dest Frequency",
}


def protocol(name: str) -> Tuple[str, Callable[[], object]]:
    """Look up ``(family, factory)`` by protocol name.

    Raises:
        KeyError: for unknown names.
    """
    if name not in PROTOCOLS:
        raise KeyError(
            f"unknown protocol {name!r}; expected one of {sorted(PROTOCOLS)}"
        )
    return PROTOCOLS[name]
