"""Figure 8: G2G protocols vs their vanilla alter egos (no adversaries).

The paper's Fig. 8 plots success rate vs cost and delay vs cost for
all six protocols on both traces.  The headline: "G2G protocols show
an excellent performance in terms of cost ... decreasing considerably
(more than 20%) the number of replicas generated in the system, while
their performance in terms of delay and success rate are very close
to the original protocols."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .catalog import LABELS, PROTOCOLS
from .parallel import ExecutionOptions
from .runner import PointResult, ReplicationPlan, run_point
from .setting import TRACES


@dataclass
class ProtocolPoint:
    """One protocol's position in the success/delay-vs-cost planes."""

    protocol: str
    label: str
    success_percent: float
    mean_delay_s: float
    cost: float
    memory_byte_seconds: float = 0.0


@dataclass
class Fig8Panel:
    """All six protocols measured on one trace."""

    trace: str
    points: List[ProtocolPoint] = field(default_factory=list)

    def point(self, protocol: str) -> ProtocolPoint:
        """Look up a protocol's point.

        Raises:
            KeyError: if the protocol was not measured.
        """
        for p in self.points:
            if p.protocol == protocol:
                return p
        raise KeyError(protocol)

    def cost_reduction(self, vanilla: str, g2g: str) -> float:
        """Fractional replica reduction of ``g2g`` vs ``vanilla``."""
        base = self.point(vanilla).cost
        if base == 0:
            return 0.0
        return 1.0 - self.point(g2g).cost / base

    def memory_factor(self, vanilla: str, g2g: str) -> float:
        """G2G memory relative to its alter ego (Sec. VIII: "within a
        constant factor")."""
        base = self.point(vanilla).memory_byte_seconds
        if base == 0:
            return 0.0
        return self.point(g2g).memory_byte_seconds / base

    def render(self) -> str:
        """Text table: protocol, success %, delay, cost."""
        lines = [
            f"== fig8-{self.trace}: success/delay vs cost ==",
            f"{'protocol':<28}{'success %':>12}{'delay (min)':>14}"
            f"{'cost (replicas)':>18}{'memory (MB*s)':>16}",
        ]
        for p in self.points:
            lines.append(
                f"{p.label:<28}{p.success_percent:>12.1f}"
                f"{p.mean_delay_s / 60:>14.1f}{p.cost:>18.2f}"
                f"{p.memory_byte_seconds / 1e6:>16.1f}"
            )
        for vanilla, g2g in PAIRINGS:
            reduction = self.cost_reduction(vanilla, g2g)
            factor = self.memory_factor(vanilla, g2g)
            lines.append(
                f"  cost reduction {LABELS[g2g]} vs {LABELS[vanilla]}: "
                f"{reduction:.0%} (memory factor {factor:.2f}x)"
            )
        return "\n".join(lines)


#: (vanilla, g2g) pairs whose cost reduction the paper highlights.
PAIRINGS = (
    ("epidemic", "g2g_epidemic"),
    ("delegation_last_contact", "g2g_delegation_last_contact"),
    ("delegation_frequency", "g2g_delegation_frequency"),
)


def run(
    quick: bool = False,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[str, Fig8Panel]:
    """Reproduce Fig. 8; one :class:`Fig8Panel` per trace."""
    if plan is None:
        plan = ReplicationPlan.make(quick)
    panels: Dict[str, Fig8Panel] = {}
    for trace_name in TRACES:
        panel = Fig8Panel(trace=trace_name)
        for name, (family, factory) in PROTOCOLS.items():
            point: PointResult = run_point(
                trace_name, family, factory, plan=plan,
                options=options, protocol_name=name,
            )
            panel.points.append(
                ProtocolPoint(
                    protocol=name,
                    label=LABELS[name],
                    success_percent=point.success_percent,
                    mean_delay_s=point.mean_delay,
                    cost=point.cost,
                    memory_byte_seconds=point.memory_byte_seconds,
                )
            )
        panels[trace_name] = panel
    return panels
