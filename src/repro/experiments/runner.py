"""Shared run/aggregate plumbing for the experiment modules.

An experiment is a grid of simulation runs; each grid point averages a
few re-seeded runs.  :func:`run_point` executes one point given a
protocol factory and an adversary specification, and returns the
averaged metrics the paper plots (success %, delay, cost, detection
rate, detection time).  :func:`run_series` executes a whole sweep of
points as one flat batch, so a process pool can overlap runs *across*
grid points, not just within one.

Both accept :class:`~repro.experiments.parallel.ExecutionOptions` to
select worker count and result caching; the default (no options) is
the sequential, uncached path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.results import SimulationResults
from ..telemetry.run import merge_run_snapshots
from .catalog import PROTOCOLS
from .parallel import (
    ExecutionOptions,
    RunRequest,
    execute_request,
    run_requests,
)
from .setting import ReplicationPlan

#: A protocol factory: builds a *fresh* protocol instance per run.
ProtocolFactory = Callable[[], object]


@dataclass
class PointResult:
    """Averaged metrics of one grid point.

    All quantities are means over the replication seeds; raw per-run
    results are retained for deeper analysis.
    """

    success_rate: float
    mean_delay: float
    cost: float
    memory_byte_seconds: float
    detection_rate: float
    detection_delay: float
    detection_delay_after_ttl: float
    false_positives: int
    runs: List[SimulationResults] = field(repr=False, default_factory=list)
    # Merged telemetry snapshot over the point's runs (counters add,
    # gauges max, histograms/spans fold), or None when no run carried
    # one — e.g. a fully cache-hit point, since the JSON run cache
    # stores simulation outcomes only.
    telemetry: Optional[Dict[str, object]] = field(repr=False, default=None)

    @property
    def success_percent(self) -> float:
        """Success rate in percent (the paper's y-axis)."""
        return 100.0 * self.success_rate


def protocol_name_for(protocol_factory: ProtocolFactory) -> Optional[str]:
    """Reverse-lookup a factory's catalog name (None for ad-hoc ones).

    The catalog stores one factory object per protocol, so identity
    comparison is exact; a name is what lets a run ship to a worker
    process and key the result cache.
    """
    for name, (_, factory) in PROTOCOLS.items():
        if factory is protocol_factory:
            return name
    return None


def point_from_runs(
    runs: Sequence[SimulationResults],
    misbehaving_sets: Sequence[Tuple[int, ...]],
) -> PointResult:
    """Aggregate per-run results into one :class:`PointResult`.

    All means derive directly from ``runs`` — no mutable accumulators —
    so the aggregation is independent of *how* (and in what order) the
    runs were executed.  Telemetry snapshots merge in run (seed) order
    for the same reason: the folded totals are identical whether the
    runs executed sequentially or across a worker pool.
    """
    adversarial = [
        (run, misbehaving)
        for run, misbehaving in zip(runs, misbehaving_sets)
        if misbehaving
    ]
    det_rates = [run.detection_rate(m) for run, m in adversarial]
    det_delays = [
        run.mean_offender_detection_delay()
        for run, _ in adversarial
        if run.detections
    ]
    det_delays_ttl = [
        run.mean_detection_delay() for run, _ in adversarial if run.detections
    ]
    return PointResult(
        success_rate=float(np.mean([r.success_rate for r in runs])),
        mean_delay=float(np.mean([r.mean_delay for r in runs])),
        cost=float(np.mean([r.cost for r in runs])),
        memory_byte_seconds=float(
            np.mean([r.total_memory_byte_seconds for r in runs])
        ),
        detection_rate=float(np.mean(det_rates)) if det_rates else 0.0,
        detection_delay=float(np.mean(det_delays)) if det_delays else 0.0,
        detection_delay_after_ttl=(
            float(np.mean(det_delays_ttl)) if det_delays_ttl else 0.0
        ),
        false_positives=sum(
            len(run.false_positives(m)) for run, m in adversarial
        ),
        runs=list(runs),
        telemetry=(
            merge_run_snapshots([r.telemetry for r in runs])
            if any(r.telemetry is not None for r in runs)
            else None
        ),
    )


def _requests_for_point(
    trace_name: str,
    family: str,
    protocol_name: Optional[str],
    deviation: Optional[str],
    deviation_count: int,
    plan: ReplicationPlan,
    config_overrides: Optional[Dict[str, object]],
) -> List[RunRequest]:
    overrides = tuple(sorted((config_overrides or {}).items()))
    return [
        RunRequest(
            trace_name=trace_name,
            family=family,
            protocol_name=protocol_name,
            seed=seed,
            deviation=deviation if deviation_count > 0 else None,
            deviation_count=deviation_count if deviation else 0,
            overrides=overrides,
        )
        for seed in plan.seeds
    ]


def run_point(
    trace_name: str,
    family: str,
    protocol_factory: ProtocolFactory,
    deviation: Optional[str] = None,
    deviation_count: int = 0,
    plan: Optional[ReplicationPlan] = None,
    config_overrides: Optional[Dict[str, object]] = None,
    options: Optional[ExecutionOptions] = None,
    protocol_name: Optional[str] = None,
) -> PointResult:
    """Run one grid point and average the replications.

    Args:
        trace_name: "infocom05" or "cambridge06".
        family: "epidemic" or "delegation" (selects the paper TTL).
        protocol_factory: builds a fresh protocol per run.
        deviation: adversary kind (see
            :mod:`repro.adversaries.factory`), or None for all-honest.
        deviation_count: how many nodes deviate.
        plan: replication plan (defaults to the standard 3 seeds).
        config_overrides: optional :class:`SimulationConfig` overrides.
        options: worker count and cache; defaults to sequential and
            uncached.
        protocol_name: catalog name of the factory; resolved by
            identity when omitted.  Factories not in the catalog run
            in-process and uncached regardless of ``options``.
    """
    if plan is None:
        plan = ReplicationPlan()
    if protocol_name is None:
        protocol_name = protocol_name_for(protocol_factory)
    requests = _requests_for_point(
        trace_name, family, protocol_name,
        deviation, deviation_count, plan, config_overrides,
    )
    if protocol_name is None:
        runs: List[SimulationResults] = [
            execute_request(request, factory=protocol_factory)
            for request in requests
        ]
    else:
        runs = run_requests(requests, options)
    return point_from_runs(runs, [r.misbehaving() for r in requests])


def run_series(
    trace_name: str,
    family: str,
    protocol_factory: ProtocolFactory,
    counts: Sequence[int],
    deviation: Optional[str],
    plan: Optional[ReplicationPlan] = None,
    config_overrides: Optional[Dict[str, object]] = None,
    options: Optional[ExecutionOptions] = None,
    protocol_name: Optional[str] = None,
) -> List[Tuple[int, PointResult]]:
    """Run a whole adversary-count sweep as one flat batch.

    Semantically identical to calling :func:`run_point` per count
    (zero counts run all-honest), but the full (count x seed) matrix
    is handed to the executor at once, so a pool keeps its workers
    busy across grid-point boundaries.

    Returns:
        ``(count, PointResult)`` pairs in the order of ``counts``.
    """
    if plan is None:
        plan = ReplicationPlan()
    if protocol_name is None:
        protocol_name = protocol_name_for(protocol_factory)
    batches = [
        _requests_for_point(
            trace_name, family, protocol_name,
            deviation if count else None, count, plan, config_overrides,
        )
        for count in counts
    ]
    flat = [request for batch in batches for request in batch]
    if protocol_name is None:
        results = [
            execute_request(request, factory=protocol_factory)
            for request in flat
        ]
    else:
        results = run_requests(flat, options)
    points: List[Tuple[int, PointResult]] = []
    offset = 0
    for count, batch in zip(counts, batches):
        runs = results[offset:offset + len(batch)]
        points.append(
            (count, point_from_runs(runs, [r.misbehaving() for r in batch]))
        )
        offset += len(batch)
    return points


@dataclass
class Series:
    """One plotted line: label plus (x, y) points."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.xs.append(x)
        self.ys.append(y)

    def as_rows(self) -> List[Tuple[float, float]]:
        """Points as (x, y) tuples."""
        return list(zip(self.xs, self.ys))


@dataclass
class FigureData:
    """A reproduced figure: id, axis labels, and its series."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        """Find a series by its label.

        Raises:
            KeyError: if absent.
        """
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self, chart: bool = True) -> str:
        """Plain-text rendering: the data table plus an ASCII chart."""
        lines = [f"== {self.figure_id}: {self.title} =="]
        if not self.series:
            return "\n".join(lines + ["(no data)"])
        xs = self.series[0].xs
        header = [self.x_label] + [s.label for s in self.series]
        widths = [max(14, len(h) + 2) for h in header]
        lines.append(
            "".join(h.ljust(w) for h, w in zip(header, widths))
        )
        for i, x in enumerate(xs):
            cells = [f"{x:g}"]
            for s in self.series:
                cells.append(f"{s.ys[i]:.2f}" if i < len(s.ys) else "-")
            lines.append(
                "".join(c.ljust(w) for c, w in zip(cells, widths))
            )
        lines.append(f"({self.y_label})")
        if chart and any(s.xs for s in self.series):
            from ..metrics.asciichart import ascii_chart

            lines.append(
                ascii_chart(
                    self.series, y_label=self.y_label, x_label=self.x_label
                )
            )
        return "\n".join(lines)
