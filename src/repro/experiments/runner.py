"""Shared run/aggregate plumbing for the experiment modules.

An experiment is a grid of simulation runs; each grid point averages a
few re-seeded runs.  :func:`run_point` executes one point given a
protocol factory and an adversary specification, and returns the
averaged metrics the paper plots (success %, delay, cost, detection
rate, detection time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..adversaries.factory import strategy_population
from ..sim.engine import Simulation
from ..sim.results import SimulationResults
from .setting import (
    ReplicationPlan,
    evaluation_community,
    evaluation_trace,
    standard_config,
)

#: A protocol factory: builds a *fresh* protocol instance per run.
ProtocolFactory = Callable[[], object]


@dataclass
class PointResult:
    """Averaged metrics of one grid point.

    All quantities are means over the replication seeds; raw per-run
    results are retained for deeper analysis.
    """

    success_rate: float
    mean_delay: float
    cost: float
    memory_byte_seconds: float
    detection_rate: float
    detection_delay: float
    detection_delay_after_ttl: float
    false_positives: int
    runs: List[SimulationResults] = field(repr=False, default_factory=list)

    @property
    def success_percent(self) -> float:
        """Success rate in percent (the paper's y-axis)."""
        return 100.0 * self.success_rate


def run_point(
    trace_name: str,
    family: str,
    protocol_factory: ProtocolFactory,
    deviation: Optional[str] = None,
    deviation_count: int = 0,
    plan: Optional[ReplicationPlan] = None,
    config_overrides: Optional[Dict[str, object]] = None,
) -> PointResult:
    """Run one grid point and average the replications.

    Args:
        trace_name: "infocom05" or "cambridge06".
        family: "epidemic" or "delegation" (selects the paper TTL).
        protocol_factory: builds a fresh protocol per run.
        deviation: adversary kind (see
            :mod:`repro.adversaries.factory`), or None for all-honest.
        deviation_count: how many nodes deviate.
        plan: replication plan (defaults to the standard 3 seeds).
        config_overrides: optional :class:`SimulationConfig` overrides.
    """
    import dataclasses

    if plan is None:
        plan = ReplicationPlan()
    trace = evaluation_trace(trace_name)
    community = evaluation_community(trace_name)
    runs: List[SimulationResults] = []
    rates: List[float] = []
    delays: List[float] = []
    costs: List[float] = []
    memories: List[float] = []
    det_rates: List[float] = []
    det_delays: List[float] = []
    det_delays_ttl: List[float] = []
    false_pos = 0
    for seed in plan.seeds:
        config = standard_config(trace_name, family, seed)
        if config_overrides:
            config = dataclasses.replace(config, **config_overrides)
        strategies = None
        misbehaving: Tuple[int, ...] = ()
        if deviation is not None and deviation_count > 0:
            strategies, misbehaving = strategy_population(
                trace.nodes,
                deviation,
                deviation_count,
                seed=seed,
                community=community,
            )
        result = Simulation(
            trace,
            protocol_factory(),
            config,
            strategies=strategies,
            community=community,
        ).run()
        runs.append(result)
        rates.append(result.success_rate)
        delays.append(result.mean_delay)
        costs.append(result.cost)
        memories.append(result.total_memory_byte_seconds)
        if misbehaving:
            det_rates.append(result.detection_rate(misbehaving))
            if result.detections:
                det_delays.append(result.mean_offender_detection_delay())
                det_delays_ttl.append(result.mean_detection_delay())
            false_pos += len(result.false_positives(misbehaving))
    return PointResult(
        success_rate=float(np.mean(rates)),
        mean_delay=float(np.mean(delays)),
        cost=float(np.mean(costs)),
        memory_byte_seconds=float(np.mean(memories)),
        detection_rate=float(np.mean(det_rates)) if det_rates else 0.0,
        detection_delay=float(np.mean(det_delays)) if det_delays else 0.0,
        detection_delay_after_ttl=(
            float(np.mean(det_delays_ttl)) if det_delays_ttl else 0.0
        ),
        false_positives=false_pos,
        runs=runs,
    )


@dataclass
class Series:
    """One plotted line: label plus (x, y) points."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.xs.append(x)
        self.ys.append(y)

    def as_rows(self) -> List[Tuple[float, float]]:
        """Points as (x, y) tuples."""
        return list(zip(self.xs, self.ys))


@dataclass
class FigureData:
    """A reproduced figure: id, axis labels, and its series."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        """Find a series by its label.

        Raises:
            KeyError: if absent.
        """
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self, chart: bool = True) -> str:
        """Plain-text rendering: the data table plus an ASCII chart."""
        lines = [f"== {self.figure_id}: {self.title} =="]
        if not self.series:
            return "\n".join(lines + ["(no data)"])
        xs = self.series[0].xs
        header = [self.x_label] + [s.label for s in self.series]
        widths = [max(14, len(h) + 2) for h in header]
        lines.append(
            "".join(h.ljust(w) for h, w in zip(header, widths))
        )
        for i, x in enumerate(xs):
            cells = [f"{x:g}"]
            for s in self.series:
                cells.append(f"{s.ys[i]:.2f}" if i < len(s.ys) else "-")
            lines.append(
                "".join(c.ljust(w) for c, w in zip(cells, widths))
            )
        lines.append(f"({self.y_label})")
        if chart and any(s.xs for s in self.series):
            from ..metrics.asciichart import ascii_chart

            lines.append(
                ascii_chart(
                    self.series, y_label=self.y_label, x_label=self.x_label
                )
            )
        return "\n".join(lines)
