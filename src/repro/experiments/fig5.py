"""Figure 5: droppers and liars against vanilla Delegation Forwarding.

Four panels in the paper: delivery % vs dropper count (Infocom 05 and
Cambridge 06) and delivery % vs liar count (same traces), each with a
plain and a with-outsiders series.  "Both droppers and liars have a
big impact on the success rate."  The experiments use Delegation
Destination Last Contact, as in Sec. VII.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .catalog import protocol
from .parallel import ExecutionOptions
from .runner import FigureData, ReplicationPlan, Series, run_series
from .setting import TRACES, adversary_counts

#: panel -> (deviation kinds plotted, x-axis label)
PANELS: Dict[str, Tuple[Tuple[str, str], str]] = {
    "droppers": (("dropper", "dropper_with_outsiders"), "Droppers Number"),
    "liars": (("liar", "liar_with_outsiders"), "Liars Number"),
}

LABELS = {
    "dropper": "Droppers",
    "dropper_with_outsiders": "Droppers with outsiders",
    "liar": "Liars",
    "liar_with_outsiders": "Liars with outsiders",
}


def run(
    quick: bool = False,
    plan: Optional[ReplicationPlan] = None,
    options: Optional[ExecutionOptions] = None,
) -> Dict[Tuple[str, str], FigureData]:
    """Reproduce Fig. 5; keyed by ``(panel, trace)``."""
    if plan is None:
        plan = ReplicationPlan.make(quick)
    family, factory = protocol("delegation_last_contact")
    figures: Dict[Tuple[str, str], FigureData] = {}
    for panel, (kinds, x_label) in PANELS.items():
        for trace_name in TRACES:
            figure = FigureData(
                figure_id=f"fig5-{panel}-{trace_name}",
                title=(
                    f"Effect of {panel} on Delegation Forwarding "
                    f"({trace_name})"
                ),
                x_label=x_label,
                y_label="Delivery %",
            )
            for kind in kinds:
                series = Series(label=LABELS[kind])
                for count, point in run_series(
                    trace_name,
                    family,
                    factory,
                    adversary_counts(trace_name, quick),
                    deviation=kind,
                    plan=plan,
                    options=options,
                ):
                    series.add(count, point.success_percent)
                figure.series.append(series)
            figures[(panel, trace_name)] = figure
    return figures
